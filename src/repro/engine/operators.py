"""The three join operators compared by the paper's evaluation.

An *operator* bundles a partitioning scheme's build (statistics) phase with
the partitioned join execution and reports the quantities of Figure 4:

* ``stats_cost`` -- the modelled cost of collecting statistics and building
  the partitioning scheme, in cost-model units (per-machine scan work).
  1-Bucket has none; M-Bucket scans both relations twice (its two
  MapReduce statistics stages); CSIO scans both relations once (shared
  mappers) plus the much smaller d2equi/output-sample pass.
* ``join_cost`` -- the maximum machine weight of the execution (modelled join
  time; Fig. 4h validates the proportionality to wall-clock time).
* ``total_cost`` -- the paper's "total execution time": stats + join.
* memory / network tuples, the achieved and (for CSIO) estimated maximum
  region weight, the replication factor and output-correctness flag.

Wall-clock seconds spent building each scheme are reported separately
(``build_seconds``) -- they correspond to the "histogram algorithm time" rows
of Table V.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.histogram import EWHConfig
from repro.core.weights import WeightFunction
from repro.engine.cluster import JoinExecutionResult, run_partitioned_join
from repro.joins.conditions import JoinCondition
from repro.joins.local import count_join_output
from repro.partitioning.base import Partitioning
from repro.partitioning.ewh import build_ewh_partitioning
from repro.partitioning.m_bucket import MBucketConfig, build_m_bucket_partitioning
from repro.partitioning.one_bucket import build_one_bucket_partitioning

__all__ = [
    "OperatorRunResult",
    "Operator",
    "CIOperator",
    "CSIOperator",
    "CSIOOperator",
    "DEFAULT_STATS_SCAN_FACTOR",
]

#: Cost of scanning one tuple during the statistics phase, as a fraction of
#: the join-phase input cost ``w_i``.  Statistics scans read and repartition
#: tuples but do not run the local join, so they are cheaper per tuple; the
#: default reproduces the paper's observation that building the CSIO scheme
#: takes roughly a third of the total time for input-dominated joins and
#: under 10% for output-dominated ones.
DEFAULT_STATS_SCAN_FACTOR = 0.5


@dataclass
class OperatorRunResult:
    """Everything measured for one operator on one workload.

    All ``*_cost`` figures are in cost-model units (the same units as region
    weights); ``build_seconds`` is wall-clock time spent constructing the
    partitioning scheme on this machine.
    """

    scheme: str
    num_machines: int
    stats_cost: float
    join_cost: float
    memory_tuples: int
    network_tuples: int
    max_region_weight: float
    estimated_max_weight: float | None
    total_output: int
    output_correct: bool
    replication_factor: float
    build_seconds: float
    execution: JoinExecutionResult

    @property
    def total_cost(self) -> float:
        """Total execution cost: statistics phase plus join phase."""
        return self.stats_cost + self.join_cost


class Operator(abc.ABC):
    """Base class of the CI / CSI / CSIO operators."""

    #: Reporting name of the scheme.
    scheme_name: str = "operator"

    def __init__(self, num_machines: int) -> None:
        if num_machines <= 0:
            raise ValueError("num_machines must be positive")
        self.num_machines = num_machines

    @abc.abstractmethod
    def build_partitioning(
        self,
        keys1: np.ndarray,
        keys2: np.ndarray,
        condition: JoinCondition,
        weight_fn: WeightFunction,
        rng: np.random.Generator,
    ) -> tuple[Partitioning, float, float]:
        """Build the scheme; return (partitioning, stats_cost, build_seconds)."""

    def run(
        self,
        keys1: np.ndarray,
        keys2: np.ndarray,
        condition: JoinCondition,
        weight_fn: WeightFunction,
        rng: np.random.Generator | None = None,
        expected_output: int | None = None,
    ) -> OperatorRunResult:
        """Build the scheme, execute the partitioned join and report metrics.

        ``expected_output`` (the exact join size) enables the correctness
        check; when omitted it is computed once from the inputs.
        """
        rng = rng or np.random.default_rng(0)
        keys1 = np.asarray(keys1, dtype=np.float64)
        keys2 = np.asarray(keys2, dtype=np.float64)
        if expected_output is None:
            expected_output = count_join_output(keys1, keys2, condition)

        partitioning, stats_cost, build_seconds = self.build_partitioning(
            keys1, keys2, condition, weight_fn, rng
        )
        return self.execute_and_report(
            partitioning, stats_cost, build_seconds,
            keys1, keys2, condition, weight_fn, rng, expected_output,
        )

    def execute_and_report(
        self,
        partitioning: Partitioning,
        stats_cost: float,
        build_seconds: float,
        keys1: np.ndarray,
        keys2: np.ndarray,
        condition: JoinCondition,
        weight_fn: WeightFunction,
        rng: np.random.Generator,
        expected_output: int,
    ) -> OperatorRunResult:
        """Execute an already-built partitioning and assemble the report.

        Split out of :meth:`run` so callers that interpose on the build phase
        (the adaptive fallback operator) can reuse the execution/reporting
        half unchanged.
        """
        execution = run_partitioned_join(partitioning, keys1, keys2, condition, rng)
        estimated = getattr(partitioning, "estimated_max_weight", None)
        return OperatorRunResult(
            scheme=self.scheme_name,
            num_machines=self.num_machines,
            stats_cost=stats_cost,
            join_cost=execution.max_weight(weight_fn),
            memory_tuples=execution.memory_tuples,
            network_tuples=execution.network_tuples,
            max_region_weight=execution.max_weight(weight_fn),
            estimated_max_weight=estimated,
            total_output=execution.total_output,
            output_correct=execution.total_output == expected_output,
            replication_factor=execution.replication_factor,
            build_seconds=build_seconds,
            execution=execution,
        )


class CIOperator(Operator):
    """The content-insensitive operator (1-Bucket): no statistics phase at all."""

    scheme_name = "CI"

    def build_partitioning(self, keys1, keys2, condition, weight_fn, rng):
        partitioning = build_one_bucket_partitioning(self.num_machines)
        return partitioning, 0.0, 0.0


class CSIOperator(Operator):
    """The content-sensitive, input-only operator (M-Bucket)."""

    scheme_name = "CSI"

    def __init__(
        self,
        num_machines: int,
        config: MBucketConfig | None = None,
        stats_scan_factor: float = DEFAULT_STATS_SCAN_FACTOR,
    ) -> None:
        super().__init__(num_machines)
        self.config = config or MBucketConfig()
        self.stats_scan_factor = stats_scan_factor

    def build_partitioning(self, keys1, keys2, condition, weight_fn, rng):
        partitioning = build_m_bucket_partitioning(
            keys1, keys2, condition, self.num_machines,
            weight_fn=weight_fn, config=self.config, rng=rng,
        )
        # Two MapReduce statistics stages, each scanning both relations,
        # parallelised over the machines.
        scan_tuples = 2.0 * (len(keys1) + len(keys2))
        stats_cost = (
            self.stats_scan_factor
            * weight_fn.input_cost
            * scan_tuples
            / self.num_machines
        )
        return partitioning, stats_cost, partitioning.build_seconds


class CSIOOperator(Operator):
    """The equi-weight histogram operator (the paper's CSIO)."""

    scheme_name = "CSIO"

    def __init__(
        self,
        num_machines: int,
        config: EWHConfig | None = None,
        stats_scan_factor: float = DEFAULT_STATS_SCAN_FACTOR,
    ) -> None:
        super().__init__(num_machines)
        self.config = config or EWHConfig()
        self.stats_scan_factor = stats_scan_factor

    def build_partitioning(self, keys1, keys2, condition, weight_fn, rng):
        partitioning = build_ewh_partitioning(
            keys1, keys2, condition, self.num_machines,
            weight_fn=weight_fn, config=self.config, rng=rng,
        )
        stats = partitioning.histogram.sampling_stats
        # One shared scan over both relations, plus the (small) d2equi and
        # output-sample passes of the parallel Stream-Sample.
        scan_tuples = len(keys1) + len(keys2)
        extra_tuples = sum(stats.d2equi_entries_shipped) + sum(
            stats.sample_pairs_produced
        )
        stats_cost = (
            self.stats_scan_factor
            * weight_fn.input_cost
            * (scan_tuples + extra_tuples)
            / self.num_machines
        )
        return partitioning, stats_cost, partitioning.build_seconds
