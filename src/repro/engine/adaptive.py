"""The high-selectivity fallback operator (paper, section VI-E).

CSIO is designed for low-selectivity joins.  When the output is several
orders of magnitude larger than the input, 1-Bucket's replication cost stops
mattering and CSIO's statistics phase stops paying for itself.  Join
selectivity cannot be known in advance, so the paper's operator *always*
starts by building the CSIO scheme and watches how long that takes relative
to the input size: if building the scheme exceeds an experimentally
determined threshold (about half a second per million input tuples on their
cluster), it abandons the scheme and falls back to the content-insensitive
operator, having wasted only a few percent of CI's total execution time.

:class:`AdaptiveOperator` reproduces that policy: it builds the CSIO scheme,
measures the build wall-clock with an injectable ``clock`` (so the threshold
path is testable without real timing), and either executes the scheme or
abandons it -- before running the join -- in favour of CI, charging the
wasted statistics work to the reported costs.  The threshold is expressed the
same way as the paper's (seconds of scheme-building wall-clock per million
input tuples) and is configurable because absolute constants do not transfer
between the paper's cluster and a laptop-scale Python run.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.histogram import EWHConfig
from repro.core.weights import WeightFunction
from repro.engine.operators import CIOperator, CSIOOperator, Operator, OperatorRunResult
from repro.joins.conditions import JoinCondition
from repro.joins.local import count_join_output
from repro.obs.clock import perf_counter

__all__ = ["AdaptiveOperator"]


class AdaptiveOperator(Operator):
    """Start with CSIO; fall back to CI when scheme building is too expensive.

    Parameters
    ----------
    num_machines:
        ``J``.
    fallback_seconds_per_million:
        Threshold on the scheme-building wall-clock time, in seconds per
        million input tuples.  When building the CSIO scheme exceeds it, the
        operator abandons the scheme, switches to CI and charges the wasted
        statistics work to the reported costs.
    ewh_config:
        Configuration forwarded to the CSIO build.
    clock:
        Monotonic time source used to measure the scheme build (defaults to
        :func:`repro.obs.clock.perf_counter`).  Injectable so tests can
        drive the
        fallback decision deterministically.
    """

    scheme_name = "CSIO-adaptive"

    def __init__(
        self,
        num_machines: int,
        fallback_seconds_per_million: float = 0.5,
        ewh_config: EWHConfig | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(num_machines)
        if fallback_seconds_per_million <= 0:
            raise ValueError("fallback_seconds_per_million must be positive")
        self.fallback_seconds_per_million = fallback_seconds_per_million
        self.ewh_config = ewh_config
        self.clock = clock or perf_counter
        self.fell_back = False

    def build_partitioning(self, keys1, keys2, condition, weight_fn, rng):
        raise NotImplementedError(
            "AdaptiveOperator overrides run() directly because the fallback "
            "decision needs the CSIO build measurements"
        )

    def run(
        self,
        keys1: np.ndarray,
        keys2: np.ndarray,
        condition: JoinCondition,
        weight_fn: WeightFunction,
        rng: np.random.Generator | None = None,
        expected_output: int | None = None,
    ) -> OperatorRunResult:
        rng = rng or np.random.default_rng(0)
        keys1 = np.asarray(keys1, dtype=np.float64)
        keys2 = np.asarray(keys2, dtype=np.float64)
        if expected_output is None:
            expected_output = count_join_output(keys1, keys2, condition)

        csio = CSIOOperator(self.num_machines, config=self.ewh_config)
        start = self.clock()
        partitioning, csio_stats_cost, build_seconds = csio.build_partitioning(
            keys1, keys2, condition, weight_fn, rng
        )
        measured_build_seconds = self.clock() - start

        input_millions = (len(keys1) + len(keys2)) / 1_000_000
        threshold_seconds = self.fallback_seconds_per_million * max(
            input_millions, 1e-6
        )
        self.fell_back = measured_build_seconds > threshold_seconds
        if not self.fell_back:
            return csio.execute_and_report(
                partitioning, csio_stats_cost, build_seconds,
                keys1, keys2, condition, weight_fn, rng, expected_output,
            )

        # Abandon the scheme before the join and run CI instead.
        ci_result = CIOperator(self.num_machines).run(
            keys1, keys2, condition, weight_fn, rng, expected_output=expected_output
        )
        # The abandoned CSIO statistics work is not free: charge it on top of
        # CI's costs, exactly as the paper accounts for the wasted 4%.
        return OperatorRunResult(
            scheme=self.scheme_name,
            num_machines=self.num_machines,
            stats_cost=ci_result.stats_cost + csio_stats_cost,
            join_cost=ci_result.join_cost,
            memory_tuples=ci_result.memory_tuples,
            network_tuples=ci_result.network_tuples,
            max_region_weight=ci_result.max_region_weight,
            estimated_max_weight=None,
            total_output=ci_result.total_output,
            output_correct=ci_result.output_correct,
            replication_factor=ci_result.replication_factor,
            build_seconds=build_seconds + ci_result.build_seconds,
            execution=ci_result.execution,
        )
