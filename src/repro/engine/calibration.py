"""Cost-model calibration: fitting ``w_i`` and ``w_o`` by linear regression.

The paper determines the per-tuple input and output costs by regressing the
measured per-machine processing time against the number of input and output
tuples each machine handled over several benchmark runs (their cluster yields
``w_i = 1, w_o = 0.2`` for band joins and ``w_o = 0.3`` for equi/band joins).
This module reproduces that procedure: collect ``(input, output, seconds)``
samples -- e.g. from :func:`repro.engine.executor.run_join_multiprocess` or
from single-machine timed joins -- and solve the least-squares problem with a
non-negativity constraint.  Coefficients are conventionally normalised so
that ``w_i = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.weights import WeightFunction
from repro.joins.conditions import JoinCondition
from repro.joins.local import count_join_output
from repro.obs.clock import perf_counter

__all__ = ["CalibrationSample", "calibrate_cost_weights", "collect_calibration_samples"]


@dataclass(frozen=True)
class CalibrationSample:
    """One observation for the regression: a machine's work and its duration."""

    input_tuples: float
    output_tuples: float
    seconds: float


def calibrate_cost_weights(
    samples: list[CalibrationSample], normalise: bool = True
) -> WeightFunction:
    """Fit ``w_i`` and ``w_o`` to the samples by non-negative least squares.

    Parameters
    ----------
    samples:
        At least two observations with non-identical (input, output) pairs.
    normalise:
        When true (the default, matching the paper's convention) the fitted
        coefficients are rescaled so ``w_i = 1``.
    """
    if len(samples) < 2:
        raise ValueError("calibration needs at least two samples")
    design = np.array(
        [[s.input_tuples, s.output_tuples] for s in samples], dtype=np.float64
    )
    target = np.array([s.seconds for s in samples], dtype=np.float64)
    coefficients, *_ = np.linalg.lstsq(design, target, rcond=None)
    # The physical costs cannot be negative; clip and fall back to a tiny
    # positive epsilon so the weight function stays valid.
    input_cost = max(float(coefficients[0]), 0.0)
    output_cost = max(float(coefficients[1]), 0.0)
    if input_cost == 0.0 and output_cost == 0.0:
        raise ValueError("regression produced a degenerate (all-zero) cost model")
    if normalise and input_cost > 0:
        output_cost /= input_cost
        input_cost = 1.0
    return WeightFunction(input_cost=input_cost, output_cost=output_cost)


def collect_calibration_samples(
    keys1: np.ndarray,
    keys2: np.ndarray,
    condition: JoinCondition,
    fractions: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
    rng: np.random.Generator | None = None,
) -> list[CalibrationSample]:
    """Time single-machine joins on growing subsets to produce regression samples.

    Each fraction of the inputs is joined once on the local machine; the
    measured seconds together with the subset's input and output sizes form
    one :class:`CalibrationSample`.
    """
    rng = rng or np.random.default_rng(0)
    keys1 = np.asarray(keys1, dtype=np.float64)
    keys2 = np.asarray(keys2, dtype=np.float64)
    samples: list[CalibrationSample] = []
    for fraction in fractions:
        if not 0 < fraction <= 1:
            raise ValueError("fractions must lie in (0, 1]")
        take1 = max(1, int(len(keys1) * fraction))
        take2 = max(1, int(len(keys2) * fraction))
        subset1 = rng.choice(keys1, size=take1, replace=False)
        subset2 = rng.choice(keys2, size=take2, replace=False)
        start = perf_counter()
        output = count_join_output(subset1, subset2, condition)
        seconds = perf_counter() - start
        samples.append(
            CalibrationSample(
                input_tuples=take1 + take2,
                output_tuples=output,
                seconds=seconds,
            )
        )
    return samples
