"""The simulated shared-nothing execution engine.

The paper runs its operators on SQUALL (a Storm-based MapReduce-like
main-memory system) over a physical cluster.  This reproduction replaces that
substrate with:

* :mod:`repro.engine.cluster` -- a deterministic cluster simulator: mappers
  route tuples according to a partitioning scheme, reducers run the local
  join, and per-machine counters capture exactly the quantities the paper's
  evaluation reports (input received, output produced, memory-resident
  tuples, network traffic, maximum region weight under the cost model).
* :mod:`repro.engine.operators` -- the three operators (CI, CSI, CSIO) that
  combine a statistics/build phase with the partitioned join execution and
  report stats/join/total cost in cost-model units.
* :mod:`repro.engine.adaptive` -- the high-selectivity fallback operator
  (start with CSIO statistics, switch to CI when building the scheme becomes
  too expensive).
* :mod:`repro.engine.executor` -- a real ``multiprocessing`` executor that
  joins the per-region partitions in parallel OS processes (Python's GIL
  rules out shared-memory threading) and reports wall-clock times.
* :mod:`repro.engine.calibration` -- linear regression of the cost-model
  coefficients ``w_i`` and ``w_o`` from measured runs.
"""

from repro.engine.adaptive import AdaptiveOperator
from repro.engine.calibration import CalibrationSample, calibrate_cost_weights
from repro.engine.cluster import JoinExecutionResult, run_partitioned_join
from repro.engine.executor import MultiprocessJoinResult, run_join_multiprocess
from repro.engine.heterogeneous import (
    HeterogeneousAssignment,
    HeterogeneousJoinResult,
    assign_regions_to_machines,
    plan_virtual_regions,
    run_heterogeneous_join,
)
from repro.engine.operators import (
    CIOperator,
    CSIOOperator,
    CSIOperator,
    Operator,
    OperatorRunResult,
)

__all__ = [
    "JoinExecutionResult",
    "run_partitioned_join",
    "Operator",
    "OperatorRunResult",
    "CIOperator",
    "CSIOperator",
    "CSIOOperator",
    "AdaptiveOperator",
    "MultiprocessJoinResult",
    "run_join_multiprocess",
    "CalibrationSample",
    "calibrate_cost_weights",
    "HeterogeneousAssignment",
    "HeterogeneousJoinResult",
    "plan_virtual_regions",
    "assign_regions_to_machines",
    "run_heterogeneous_join",
]
