"""Heterogeneous clusters: machines with unequal capacity (paper, Appendix A5).

The paper's generalisation section notes that on heterogeneous clusters work
should be assigned proportionally to machine capacity, achieved by asking the
histogram algorithm for *more regions than machines* and then packing regions
onto machines.  This module implements that policy:

* :func:`plan_virtual_regions` decides how many regions to request so that
  even the smallest machine can be given an integral number of them;
* :func:`assign_regions_to_machines` packs weighted regions onto machines
  with a greedy longest-processing-time heuristic that minimises the maximum
  *normalised* load (load divided by capacity);
* :func:`run_heterogeneous_join` glues the two together around the CSIO
  partitioning and the cluster simulator and reports per-machine loads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.histogram import EWHConfig
from repro.core.weights import WeightFunction
from repro.engine.cluster import run_partitioned_join
from repro.joins.conditions import JoinCondition
from repro.partitioning.ewh import build_ewh_partitioning

__all__ = [
    "HeterogeneousAssignment",
    "plan_virtual_regions",
    "assign_regions_to_machines",
    "run_heterogeneous_join",
]


def plan_virtual_regions(
    capacities: list[float] | np.ndarray, granularity: int = 2
) -> int:
    """Number of regions to request from the histogram algorithm.

    Capacity shares are expressed in units of the *smallest* machine; asking
    for ``granularity`` regions per unit of the smallest machine lets the
    packing step track the capacity ratios with integral region counts.

    Parameters
    ----------
    capacities:
        Relative capacities of the machines (any positive scale).
    granularity:
        Regions per smallest-machine capacity unit (2 keeps the packing
        flexible without exploding the histogram's region count).
    """
    capacities = np.asarray(capacities, dtype=np.float64)
    if len(capacities) == 0:
        raise ValueError("capacities must be non-empty")
    if np.any(capacities <= 0):
        raise ValueError("capacities must be positive")
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    units = capacities / capacities.min()
    return int(np.ceil(units.sum() * granularity))


@dataclass
class HeterogeneousAssignment:
    """Packing of regions onto machines of unequal capacity.

    Attributes
    ----------
    machine_of_region:
        For every region, the index of the machine it was packed onto.
    machine_load:
        Total region weight assigned to each machine.
    capacities:
        The capacities the packing was computed for.
    """

    machine_of_region: np.ndarray
    machine_load: np.ndarray
    capacities: np.ndarray

    @property
    def num_machines(self) -> int:
        """Number of machines."""
        return len(self.capacities)

    @property
    def normalised_load(self) -> np.ndarray:
        """Per-machine load divided by capacity (what balancing minimises)."""
        return self.machine_load / self.capacities

    @property
    def makespan(self) -> float:
        """Maximum normalised load across machines."""
        if len(self.machine_load) == 0:
            return 0.0
        return float(self.normalised_load.max())

    def imbalance(self) -> float:
        """Ratio of the maximum to the mean normalised load (1.0 is perfect)."""
        normalised = self.normalised_load
        mean = float(normalised.mean())
        if mean == 0:
            return 1.0
        return float(normalised.max()) / mean


def assign_regions_to_machines(
    region_weights: np.ndarray | list[float],
    capacities: np.ndarray | list[float],
) -> HeterogeneousAssignment:
    """Pack weighted regions onto machines, minimising the max load/capacity.

    Uses the longest-processing-time (LPT) greedy heuristic: regions are
    considered heaviest first, each going to the machine whose normalised
    load would stay lowest.  LPT is a 4/3-approximation for identical
    machines and performs comparably well for related (capacity-scaled)
    machines, which is all the generalisation section requires.
    """
    region_weights = np.asarray(region_weights, dtype=np.float64)
    capacities = np.asarray(capacities, dtype=np.float64)
    if len(capacities) == 0:
        raise ValueError("capacities must be non-empty")
    if np.any(capacities <= 0):
        raise ValueError("capacities must be positive")
    if np.any(region_weights < 0):
        raise ValueError("region weights must be non-negative")

    machine_of_region = np.zeros(len(region_weights), dtype=np.int64)
    load = np.zeros(len(capacities), dtype=np.float64)
    for region in np.argsort(region_weights)[::-1]:
        weight = region_weights[region]
        target = int(np.argmin((load + weight) / capacities))
        machine_of_region[region] = target
        load[target] += weight
    return HeterogeneousAssignment(
        machine_of_region=machine_of_region,
        machine_load=load,
        capacities=capacities,
    )


@dataclass
class HeterogeneousJoinResult:
    """Outcome of a CSIO join on a heterogeneous cluster.

    Attributes
    ----------
    assignment:
        The region-to-machine packing, including per-machine loads.
    per_machine_input, per_machine_output:
        Tuples received / produced by each *physical* machine after packing.
    num_virtual_regions:
        Regions requested from the histogram algorithm.
    total_output:
        Total output tuples produced (correctness cross-check).
    """

    assignment: HeterogeneousAssignment
    per_machine_input: np.ndarray
    per_machine_output: np.ndarray
    num_virtual_regions: int
    total_output: int

    def machine_weights(self, weight_fn: WeightFunction) -> np.ndarray:
        """Per-machine weights under ``weight_fn``."""
        return (
            weight_fn.input_cost * self.per_machine_input
            + weight_fn.output_cost * self.per_machine_output
        )

    def normalised_weights(self, weight_fn: WeightFunction) -> np.ndarray:
        """Per-machine weight divided by capacity."""
        return self.machine_weights(weight_fn) / self.assignment.capacities


def run_heterogeneous_join(
    keys1: np.ndarray,
    keys2: np.ndarray,
    condition: JoinCondition,
    capacities: list[float] | np.ndarray,
    weight_fn: WeightFunction,
    granularity: int = 2,
    ewh_config: EWHConfig | None = None,
    rng: np.random.Generator | None = None,
) -> HeterogeneousJoinResult:
    """Run a CSIO join on machines of unequal capacity.

    The histogram algorithm is asked for ``plan_virtual_regions(capacities)``
    regions; the resulting regions are executed on the simulator and packed
    onto the physical machines proportionally to capacity.
    """
    rng = rng or np.random.default_rng(0)
    capacities = np.asarray(capacities, dtype=np.float64)
    num_virtual = plan_virtual_regions(capacities, granularity=granularity)

    partitioning = build_ewh_partitioning(
        keys1, keys2, condition, num_virtual,
        weight_fn=weight_fn, config=ewh_config, rng=rng,
    )
    execution = run_partitioned_join(partitioning, keys1, keys2, condition, rng)

    region_weights = execution.machine_weights(weight_fn)
    assignment = assign_regions_to_machines(region_weights, capacities)

    per_machine_input = np.zeros(len(capacities), dtype=np.int64)
    per_machine_output = np.zeros(len(capacities), dtype=np.int64)
    for region, machine in enumerate(assignment.machine_of_region):
        per_machine_input[machine] += execution.per_machine_input[region]
        per_machine_output[machine] += execution.per_machine_output[region]

    return HeterogeneousJoinResult(
        assignment=assignment,
        per_machine_input=per_machine_input,
        per_machine_output=per_machine_output,
        num_virtual_regions=partitioning.num_regions,
        total_output=execution.total_output,
    )
