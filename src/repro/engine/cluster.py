"""The shared-nothing cluster simulator.

``run_partitioned_join`` executes a join under a given partitioning exactly
the way the paper's runtime would, but bookkeeping-only: every region's
machine receives the tuples the scheme routes to it (counting replication),
joins them locally (the output count is computed with the vectorised
sort-merge counter, not materialised), and the per-machine input/output
counters feed the cost model.  The simulator therefore measures the
quantities Figure 4 reports:

* ``join cost`` -- the maximum machine weight ``w_i*input + w_o*output``
  (the paper validates in Fig. 4h that this is proportional to the join
  execution time);
* ``memory`` -- tuples resident across the cluster (input after replication);
* ``network`` -- tuples shipped from mappers to reducers.

Correctness is also checked: the total output across machines must equal the
exact join size, which guards against partitionings that drop or duplicate
candidate cells.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.weights import WeightFunction
from repro.joins.conditions import JoinCondition
from repro.joins.local import count_join_output
from repro.partitioning.base import Partitioning

__all__ = ["JoinExecutionResult", "run_partitioned_join"]


@dataclass
class JoinExecutionResult:
    """Per-machine accounting of one partitioned join execution.

    Attributes
    ----------
    per_machine_input:
        Tuples received by each machine (R1 + R2, counting replication).
    per_machine_output:
        Output tuples produced by each machine.
    total_output:
        Sum of the per-machine outputs.
    memory_tuples:
        Total tuples resident across the cluster (equals total input after
        replication -- the join is main-memory).
    network_tuples:
        Tuples shipped from mappers to reducers (equals the memory figure for
        a repartition join).
    replication_factor:
        Average number of machines each input tuple was shipped to.
    """

    per_machine_input: np.ndarray
    per_machine_output: np.ndarray
    total_output: int
    memory_tuples: int
    network_tuples: int
    replication_factor: float

    @property
    def num_machines(self) -> int:
        """Number of machines that could receive work."""
        return len(self.per_machine_input)

    def max_weight(self, weight_fn: WeightFunction) -> float:
        """Maximum machine weight under ``weight_fn`` (the modelled join time)."""
        if self.num_machines == 0:
            return 0.0
        weights = (
            weight_fn.input_cost * self.per_machine_input
            + weight_fn.output_cost * self.per_machine_output
        )
        return float(weights.max())

    def machine_weights(self, weight_fn: WeightFunction) -> np.ndarray:
        """Per-machine weights under ``weight_fn``."""
        return (
            weight_fn.input_cost * self.per_machine_input
            + weight_fn.output_cost * self.per_machine_output
        )


def run_partitioned_join(
    partitioning: Partitioning,
    keys1: np.ndarray,
    keys2: np.ndarray,
    condition: JoinCondition,
    rng: np.random.Generator | None = None,
) -> JoinExecutionResult:
    """Execute a partitioned join and return per-machine statistics.

    Parameters
    ----------
    partitioning:
        Any partitioning scheme (CI, CSI, CSIO, ...).
    keys1, keys2:
        Join keys of R1 and R2.
    condition:
        The join condition evaluated by the local joins.
    rng:
        Random generator for randomised schemes (1-Bucket); a fixed default
        is used when omitted.
    """
    rng = rng or np.random.default_rng(0)
    keys1 = np.asarray(keys1, dtype=np.float64)
    keys2 = np.asarray(keys2, dtype=np.float64)

    assignments1 = partitioning.assign_r1(keys1, rng)
    assignments2 = partitioning.assign_r2(keys2, rng)
    if len(assignments1) != partitioning.num_regions:
        raise ValueError("assign_r1 must return one index array per region")
    if len(assignments2) != partitioning.num_regions:
        raise ValueError("assign_r2 must return one index array per region")

    num_machines = partitioning.num_regions
    per_machine_input = np.zeros(num_machines, dtype=np.int64)
    per_machine_output = np.zeros(num_machines, dtype=np.int64)

    for machine, (idx1, idx2) in enumerate(zip(assignments1, assignments2)):
        per_machine_input[machine] = len(idx1) + len(idx2)
        if len(idx1) == 0 or len(idx2) == 0:
            continue
        per_machine_output[machine] = count_join_output(
            keys1[idx1], keys2[idx2], condition
        )

    total_input_shipped = int(per_machine_input.sum())
    total_tuples = len(keys1) + len(keys2)
    replication = total_input_shipped / total_tuples if total_tuples else 0.0

    return JoinExecutionResult(
        per_machine_input=per_machine_input,
        per_machine_output=per_machine_output,
        total_output=int(per_machine_output.sum()),
        memory_tuples=total_input_shipped,
        network_tuples=total_input_shipped,
        replication_factor=replication,
    )
