"""A real parallel executor built on ``multiprocessing``.

The cluster simulator models time through the cost model; this executor
actually runs the per-region local joins in parallel OS processes and reports
wall-clock times.  Python's global interpreter lock makes shared-memory
threading useless for CPU-bound joins, so worker processes are the honest
equivalent of the paper's per-core reducers.  It is intended for the examples
and for calibrating the cost model, not for the large benchmark sweeps (the
process start-up and pickling overhead dominates tiny inputs).
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.joins.conditions import JoinCondition
from repro.joins.local import count_join_output
from repro.obs.clock import perf_counter
from repro.partitioning.base import Partitioning

__all__ = [
    "MultiprocessJoinResult",
    "RegionExecution",
    "broadcast_conditions",
    "join_assigned_regions",
    "pickled_nbytes",
    "run_join_multiprocess",
]


class _CountingSink:
    """A write-only sink that measures bytes without retaining them."""

    __slots__ = ("nbytes",)

    def __init__(self) -> None:
        self.nbytes = 0

    def write(self, data: bytes) -> int:
        """Count ``data``'s length; the payload itself is discarded."""
        self.nbytes += len(data)
        return len(data)


def pickled_nbytes(obj: object) -> int:
    """Exact pickled size of ``obj``, in bytes, without keeping the pickle.

    This is the serialization-profiling primitive: the streaming
    :class:`~repro.streaming.backends.MultiprocessBackend` charges every
    batch with the bytes its task payloads (region key arrays) and result
    payloads would ship through the ``ProcessPoolExecutor`` pickle channel.
    Measuring through a counting sink costs one serialization pass but
    never materialises the byte string, so profiling large key arrays does
    not double peak memory.
    """
    sink = _CountingSink()
    pickle.Pickler(sink, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return sink.nbytes


def broadcast_conditions(
    condition: "JoinCondition | list[JoinCondition]", num_regions: int
) -> "list[JoinCondition]":
    """Normalise the one-or-per-region condition argument to a full list.

    Shared by every region-join entry point (:func:`join_assigned_regions`
    and the streaming backends) so the list-or-scalar contract is validated
    in exactly one place.
    """
    if isinstance(condition, list):
        if len(condition) != num_regions:
            raise ValueError("need exactly one condition per region")
        return condition
    return [condition] * num_regions


def _join_region(
    args: tuple[np.ndarray, np.ndarray, JoinCondition, bool],
) -> tuple[int, float, int]:
    """Worker: join one region's tuples, return (output, seconds, worker pid).

    The pid identifies which pool process actually ran the region, so a
    tracer can stitch per-worker child spans under the dispatching batch.
    """
    keys1, keys2, condition, keys2_sorted = args
    start = perf_counter()
    output = count_join_output(keys1, keys2, condition, keys2_sorted=keys2_sorted)
    return output, perf_counter() - start, os.getpid()


def _busy_machines(pairs: list[tuple]) -> list[int]:
    """Machines whose region has both sides non-empty and so can produce output.

    The single definition of the skip rule, shared by the pool caller (which
    uses it on index arrays, before materializing any keys) and
    :func:`join_assigned_regions` (which uses it on the key arrays).
    """
    return [
        machine
        for machine, (side1, side2) in enumerate(pairs)
        if len(side1) > 0 and len(side2) > 0
    ]


@dataclass
class RegionExecution:
    """Everything measured while executing one set of region joins on a pool.

    Attributes
    ----------
    per_machine_output:
        Exact join output counted for each machine's region.
    per_machine_seconds:
        Wall-clock seconds each worker spent joining its region.
    wall_seconds:
        End-to-end time of the parallel execution, including scheduling.
    bytes_pickled:
        Bytes the task payloads (key arrays + condition) ship through the
        pool's pickle channel; zero when profiling is disabled.
    bytes_unpickled:
        Bytes the result payloads ship back; zero when profiling is
        disabled.
    worker_pids:
        OS pid of the pool process that ran each machine's region
        (``-1`` for machines whose region had an empty side and was never
        dispatched) -- what trace stitching keys worker tracks off.
    """

    per_machine_output: np.ndarray
    per_machine_seconds: np.ndarray
    wall_seconds: float
    bytes_pickled: int = 0
    bytes_unpickled: int = 0
    worker_pids: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )


def join_assigned_regions(
    pool: ProcessPoolExecutor,
    region_keys: list[tuple[np.ndarray, np.ndarray]],
    condition: "JoinCondition | list[JoinCondition]",
    keys2_sorted: bool = False,
    profile_serialization: bool = True,
) -> RegionExecution:
    """Join already-assigned regions on an existing worker pool.

    ``region_keys[m]`` holds the (R1, R2) key arrays of machine ``m``'s
    region.  Regions with an empty side cannot produce output and are never
    shipped to a worker.  Returns a :class:`RegionExecution` with the
    per-machine output counts, worker seconds and pids, the end-to-end wall
    time, and the pickle-channel byte counts.

    ``condition`` is one condition shared by every region, or a list with
    one condition per region -- the streaming engine's incremental counting
    mixes the original and the transposed orientation in a single dispatch
    so each batch costs one pool round-trip, not two.

    ``keys2_sorted`` promises that every region's second key array is
    already sorted ascending, letting the workers skip the per-region sort
    -- the streaming engine's incremental counting maintains its state
    sorted exactly so this path stays ``O(new log state)``.

    ``profile_serialization`` measures, via :func:`pickled_nbytes`, the
    bytes every task ships *to* the pool and every result ships *back* --
    the per-batch serialization tax the ROADMAP's zero-copy sticky-worker
    refactor is meant to drive to ~0.  The measurement costs one extra
    serialization pass over the payloads; pass ``False`` to skip it.

    This is the piece :func:`run_join_multiprocess` and the streaming
    :class:`~repro.streaming.backends.MultiprocessBackend` share: the caller
    owns the pool, so a streaming engine can amortise process start-up over
    every micro-batch instead of paying it per join.
    """
    conditions = broadcast_conditions(condition, len(region_keys))
    busy_machines = _busy_machines(region_keys)
    tasks = [
        (
            region_keys[machine][0],
            region_keys[machine][1],
            conditions[machine],
            keys2_sorted,
        )
        for machine in busy_machines
    ]
    bytes_pickled = (
        sum(pickled_nbytes(task) for task in tasks)
        if profile_serialization
        else 0
    )
    bytes_unpickled = 0
    start = perf_counter()
    outputs = np.zeros(len(region_keys), dtype=np.int64)
    seconds = np.zeros(len(region_keys))
    pids = np.full(len(region_keys), -1, dtype=np.int64)
    if tasks:
        for machine, result in zip(busy_machines, pool.map(_join_region, tasks)):
            output, elapsed, pid = result
            outputs[machine] = output
            seconds[machine] = elapsed
            pids[machine] = pid
            if profile_serialization:
                bytes_unpickled += pickled_nbytes(result)
    return RegionExecution(
        per_machine_output=outputs,
        per_machine_seconds=seconds,
        wall_seconds=perf_counter() - start,
        bytes_pickled=bytes_pickled,
        bytes_unpickled=bytes_unpickled,
        worker_pids=pids,
    )


@dataclass
class MultiprocessJoinResult:
    """Wall-clock results of a multiprocess partitioned join.

    Attributes
    ----------
    per_machine_output:
        Output tuples produced by each region's worker.
    per_machine_seconds:
        Wall-clock seconds each worker spent joining its region.
    wall_seconds:
        End-to-end time of the parallel execution (including scheduling).
    total_output:
        Sum of the per-machine outputs.
    """

    per_machine_output: np.ndarray
    per_machine_seconds: np.ndarray
    wall_seconds: float

    @property
    def total_output(self) -> int:
        """Total output tuples across machines."""
        return int(self.per_machine_output.sum())

    @property
    def max_machine_seconds(self) -> float:
        """Time of the slowest worker -- the quantity load balancing minimises."""
        if len(self.per_machine_seconds) == 0:
            return 0.0
        return float(self.per_machine_seconds.max())


def run_join_multiprocess(
    partitioning: Partitioning,
    keys1: np.ndarray,
    keys2: np.ndarray,
    condition: JoinCondition,
    max_workers: int | None = None,
    rng: np.random.Generator | None = None,
) -> MultiprocessJoinResult:
    """Execute a partitioned join with one OS process per busy region.

    Parameters
    ----------
    partitioning:
        Any partitioning scheme.
    keys1, keys2:
        Join keys of R1 and R2.
    condition:
        The join condition.
    max_workers:
        Upper bound on concurrent worker processes (defaults to the pool's
        own default, usually the CPU count).
    rng:
        Random generator for randomised schemes.
    """
    rng = rng or np.random.default_rng(0)
    keys1 = np.asarray(keys1, dtype=np.float64)
    keys2 = np.asarray(keys2, dtype=np.float64)

    assignments1 = partitioning.assign_r1(keys1, rng)
    assignments2 = partitioning.assign_r2(keys2, rng)
    # Regions with an empty side are never joined, so their keys are never
    # materialized either -- only busy regions pay the fancy-index copy.
    empty = np.empty(0, dtype=np.float64)
    busy = set(_busy_machines(list(zip(assignments1, assignments2))))
    region_keys = [
        (keys1[idx1], keys2[idx2]) if machine in busy else (empty, empty)
        for machine, (idx1, idx2) in enumerate(zip(assignments1, assignments2))
    ]

    # The wall clock includes pool start-up: a one-shot join pays it, which
    # is exactly why the streaming backend keeps its pool alive instead.
    # Pool start-up is skipped entirely when no region can produce output.
    start = perf_counter()
    if busy:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            execution = join_assigned_regions(
                pool, region_keys, condition, profile_serialization=False
            )
            outputs = execution.per_machine_output
            seconds = execution.per_machine_seconds
    else:
        outputs = np.zeros(len(region_keys), dtype=np.int64)
        seconds = np.zeros(len(region_keys))
    wall = perf_counter() - start
    return MultiprocessJoinResult(
        per_machine_output=outputs,
        per_machine_seconds=seconds,
        wall_seconds=wall,
    )
