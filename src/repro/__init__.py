"""repro -- Load Balancing and Skew Resilience for Parallel Joins (ICDE 2016).

A reproduction of the equi-weight histogram (EWH / CSIO) partitioning scheme
of Vitorovic, Elseidy and Koch, together with every substrate it needs: the
1-Bucket and M-Bucket baselines, the parallel Stream-Sample output sampler,
the sampling/coarsening/MonotonicBSP histogram pipeline, a shared-nothing
execution engine, the evaluation datasets and workloads, and a benchmark
harness that regenerates every table and figure of the paper's evaluation.

Quickstart::

    from repro import CIOperator, CSIOperator, CSIOOperator, make_bcb

    workload = make_bcb(beta=3, small_segment_size=4000)
    for operator_cls in (CIOperator, CSIOperator, CSIOOperator):
        result = operator_cls(num_machines=16).run(
            workload.keys1, workload.keys2, workload.condition,
            workload.weight_fn,
        )
        print(result.scheme, f"total cost {result.total_cost:,.0f}")
"""

from repro.core.histogram import (
    EWHConfig,
    EquiWeightHistogram,
    build_equi_weight_histogram,
)
from repro.core.weights import (
    BAND_JOIN_WEIGHTS,
    EQUI_BAND_JOIN_WEIGHTS,
    WeightFunction,
)
from repro.engine.adaptive import AdaptiveOperator
from repro.engine.heterogeneous import run_heterogeneous_join
from repro.engine.cluster import run_partitioned_join
from repro.engine.executor import run_join_multiprocess
from repro.engine.operators import CIOperator, CSIOOperator, CSIOperator
from repro.joins.conditions import (
    BandJoinCondition,
    CompositeEquiBandCondition,
    EquiJoinCondition,
    InequalityJoinCondition,
    InequalityOp,
)
from repro.joins.multiway import MultiwayJoinStep, run_multiway_join
from repro.joins.relations import Relation
from repro.partitioning.ewh import build_ewh_partitioning
from repro.partitioning.m_bucket import MBucketConfig, build_m_bucket_partitioning
from repro.partitioning.one_bucket import build_one_bucket_partitioning
from repro.streaming import (
    ArrayStreamSource,
    BatchMetrics,
    DriftAdaptiveEWHPolicy,
    DriftDetector,
    DriftingZipfSource,
    ExponentialDecayWindow,
    IncrementalHistogram,
    MicroBatch,
    SlidingWindow,
    StaticEWHPolicy,
    StaticOneBucketPolicy,
    StreamingJoinEngine,
    StreamRunResult,
    StreamSource,
    UnboundedWindow,
    WindowPolicy,
    compare_streaming_schemes,
    make_window,
)
from repro.workloads.definitions import make_bcb, make_beocd, make_bicd

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Join conditions and relations.
    "BandJoinCondition",
    "EquiJoinCondition",
    "InequalityJoinCondition",
    "InequalityOp",
    "CompositeEquiBandCondition",
    "Relation",
    # Cost model.
    "WeightFunction",
    "BAND_JOIN_WEIGHTS",
    "EQUI_BAND_JOIN_WEIGHTS",
    # The equi-weight histogram.
    "EWHConfig",
    "EquiWeightHistogram",
    "build_equi_weight_histogram",
    # Partitioning schemes.
    "build_one_bucket_partitioning",
    "build_m_bucket_partitioning",
    "MBucketConfig",
    "build_ewh_partitioning",
    # Engine.
    "run_partitioned_join",
    "run_join_multiprocess",
    "CIOperator",
    "CSIOperator",
    "CSIOOperator",
    "AdaptiveOperator",
    "run_heterogeneous_join",
    "MultiwayJoinStep",
    "run_multiway_join",
    # Streaming subsystem.
    "MicroBatch",
    "StreamSource",
    "ArrayStreamSource",
    "DriftingZipfSource",
    "IncrementalHistogram",
    "DriftDetector",
    "BatchMetrics",
    "StreamRunResult",
    "StaticOneBucketPolicy",
    "StaticEWHPolicy",
    "DriftAdaptiveEWHPolicy",
    "WindowPolicy",
    "UnboundedWindow",
    "SlidingWindow",
    "ExponentialDecayWindow",
    "make_window",
    "StreamingJoinEngine",
    "compare_streaming_schemes",
    # Workloads.
    "make_bicd",
    "make_bcb",
    "make_beocd",
]
