"""Monotonic join conditions.

The paper targets the class of *monotonic* joins: joins whose candidate-cell
structure in the join matrix is monotonic, i.e. the candidate cells of every
row (and column) form one contiguous run.  Equi-joins, band-joins and
inequality joins (``<``, ``<=``, ``>``, ``>=``) all belong to this class, as
do conjunctions of an equality condition with a band condition when keys are
encoded lexicographically (the BE_OCD join of the paper).

Every condition exposes three views of the same predicate:

``matches(k1, k2)``
    Does a tuple from R1 with join key ``k1`` join with a tuple from R2 with
    join key ``k2``?

``joinable_interval(k1)``
    The closed interval of R2 join keys that join with ``k1``.  This is what
    Stream-Sample uses to compute joinable-set sizes and what hash-based
    schemes cannot exploit for non-equi conditions.

``cell_is_candidate(lo1, hi1, lo2, hi2)``
    Can *any* pair of keys drawn from the closed key ranges ``[lo1, hi1]``
    (R1 side) and ``[lo2, hi2]`` (R2 side) satisfy the join?  Grid cells for
    which this returns ``False`` are non-candidates and are never assigned to
    a machine by the content-sensitive schemes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "JoinCondition",
    "EquiJoinCondition",
    "BandJoinCondition",
    "InequalityJoinCondition",
    "InequalityOp",
    "CompositeEquiBandCondition",
    "CONDITION_KINDS",
    "make_condition",
    "exact_integer_keys",
    "normalise_keys",
]

#: The condition kinds :func:`make_condition` constructs, in catalogue
#: order.  The query compiler validates against this tuple so its error
#: messages can name every choice.
CONDITION_KINDS = ("equi", "band", "inequality", "composite")


def exact_integer_keys(keys) -> "np.ndarray | None":
    """The array's values as exact int64, or ``None`` when that's impossible.

    This is the one shared definition of "integer keys that must not round
    through float64": signed-integer arrays widen to int64 (copy-free when
    already int64); unsigned arrays qualify when every value fits in int64
    (converting avoids both uint underflow in ``k - beta`` and lossy float
    promotion in mixed comparisons).  Float and other dtypes -- and the
    pathological uint64 beyond int64 range -- return ``None``: callers
    needing a total function fall back to ``float64`` themselves.  Used by
    the band/equi exact-count paths here, by
    :func:`~repro.joins.local.count_join_output` and by the streaming
    sources, so the edge rules can never silently diverge.
    """
    keys = np.asarray(keys)
    if keys.dtype.kind == "i":
        return keys.astype(np.int64, copy=False)
    if keys.dtype.kind == "u":
        if len(keys) == 0 or keys.max() <= np.iinfo(np.int64).max:
            return keys.astype(np.int64)
    return None


def normalise_keys(keys) -> np.ndarray:
    """Normalise a join-key array: exact int64 image, else ``float64``.

    The total-function companion of :func:`exact_integer_keys`, shared by
    the counting kernel and the streaming sources so their fallback rule
    cannot drift.
    """
    exact = exact_integer_keys(keys)
    if exact is not None:
        return exact
    return np.asarray(keys, dtype=np.float64)


class JoinCondition:
    """Abstract base class for monotonic join conditions.

    Subclasses must implement :meth:`matches`, :meth:`joinable_interval` and
    :meth:`cell_is_candidate`.  The vectorised helpers are implemented once
    here on top of those primitives but are overridden where a faster
    numpy-native formulation exists.
    """

    #: Human-readable name used in reports and benchmark output.
    name: str = "join"

    def matches(self, k1: float, k2: float) -> bool:
        """Return ``True`` iff keys ``k1`` (from R1) and ``k2`` (from R2) join."""
        raise NotImplementedError

    def joinable_interval(self, k1: float) -> tuple[float, float]:
        """Return the closed interval ``[lo, hi]`` of R2 keys joinable with ``k1``."""
        raise NotImplementedError

    def cell_is_candidate(
        self, lo1: float, hi1: float, lo2: float, hi2: float
    ) -> bool:
        """Return ``True`` iff the key ranges ``[lo1, hi1] x [lo2, hi2]`` may join."""
        raise NotImplementedError

    @property
    def transposed(self) -> "JoinCondition":
        """The same predicate with the join sides swapped.

        ``transposed.matches(k2, k1) == matches(k1, k2)`` for all keys, so
        ``transposed.joinable_interval(k2)`` is the interval of *R1* keys
        joinable with ``k2``.  The streaming engine's incremental counting
        uses this to count (retained R1 state) x (new R2 arrivals) pairs by
        binary-searching the sorted state side.  Inequality joins flip the
        operator; band-like conditions return a wrapper whose interval
        bounds are the exact floating-point inverses of the original
        ``[k1 - beta, k1 + beta]`` test, so both orientations agree
        bit-for-bit on every float input -- including keys exactly at a
        rounded band boundary.
        """
        raise NotImplementedError(
            f"{self.__class__.__name__} does not define a transposed condition"
        )

    # ------------------------------------------------------------------
    # Vectorised helpers
    # ------------------------------------------------------------------
    def candidate_grid(
        self,
        row_lo: np.ndarray,
        row_hi: np.ndarray,
        col_lo: np.ndarray,
        col_hi: np.ndarray,
    ) -> np.ndarray:
        """Candidate mask of a grid: rows are R1 key ranges, columns R2 key ranges.

        The default implementation loops over cells; band and inequality
        conditions override it with a broadcasted numpy formulation, which is
        what keeps candidate-mask construction fast for fine grids.
        """
        row_lo = np.asarray(row_lo, dtype=np.float64)
        row_hi = np.asarray(row_hi, dtype=np.float64)
        col_lo = np.asarray(col_lo, dtype=np.float64)
        col_hi = np.asarray(col_hi, dtype=np.float64)
        mask = np.zeros((len(row_lo), len(col_lo)), dtype=bool)
        for i in range(len(row_lo)):
            for j in range(len(col_lo)):
                mask[i, j] = self.cell_is_candidate(
                    float(row_lo[i]), float(row_hi[i]),
                    float(col_lo[j]), float(col_hi[j]),
                )
        return mask
    def matches_many(self, keys1: np.ndarray, keys2: np.ndarray) -> np.ndarray:
        """Element-wise :meth:`matches` over two equal-length key arrays."""
        keys1 = np.asarray(keys1, dtype=np.float64)  # repro: ignore[KEY001]  # base-class float fallback; exact-int subclasses override
        keys2 = np.asarray(keys2, dtype=np.float64)  # repro: ignore[KEY001]  # base-class float fallback; exact-int subclasses override
        if keys1.shape != keys2.shape:
            raise ValueError("matches_many requires equal-length key arrays")
        return np.fromiter(
            (self.matches(a, b) for a, b in zip(keys1, keys2)),
            dtype=bool,
            count=len(keys1),
        )

    def joinable_bounds(self, keys1: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`joinable_interval`: arrays of lower and upper bounds."""
        keys1 = np.asarray(keys1, dtype=np.float64)  # repro: ignore[KEY001]  # k is a float64 array element here
        lows = np.empty(len(keys1), dtype=np.float64)
        highs = np.empty(len(keys1), dtype=np.float64)
        for i, k in enumerate(keys1):
            lows[i], highs[i] = self.joinable_interval(float(k))
        return lows, highs

    def count_matches_per_key(
        self, keys1: np.ndarray, sorted_keys2: np.ndarray
    ) -> np.ndarray:
        """For each key in ``keys1``, count joinable tuples in ``sorted_keys2``.

        ``sorted_keys2`` must be sorted ascending.  This is the joinable-set
        size d2(k1) used by Stream-Sample, computed with binary search.
        Input dtypes are preserved: integer key arrays are searched as
        integers, so a band/equi condition with an integral width counts
        int64 keys above 2**53 exactly (see
        :meth:`BandJoinCondition.joinable_bounds`).
        """
        keys1 = np.asarray(keys1)
        sorted_keys2 = np.asarray(sorted_keys2)
        lows, highs = self.joinable_bounds(keys1)
        left = np.searchsorted(sorted_keys2, lows, side="left")
        right = np.searchsorted(sorted_keys2, highs, side="right")
        return (right - left).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{self.__class__.__name__}()"


@dataclass(frozen=True, repr=False)
class BandJoinCondition(JoinCondition):
    """Band join ``|R1.key - R2.key| <= beta``.

    ``beta = 0`` degenerates to an equi-join on numeric keys.
    """

    beta: float

    def __post_init__(self) -> None:
        if self.beta < 0:
            raise ValueError(f"band width must be non-negative, got {self.beta}")

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"band(beta={self.beta:g})"

    def matches(self, k1: float, k2: float) -> bool:
        # Phrased as the interval test (not abs(k1 - k2) <= beta) so that
        # matches() and joinable_interval() agree bit-for-bit under floating
        # point rounding.
        return k1 - self.beta <= k2 <= k1 + self.beta

    def joinable_interval(self, k1: float) -> tuple[float, float]:
        return (k1 - self.beta, k1 + self.beta)

    @property
    def transposed(self) -> "JoinCondition":
        # A band is symmetric mathematically, but the interval test
        # [fl(k1-beta), fl(k1+beta)] is evaluated from the R1 side; the
        # wrapper inverts those rounded bounds exactly (see
        # _TransposedBandCondition) so both orientations agree bit-for-bit.
        return _TransposedBandCondition(self)

    def cell_is_candidate(
        self, lo1: float, hi1: float, lo2: float, hi2: float
    ) -> bool:
        # The ranges can produce a match unless they are separated by more
        # than beta on either side.
        return not (lo2 - hi1 > self.beta or lo1 - hi2 > self.beta)

    def _integral_beta(self) -> "np.int64 | None":
        """The band width as an exact int64, or ``None`` if not integral.

        A width given as a Python int converts directly -- routing it
        through ``float`` first would round widths above 2**53, silently
        changing which keys fall inside the band.
        """
        if isinstance(self.beta, (int, np.integer)) and not isinstance(
            self.beta, bool
        ):
            if abs(int(self.beta)) < 2**62:
                return np.int64(self.beta)
            return None
        beta = float(self.beta)
        if beta.is_integer() and abs(beta) < 2**62:
            return np.int64(beta)
        return None

    def joinable_bounds(self, keys1: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-key closed bounds ``[k - beta, k + beta]``, dtype-aware.

        Integer keys with an integral band width are bounded in exact
        int64 arithmetic (unsigned arrays via their exact int64 image):
        casting integer keys above 2**53 to float64 rounds them, which can
        move a key across the band boundary and change the join output.
        (The int64 path assumes ``|key| + beta`` stays inside the int64
        range, which any realistic key domain does.)
        """
        beta = self._integral_beta()
        exact = exact_integer_keys(keys1) if beta is not None else None
        if exact is not None:
            return exact - beta, exact + beta
        keys1 = np.asarray(keys1, dtype=np.float64)
        return keys1 - self.beta, keys1 + self.beta

    def matches_many(self, keys1: np.ndarray, keys2: np.ndarray) -> np.ndarray:
        beta = self._integral_beta()
        if beta is not None:
            exact1 = exact_integer_keys(keys1)
            exact2 = exact_integer_keys(keys2)
            if exact1 is not None and exact2 is not None:
                return (exact2 >= exact1 - beta) & (exact2 <= exact1 + beta)
        keys1 = np.asarray(keys1, dtype=np.float64)
        keys2 = np.asarray(keys2, dtype=np.float64)
        return (keys2 >= keys1 - self.beta) & (keys2 <= keys1 + self.beta)

    def candidate_grid(
        self,
        row_lo: np.ndarray,
        row_hi: np.ndarray,
        col_lo: np.ndarray,
        col_hi: np.ndarray,
    ) -> np.ndarray:
        row_lo = np.asarray(row_lo, dtype=np.float64)
        row_hi = np.asarray(row_hi, dtype=np.float64)
        col_lo = np.asarray(col_lo, dtype=np.float64)
        col_hi = np.asarray(col_hi, dtype=np.float64)
        too_high = col_lo[None, :] - row_hi[:, None] > self.beta
        too_low = row_lo[:, None] - col_hi[None, :] > self.beta
        return ~(too_high | too_low)

    def __repr__(self) -> str:
        return f"BandJoinCondition(beta={self.beta!r})"


@dataclass(frozen=True, repr=False)
class EquiJoinCondition(BandJoinCondition):
    """Equality join ``R1.key = R2.key`` (a band join of width zero)."""

    beta: float = 0.0

    @property
    def name(self) -> str:  # type: ignore[override]
        return "equi"

    def __repr__(self) -> str:
        return "EquiJoinCondition()"


class InequalityOp(enum.Enum):
    """Comparison operator of an inequality join ``R1.key <op> R2.key``."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


@dataclass(frozen=True, repr=False)
class InequalityJoinCondition(JoinCondition):
    """Inequality join ``R1.key <op> R2.key`` for ``op`` in ``<, <=, >, >=``."""

    op: InequalityOp

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"inequality({self.op.value})"

    def matches(self, k1: float, k2: float) -> bool:
        if self.op is InequalityOp.LT:
            return k1 < k2
        if self.op is InequalityOp.LE:
            return k1 <= k2
        if self.op is InequalityOp.GT:
            return k1 > k2
        return k1 >= k2

    def joinable_interval(self, k1: float) -> tuple[float, float]:
        if self.op is InequalityOp.LT:
            return (math.nextafter(k1, math.inf), math.inf)
        if self.op is InequalityOp.LE:
            return (k1, math.inf)
        if self.op is InequalityOp.GT:
            return (-math.inf, math.nextafter(k1, -math.inf))
        return (-math.inf, k1)

    @property
    def transposed(self) -> "InequalityJoinCondition":
        # k1 < k2 seen from the R2 side is k2 > k1: flip the operator.
        flipped = {
            InequalityOp.LT: InequalityOp.GT,
            InequalityOp.LE: InequalityOp.GE,
            InequalityOp.GT: InequalityOp.LT,
            InequalityOp.GE: InequalityOp.LE,
        }
        return InequalityJoinCondition(flipped[self.op])

    def cell_is_candidate(
        self, lo1: float, hi1: float, lo2: float, hi2: float
    ) -> bool:
        if self.op in (InequalityOp.LT, InequalityOp.LE):
            strict = self.op is InequalityOp.LT
            return lo1 < hi2 if strict else lo1 <= hi2
        strict = self.op is InequalityOp.GT
        return hi1 > lo2 if strict else hi1 >= lo2

    def matches_many(self, keys1: np.ndarray, keys2: np.ndarray) -> np.ndarray:
        keys1 = np.asarray(keys1, dtype=np.float64)  # repro: ignore[KEY001]  # inequality predicates are float-ordered by definition
        keys2 = np.asarray(keys2, dtype=np.float64)  # repro: ignore[KEY001]  # inequality predicates are float-ordered by definition
        if self.op is InequalityOp.LT:
            return keys1 < keys2
        if self.op is InequalityOp.LE:
            return keys1 <= keys2
        if self.op is InequalityOp.GT:
            return keys1 > keys2
        return keys1 >= keys2

    def joinable_bounds(self, keys1: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        keys1 = np.asarray(keys1, dtype=np.float64)  # repro: ignore[KEY001]  # inequality predicates are float-ordered by definition
        inf = np.full(len(keys1), np.inf)
        if self.op is InequalityOp.LT:
            return np.nextafter(keys1, np.inf), inf
        if self.op is InequalityOp.LE:
            return keys1, inf
        if self.op is InequalityOp.GT:
            return -inf, np.nextafter(keys1, -np.inf)
        return -inf, keys1

    def candidate_grid(
        self,
        row_lo: np.ndarray,
        row_hi: np.ndarray,
        col_lo: np.ndarray,
        col_hi: np.ndarray,
    ) -> np.ndarray:
        row_lo = np.asarray(row_lo, dtype=np.float64)
        row_hi = np.asarray(row_hi, dtype=np.float64)
        col_lo = np.asarray(col_lo, dtype=np.float64)
        col_hi = np.asarray(col_hi, dtype=np.float64)
        if self.op is InequalityOp.LT:
            return row_lo[:, None] < col_hi[None, :]
        if self.op is InequalityOp.LE:
            return row_lo[:, None] <= col_hi[None, :]
        if self.op is InequalityOp.GT:
            return row_hi[:, None] > col_lo[None, :]
        return row_hi[:, None] >= col_lo[None, :]

    def __repr__(self) -> str:
        return f"InequalityJoinCondition(op=InequalityOp.{self.op.name})"


@dataclass(frozen=True, repr=False)
class CompositeEquiBandCondition(JoinCondition):
    """Conjunction of an equality and a band condition (the BE_OCD join).

    The paper's BE_OCD join requires ``O1.custkey = O2.custkey`` *and*
    ``|O1.ship_priority - O2.ship_priority| <= beta``.  Such a join is
    monotonic under a lexicographic encoding of the composite key: we map the
    pair ``(equi_key, band_key)`` to the scalar ``equi_key * scale +
    band_key`` where ``scale`` strictly exceeds the band key's span plus the
    band width.  Under that encoding the composite join is exactly a band
    join of width ``beta`` on encoded keys, so every algorithm in the library
    (candidate checks, Stream-Sample, tiling) applies unchanged.

    Parameters
    ----------
    beta:
        Width of the band on the band attribute.
    scale:
        Encoding multiplier for the equality attribute.  Must satisfy
        ``scale > band_key_max - band_key_min + beta``.
    band_key_min, band_key_max:
        Inclusive domain of the band attribute, used to validate ``scale``
        and by :meth:`encode`.
    """

    beta: float
    scale: float
    band_key_min: float = 0.0
    band_key_max: float = 0.0

    def __post_init__(self) -> None:
        if self.beta < 0:
            raise ValueError(f"band width must be non-negative, got {self.beta}")
        span = self.band_key_max - self.band_key_min
        if span < 0:
            raise ValueError("band_key_max must be >= band_key_min")
        if self.scale <= span + self.beta:
            raise ValueError(
                "scale must exceed the band attribute span plus the band width "
                f"(need > {span + self.beta}, got {self.scale})"
            )

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"equi+band(beta={self.beta:g})"

    # -- encoding -------------------------------------------------------
    def encode(self, equi_key, band_key):
        """Encode composite ``(equi_key, band_key)`` into a scalar join key.

        Accepts scalars or numpy arrays.
        """
        return np.asarray(equi_key, dtype=np.float64) * self.scale + np.asarray(  # repro: ignore[KEY001]  # composite scalar encoding is float64 arithmetic by design
            band_key, dtype=np.float64
        )

    def decode(self, encoded):
        """Inverse of :meth:`encode`; returns ``(equi_key, band_key)`` arrays."""
        encoded = np.asarray(encoded, dtype=np.float64)
        equi = np.floor((encoded - self.band_key_min) / self.scale)
        band = encoded - equi * self.scale
        return equi, band

    # -- JoinCondition API on encoded keys ------------------------------
    def matches(self, k1: float, k2: float) -> bool:
        # Interval phrasing keeps matches() consistent with
        # joinable_interval() under floating point (see BandJoinCondition).
        return k1 - self.beta <= k2 <= k1 + self.beta

    def joinable_interval(self, k1: float) -> tuple[float, float]:
        return (k1 - self.beta, k1 + self.beta)

    @property
    def transposed(self) -> "JoinCondition":
        # On encoded keys the composite predicate is a band; use the exact
        # inverse-bound wrapper like BandJoinCondition does.
        return _TransposedBandCondition(self)

    def cell_is_candidate(
        self, lo1: float, hi1: float, lo2: float, hi2: float
    ) -> bool:
        return not (lo2 - hi1 > self.beta or lo1 - hi2 > self.beta)

    def joinable_bounds(self, keys1: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        keys1 = np.asarray(keys1, dtype=np.float64)  # repro: ignore[KEY001]  # decoding operates on float64-encoded composites
        return keys1 - self.beta, keys1 + self.beta

    def matches_many(self, keys1: np.ndarray, keys2: np.ndarray) -> np.ndarray:
        keys1 = np.asarray(keys1, dtype=np.float64)  # repro: ignore[KEY001]  # band test on float64-encoded composite keys
        keys2 = np.asarray(keys2, dtype=np.float64)  # repro: ignore[KEY001]  # band test on float64-encoded composite keys
        return (keys2 >= keys1 - self.beta) & (keys2 <= keys1 + self.beta)

    def candidate_grid(
        self,
        row_lo: np.ndarray,
        row_hi: np.ndarray,
        col_lo: np.ndarray,
        col_hi: np.ndarray,
    ) -> np.ndarray:
        row_lo = np.asarray(row_lo, dtype=np.float64)
        row_hi = np.asarray(row_hi, dtype=np.float64)
        col_lo = np.asarray(col_lo, dtype=np.float64)
        col_hi = np.asarray(col_hi, dtype=np.float64)
        too_high = col_lo[None, :] - row_hi[:, None] > self.beta
        too_low = row_lo[:, None] - col_hi[None, :] > self.beta
        return ~(too_high | too_low)

    def matches_composite(self, equi1, band1, equi2, band2) -> bool:
        """Match directly on un-encoded composite keys (reference semantics)."""
        return equi1 == equi2 and abs(band1 - band2) <= self.beta

    def __repr__(self) -> str:
        return (
            f"CompositeEquiBandCondition(beta={self.beta!r}, scale={self.scale!r}, "
            f"band_key_min={self.band_key_min!r}, band_key_max={self.band_key_max!r})"
        )


_INT64_MIN = np.int64(np.iinfo(np.int64).min)


def _to_ordinal(x: np.ndarray) -> np.ndarray:
    """Map float64s to int64 ordinals that preserve the numeric order.

    Positive floats already sort by their bit patterns; negative floats
    sort in reverse, so their bits are reflected (the classic
    total-ordering trick).  The map is an involution with
    :func:`_from_ordinal` (up to ``-0.0 == 0.0``).
    """
    bits = np.ascontiguousarray(x, dtype=np.float64).view(np.int64)
    return np.where(bits >= 0, bits, _INT64_MIN - bits)


def _from_ordinal(ordinal: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_to_ordinal`."""
    bits = np.where(ordinal >= 0, ordinal, _INT64_MIN - ordinal)
    return bits.view(np.float64)


def _ordinal_midpoint(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Overflow-safe elementwise int64 midpoint with ``lo <= mid <= hi``."""
    return (lo >> 1) + (hi >> 1) + (lo & hi & 1)


#: Memoised bisection results, keyed by (beta, key, is_lower).  Bisected
#: keys are the rare scale-mismatch cases (e.g. ``k2 - beta`` near zero),
#: and streams revisit the same hot key values batch after batch, so the
#: cache turns the 66-iteration bisection into a dict hit from the second
#: occurrence on.  Bounded; per process (workers build their own).
_INVERSE_CACHE: dict[tuple[float, float, bool], float] = {}
_INVERSE_CACHE_LIMIT = 65536


def _bisect_inverse(pending: np.ndarray, beta: float, lower: bool) -> np.ndarray:
    """Exact inverse band bounds by bisecting float *ordinals*.

    For ``lower=True``: minimal ``x`` with ``fl(x + beta) >= k2``, bracket
    ``(-inf`` unsatisfied, ``k2`` satisfied] -- rounding a real ``>= k2``
    cannot fall below the representable ``k2``.  For ``lower=False``:
    maximal ``x`` with ``fl(x - beta) <= k2``, bracket ``[k2`` satisfied,
    ``+inf`` unsatisfied).  The whole float range spans fewer than 2**65
    ordinals, so 66 halvings always reach a gap of one.
    """
    if lower:
        lo = _to_ordinal(np.full_like(pending, -np.inf))
        hi = _to_ordinal(pending)
    else:
        lo = _to_ordinal(pending)
        hi = _to_ordinal(np.full_like(pending, np.inf))
    for _ in range(66):
        mid = _ordinal_midpoint(lo, hi)
        x = _from_ordinal(mid)
        satisfied = (x + beta) >= pending if lower else (x - beta) <= pending
        if lower:
            hi = np.where(satisfied, mid, hi)
            lo = np.where(satisfied, lo, mid)
        else:
            lo = np.where(satisfied, mid, lo)
            hi = np.where(satisfied, hi, mid)
    return _from_ordinal(hi if lower else lo)


def _bisect_cached(keys: np.ndarray, beta: float, lower: bool) -> np.ndarray:
    """Deduplicated, memoised wrapper around :func:`_bisect_inverse`."""
    unique, inverse = np.unique(keys, return_inverse=True)
    out = np.empty(len(unique), dtype=np.float64)
    misses = []
    for position, key in enumerate(unique):
        hit = _INVERSE_CACHE.get((beta, float(key), lower))  # repro: ignore[KEY001]  # cache is keyed by the float ordinal being bisected
        if hit is None:
            misses.append(position)
        else:
            out[position] = hit
    if misses:
        solved = _bisect_inverse(unique[misses], beta, lower)
        for position, value in zip(misses, solved):
            out[position] = value
            if len(_INVERSE_CACHE) < _INVERSE_CACHE_LIMIT:
                _INVERSE_CACHE[(beta, float(unique[position]), lower)] = float(
                    value
                )
    return out[inverse]


def _band_lower_inverse(keys2: np.ndarray, beta: float) -> np.ndarray:
    """Smallest ``x`` per key with ``fl(x + beta) >= k2`` (exact inverse).

    The band test from the R1 side is ``k2 <= fl(k1 + beta)``; seen from the
    R2 side that is ``k1 >= L(k2)`` with ``L`` this inverse.  ``fl(k2 -
    beta)`` is within a couple of ulps *of the sum's scale*, so a few
    :func:`numpy.nextafter` nudges settle the common same-scale case; keys
    whose own ulp is far smaller than the sum's (e.g. ``x`` near zero with a
    large ``beta``) would need astronomically many single-ulp steps, so any
    lane not settled falls back to a memoised float-ordinal bisection
    (:func:`_bisect_cached`), guaranteed to terminate.
    """
    keys2 = np.asarray(keys2, dtype=np.float64)  # repro: ignore[KEY001]  # band inverse works in the keys' float64 image
    x = keys2 - beta
    for _ in range(4):
        unsatisfied = (x + beta) < keys2
        if unsatisfied.any():
            x = np.where(unsatisfied, np.nextafter(x, np.inf), x)
            continue
        predecessor = np.nextafter(x, -np.inf)
        movable = (predecessor + beta) >= keys2
        if not movable.any():
            return x
        x = np.where(movable, predecessor, x)
    settled = ((x + beta) >= keys2) & ((np.nextafter(x, -np.inf) + beta) < keys2)
    if not settled.all():
        x = x.copy()
        pending = ~settled
        x[pending] = _bisect_cached(keys2[pending], beta, lower=True)
    return x


def _band_upper_inverse(keys2: np.ndarray, beta: float) -> np.ndarray:
    """Largest ``x`` per key with ``fl(x - beta) <= k2`` (exact inverse).

    Mirror of :func:`_band_lower_inverse` for the ``fl(k1 - beta) <= k2``
    half of the band test, with the same nudge-then-bisect structure.
    """
    keys2 = np.asarray(keys2, dtype=np.float64)  # repro: ignore[KEY001]  # band inverse works in the keys' float64 image
    x = keys2 + beta
    for _ in range(4):
        unsatisfied = (x - beta) > keys2
        if unsatisfied.any():
            x = np.where(unsatisfied, np.nextafter(x, -np.inf), x)
            continue
        successor = np.nextafter(x, np.inf)
        movable = (successor - beta) <= keys2
        if not movable.any():
            return x
        x = np.where(movable, successor, x)
    settled = ((x - beta) <= keys2) & ((np.nextafter(x, np.inf) - beta) > keys2)
    if not settled.all():
        x = x.copy()
        pending = ~settled
        x[pending] = _bisect_cached(keys2[pending], beta, lower=False)
    return x


@dataclass(frozen=True, repr=False)
class _TransposedBandCondition(JoinCondition):
    """A band-like condition evaluated from the R2 side, float-exactly.

    The original predicate is the interval test ``fl(k1 - beta) <= k2 <=
    fl(k1 + beta)``, evaluated per R1 key.  Counting from the R2 side needs
    the set of R1 keys matching a given ``k2`` -- and because the bounds are
    *rounded* functions of ``k1``, that set is ``[L(k2), U(k2)]`` for the
    exact inverses computed by :func:`_band_lower_inverse` /
    :func:`_band_upper_inverse`, not the naively mirrored ``[fl(k2 - beta),
    fl(k2 + beta)]`` (which can disagree by one ulp exactly at a band
    boundary).  With this wrapper both orientations agree bit-for-bit on
    every float input, which the streaming engine's incremental counting
    relies on.
    """

    base: JoinCondition

    @property
    def name(self) -> str:  # type: ignore[override]
        """Reporting name, derived from the wrapped condition."""
        return f"transposed({self.base.name})"

    @property
    def transposed(self) -> JoinCondition:
        """Transposing twice restores the original orientation."""
        return self.base

    def matches(self, k1: float, k2: float) -> bool:
        """Swapped-argument match: this object's R1 side is the base's R2."""
        return self.base.matches(k2, k1)

    def joinable_interval(self, k1: float) -> tuple[float, float]:
        """Exact interval of base-R1 keys joinable with base-R2 key ``k1``."""
        keys = np.asarray([k1], dtype=np.float64)  # repro: ignore[KEY001]  # exact inverse bounds are computed in the float64 image
        beta = self.base.beta
        return (
            float(_band_lower_inverse(keys, beta)[0]),  # repro: ignore[KEY001]  # exact inverse bounds are computed in the float64 image
            float(_band_upper_inverse(keys, beta)[0]),  # repro: ignore[KEY001]  # exact inverse bounds are computed in the float64 image
        )

    def joinable_bounds(self, keys1: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised exact inverse bounds (what incremental counting uses).

        Integer keys (signed, or unsigned with an exact int64 image) with
        an integral band width take the exact int64 path: the integer band
        test is perfectly symmetric (no rounding happens in ``k +- beta``),
        so the inverse bounds are simply ``[k - beta, k + beta]`` -- the
        float-ordinal inversion machinery exists only because *float*
        bounds round.
        """
        beta = self.base.beta
        integral = (
            self.base._integral_beta()
            if isinstance(self.base, BandJoinCondition)
            else None
        )
        exact = exact_integer_keys(keys1) if integral is not None else None
        if exact is not None:
            return exact - integral, exact + integral
        keys1 = np.asarray(keys1, dtype=np.float64)
        return _band_lower_inverse(keys1, beta), _band_upper_inverse(keys1, beta)

    def cell_is_candidate(
        self, lo1: float, hi1: float, lo2: float, hi2: float
    ) -> bool:
        """Delegate to the base condition with the ranges swapped."""
        return self.base.cell_is_candidate(lo2, hi2, lo1, hi1)

    def matches_many(self, keys1: np.ndarray, keys2: np.ndarray) -> np.ndarray:
        """Element-wise swapped match."""
        return self.base.matches_many(keys2, keys1)

    def __repr__(self) -> str:
        return f"_TransposedBandCondition({self.base!r})"


def make_condition(
    kind: str,
    *,
    beta: "float | int" = 0,
    op: "InequalityOp | str | None" = None,
    scale: "float | None" = None,
    band_key_min: float = 0.0,
    band_key_max: float = 0.0,
) -> JoinCondition:
    """Construct a :class:`JoinCondition` from spec-level vocabulary.

    The factory face of the condition hierarchy, mirroring
    :func:`repro.streaming.window.make_window` and
    :func:`repro.streaming.pipeline.make_backpressure`: callers that hold
    a parsed query (the :mod:`repro.query` compiler) or a config file name
    a *kind* and keyword parameters instead of importing concrete classes.

    Parameters
    ----------
    kind:
        One of :data:`CONDITION_KINDS`: ``"equi"`` (``beta`` must stay 0),
        ``"band"`` (requires ``beta``), ``"inequality"`` (requires ``op``,
        an :class:`InequalityOp` or its symbol, e.g. ``"<="``) or
        ``"composite"`` (requires ``scale``; band attribute domain via
        ``band_key_min``/``band_key_max``).
    beta:
        Band width.  An integral width passed as a Python int is preserved
        exactly through the int64 band path -- never routed through float
        (the ``exact_integer_keys`` discipline).

    Raises
    ------
    ValueError
        On an unknown kind or parameters that do not fit the kind.
    """
    if kind == "equi":
        if beta != 0:
            raise ValueError(
                f"an equi condition has no band width (got beta={beta!r}); "
                "use kind='band'"
            )
        if op is not None:
            raise ValueError("an equi condition takes no comparison operator")
        return EquiJoinCondition()
    if kind == "band":
        if op is not None:
            raise ValueError("a band condition takes no comparison operator")
        return BandJoinCondition(beta=beta)
    if kind == "inequality":
        if op is None:
            raise ValueError(
                "an inequality condition requires op (one of "
                f"{[member.value for member in InequalityOp]})"
            )
        if not isinstance(op, InequalityOp):
            try:
                op = InequalityOp(op)
            except ValueError:
                raise ValueError(
                    f"unknown inequality operator {op!r}; choose from "
                    f"{[member.value for member in InequalityOp]}"
                ) from None
        if beta != 0:
            raise ValueError("an inequality condition has no band width")
        return InequalityJoinCondition(op=op)
    if kind == "composite":
        if scale is None:
            raise ValueError(
                "a composite condition requires scale "
                "(> band attribute span + beta)"
            )
        return CompositeEquiBandCondition(
            beta=beta,
            scale=scale,
            band_key_min=band_key_min,
            band_key_max=band_key_max,
        )
    raise ValueError(
        f"unknown condition kind {kind!r}; choose from {CONDITION_KINDS}"
    )
