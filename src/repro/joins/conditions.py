"""Monotonic join conditions.

The paper targets the class of *monotonic* joins: joins whose candidate-cell
structure in the join matrix is monotonic, i.e. the candidate cells of every
row (and column) form one contiguous run.  Equi-joins, band-joins and
inequality joins (``<``, ``<=``, ``>``, ``>=``) all belong to this class, as
do conjunctions of an equality condition with a band condition when keys are
encoded lexicographically (the BE_OCD join of the paper).

Every condition exposes three views of the same predicate:

``matches(k1, k2)``
    Does a tuple from R1 with join key ``k1`` join with a tuple from R2 with
    join key ``k2``?

``joinable_interval(k1)``
    The closed interval of R2 join keys that join with ``k1``.  This is what
    Stream-Sample uses to compute joinable-set sizes and what hash-based
    schemes cannot exploit for non-equi conditions.

``cell_is_candidate(lo1, hi1, lo2, hi2)``
    Can *any* pair of keys drawn from the closed key ranges ``[lo1, hi1]``
    (R1 side) and ``[lo2, hi2]`` (R2 side) satisfy the join?  Grid cells for
    which this returns ``False`` are non-candidates and are never assigned to
    a machine by the content-sensitive schemes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "JoinCondition",
    "EquiJoinCondition",
    "BandJoinCondition",
    "InequalityJoinCondition",
    "InequalityOp",
    "CompositeEquiBandCondition",
]


class JoinCondition:
    """Abstract base class for monotonic join conditions.

    Subclasses must implement :meth:`matches`, :meth:`joinable_interval` and
    :meth:`cell_is_candidate`.  The vectorised helpers are implemented once
    here on top of those primitives but are overridden where a faster
    numpy-native formulation exists.
    """

    #: Human-readable name used in reports and benchmark output.
    name: str = "join"

    def matches(self, k1: float, k2: float) -> bool:
        """Return ``True`` iff keys ``k1`` (from R1) and ``k2`` (from R2) join."""
        raise NotImplementedError

    def joinable_interval(self, k1: float) -> tuple[float, float]:
        """Return the closed interval ``[lo, hi]`` of R2 keys joinable with ``k1``."""
        raise NotImplementedError

    def cell_is_candidate(
        self, lo1: float, hi1: float, lo2: float, hi2: float
    ) -> bool:
        """Return ``True`` iff the key ranges ``[lo1, hi1] x [lo2, hi2]`` may join."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Vectorised helpers
    # ------------------------------------------------------------------
    def candidate_grid(
        self,
        row_lo: np.ndarray,
        row_hi: np.ndarray,
        col_lo: np.ndarray,
        col_hi: np.ndarray,
    ) -> np.ndarray:
        """Candidate mask of a grid: rows are R1 key ranges, columns R2 key ranges.

        The default implementation loops over cells; band and inequality
        conditions override it with a broadcasted numpy formulation, which is
        what keeps candidate-mask construction fast for fine grids.
        """
        row_lo = np.asarray(row_lo, dtype=np.float64)
        row_hi = np.asarray(row_hi, dtype=np.float64)
        col_lo = np.asarray(col_lo, dtype=np.float64)
        col_hi = np.asarray(col_hi, dtype=np.float64)
        mask = np.zeros((len(row_lo), len(col_lo)), dtype=bool)
        for i in range(len(row_lo)):
            for j in range(len(col_lo)):
                mask[i, j] = self.cell_is_candidate(
                    float(row_lo[i]), float(row_hi[i]),
                    float(col_lo[j]), float(col_hi[j]),
                )
        return mask
    def matches_many(self, keys1: np.ndarray, keys2: np.ndarray) -> np.ndarray:
        """Element-wise :meth:`matches` over two equal-length key arrays."""
        keys1 = np.asarray(keys1, dtype=np.float64)
        keys2 = np.asarray(keys2, dtype=np.float64)
        if keys1.shape != keys2.shape:
            raise ValueError("matches_many requires equal-length key arrays")
        return np.fromiter(
            (self.matches(a, b) for a, b in zip(keys1, keys2)),
            dtype=bool,
            count=len(keys1),
        )

    def joinable_bounds(self, keys1: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`joinable_interval`: arrays of lower and upper bounds."""
        keys1 = np.asarray(keys1, dtype=np.float64)
        lows = np.empty(len(keys1), dtype=np.float64)
        highs = np.empty(len(keys1), dtype=np.float64)
        for i, k in enumerate(keys1):
            lows[i], highs[i] = self.joinable_interval(float(k))
        return lows, highs

    def count_matches_per_key(
        self, keys1: np.ndarray, sorted_keys2: np.ndarray
    ) -> np.ndarray:
        """For each key in ``keys1``, count joinable tuples in ``sorted_keys2``.

        ``sorted_keys2`` must be sorted ascending.  This is the joinable-set
        size d2(k1) used by Stream-Sample, computed with binary search.
        """
        keys1 = np.asarray(keys1, dtype=np.float64)
        sorted_keys2 = np.asarray(sorted_keys2, dtype=np.float64)
        lows, highs = self.joinable_bounds(keys1)
        left = np.searchsorted(sorted_keys2, lows, side="left")
        right = np.searchsorted(sorted_keys2, highs, side="right")
        return (right - left).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{self.__class__.__name__}()"


@dataclass(frozen=True, repr=False)
class BandJoinCondition(JoinCondition):
    """Band join ``|R1.key - R2.key| <= beta``.

    ``beta = 0`` degenerates to an equi-join on numeric keys.
    """

    beta: float

    def __post_init__(self) -> None:
        if self.beta < 0:
            raise ValueError(f"band width must be non-negative, got {self.beta}")

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"band(beta={self.beta:g})"

    def matches(self, k1: float, k2: float) -> bool:
        # Phrased as the interval test (not abs(k1 - k2) <= beta) so that
        # matches() and joinable_interval() agree bit-for-bit under floating
        # point rounding.
        return k1 - self.beta <= k2 <= k1 + self.beta

    def joinable_interval(self, k1: float) -> tuple[float, float]:
        return (k1 - self.beta, k1 + self.beta)

    def cell_is_candidate(
        self, lo1: float, hi1: float, lo2: float, hi2: float
    ) -> bool:
        # The ranges can produce a match unless they are separated by more
        # than beta on either side.
        return not (lo2 - hi1 > self.beta or lo1 - hi2 > self.beta)

    def joinable_bounds(self, keys1: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        keys1 = np.asarray(keys1, dtype=np.float64)
        return keys1 - self.beta, keys1 + self.beta

    def matches_many(self, keys1: np.ndarray, keys2: np.ndarray) -> np.ndarray:
        keys1 = np.asarray(keys1, dtype=np.float64)
        keys2 = np.asarray(keys2, dtype=np.float64)
        return (keys2 >= keys1 - self.beta) & (keys2 <= keys1 + self.beta)

    def candidate_grid(
        self,
        row_lo: np.ndarray,
        row_hi: np.ndarray,
        col_lo: np.ndarray,
        col_hi: np.ndarray,
    ) -> np.ndarray:
        row_lo = np.asarray(row_lo, dtype=np.float64)
        row_hi = np.asarray(row_hi, dtype=np.float64)
        col_lo = np.asarray(col_lo, dtype=np.float64)
        col_hi = np.asarray(col_hi, dtype=np.float64)
        too_high = col_lo[None, :] - row_hi[:, None] > self.beta
        too_low = row_lo[:, None] - col_hi[None, :] > self.beta
        return ~(too_high | too_low)

    def __repr__(self) -> str:
        return f"BandJoinCondition(beta={self.beta!r})"


@dataclass(frozen=True, repr=False)
class EquiJoinCondition(BandJoinCondition):
    """Equality join ``R1.key = R2.key`` (a band join of width zero)."""

    beta: float = 0.0

    @property
    def name(self) -> str:  # type: ignore[override]
        return "equi"

    def __repr__(self) -> str:
        return "EquiJoinCondition()"


class InequalityOp(enum.Enum):
    """Comparison operator of an inequality join ``R1.key <op> R2.key``."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


@dataclass(frozen=True, repr=False)
class InequalityJoinCondition(JoinCondition):
    """Inequality join ``R1.key <op> R2.key`` for ``op`` in ``<, <=, >, >=``."""

    op: InequalityOp

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"inequality({self.op.value})"

    def matches(self, k1: float, k2: float) -> bool:
        if self.op is InequalityOp.LT:
            return k1 < k2
        if self.op is InequalityOp.LE:
            return k1 <= k2
        if self.op is InequalityOp.GT:
            return k1 > k2
        return k1 >= k2

    def joinable_interval(self, k1: float) -> tuple[float, float]:
        if self.op is InequalityOp.LT:
            return (math.nextafter(k1, math.inf), math.inf)
        if self.op is InequalityOp.LE:
            return (k1, math.inf)
        if self.op is InequalityOp.GT:
            return (-math.inf, math.nextafter(k1, -math.inf))
        return (-math.inf, k1)

    def cell_is_candidate(
        self, lo1: float, hi1: float, lo2: float, hi2: float
    ) -> bool:
        if self.op in (InequalityOp.LT, InequalityOp.LE):
            strict = self.op is InequalityOp.LT
            return lo1 < hi2 if strict else lo1 <= hi2
        strict = self.op is InequalityOp.GT
        return hi1 > lo2 if strict else hi1 >= lo2

    def matches_many(self, keys1: np.ndarray, keys2: np.ndarray) -> np.ndarray:
        keys1 = np.asarray(keys1, dtype=np.float64)
        keys2 = np.asarray(keys2, dtype=np.float64)
        if self.op is InequalityOp.LT:
            return keys1 < keys2
        if self.op is InequalityOp.LE:
            return keys1 <= keys2
        if self.op is InequalityOp.GT:
            return keys1 > keys2
        return keys1 >= keys2

    def joinable_bounds(self, keys1: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        keys1 = np.asarray(keys1, dtype=np.float64)
        inf = np.full(len(keys1), np.inf)
        if self.op is InequalityOp.LT:
            return np.nextafter(keys1, np.inf), inf
        if self.op is InequalityOp.LE:
            return keys1, inf
        if self.op is InequalityOp.GT:
            return -inf, np.nextafter(keys1, -np.inf)
        return -inf, keys1

    def candidate_grid(
        self,
        row_lo: np.ndarray,
        row_hi: np.ndarray,
        col_lo: np.ndarray,
        col_hi: np.ndarray,
    ) -> np.ndarray:
        row_lo = np.asarray(row_lo, dtype=np.float64)
        row_hi = np.asarray(row_hi, dtype=np.float64)
        col_lo = np.asarray(col_lo, dtype=np.float64)
        col_hi = np.asarray(col_hi, dtype=np.float64)
        if self.op is InequalityOp.LT:
            return row_lo[:, None] < col_hi[None, :]
        if self.op is InequalityOp.LE:
            return row_lo[:, None] <= col_hi[None, :]
        if self.op is InequalityOp.GT:
            return row_hi[:, None] > col_lo[None, :]
        return row_hi[:, None] >= col_lo[None, :]

    def __repr__(self) -> str:
        return f"InequalityJoinCondition(op=InequalityOp.{self.op.name})"


@dataclass(frozen=True, repr=False)
class CompositeEquiBandCondition(JoinCondition):
    """Conjunction of an equality and a band condition (the BE_OCD join).

    The paper's BE_OCD join requires ``O1.custkey = O2.custkey`` *and*
    ``|O1.ship_priority - O2.ship_priority| <= beta``.  Such a join is
    monotonic under a lexicographic encoding of the composite key: we map the
    pair ``(equi_key, band_key)`` to the scalar ``equi_key * scale +
    band_key`` where ``scale`` strictly exceeds the band key's span plus the
    band width.  Under that encoding the composite join is exactly a band
    join of width ``beta`` on encoded keys, so every algorithm in the library
    (candidate checks, Stream-Sample, tiling) applies unchanged.

    Parameters
    ----------
    beta:
        Width of the band on the band attribute.
    scale:
        Encoding multiplier for the equality attribute.  Must satisfy
        ``scale > band_key_max - band_key_min + beta``.
    band_key_min, band_key_max:
        Inclusive domain of the band attribute, used to validate ``scale``
        and by :meth:`encode`.
    """

    beta: float
    scale: float
    band_key_min: float = 0.0
    band_key_max: float = 0.0

    def __post_init__(self) -> None:
        if self.beta < 0:
            raise ValueError(f"band width must be non-negative, got {self.beta}")
        span = self.band_key_max - self.band_key_min
        if span < 0:
            raise ValueError("band_key_max must be >= band_key_min")
        if self.scale <= span + self.beta:
            raise ValueError(
                "scale must exceed the band attribute span plus the band width "
                f"(need > {span + self.beta}, got {self.scale})"
            )

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"equi+band(beta={self.beta:g})"

    # -- encoding -------------------------------------------------------
    def encode(self, equi_key, band_key):
        """Encode composite ``(equi_key, band_key)`` into a scalar join key.

        Accepts scalars or numpy arrays.
        """
        return np.asarray(equi_key, dtype=np.float64) * self.scale + np.asarray(
            band_key, dtype=np.float64
        )

    def decode(self, encoded):
        """Inverse of :meth:`encode`; returns ``(equi_key, band_key)`` arrays."""
        encoded = np.asarray(encoded, dtype=np.float64)
        equi = np.floor((encoded - self.band_key_min) / self.scale)
        band = encoded - equi * self.scale
        return equi, band

    # -- JoinCondition API on encoded keys ------------------------------
    def matches(self, k1: float, k2: float) -> bool:
        # Interval phrasing keeps matches() consistent with
        # joinable_interval() under floating point (see BandJoinCondition).
        return k1 - self.beta <= k2 <= k1 + self.beta

    def joinable_interval(self, k1: float) -> tuple[float, float]:
        return (k1 - self.beta, k1 + self.beta)

    def cell_is_candidate(
        self, lo1: float, hi1: float, lo2: float, hi2: float
    ) -> bool:
        return not (lo2 - hi1 > self.beta or lo1 - hi2 > self.beta)

    def joinable_bounds(self, keys1: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        keys1 = np.asarray(keys1, dtype=np.float64)
        return keys1 - self.beta, keys1 + self.beta

    def matches_many(self, keys1: np.ndarray, keys2: np.ndarray) -> np.ndarray:
        keys1 = np.asarray(keys1, dtype=np.float64)
        keys2 = np.asarray(keys2, dtype=np.float64)
        return (keys2 >= keys1 - self.beta) & (keys2 <= keys1 + self.beta)

    def candidate_grid(
        self,
        row_lo: np.ndarray,
        row_hi: np.ndarray,
        col_lo: np.ndarray,
        col_hi: np.ndarray,
    ) -> np.ndarray:
        row_lo = np.asarray(row_lo, dtype=np.float64)
        row_hi = np.asarray(row_hi, dtype=np.float64)
        col_lo = np.asarray(col_lo, dtype=np.float64)
        col_hi = np.asarray(col_hi, dtype=np.float64)
        too_high = col_lo[None, :] - row_hi[:, None] > self.beta
        too_low = row_lo[:, None] - col_hi[None, :] > self.beta
        return ~(too_high | too_low)

    def matches_composite(self, equi1, band1, equi2, band2) -> bool:
        """Match directly on un-encoded composite keys (reference semantics)."""
        return equi1 == equi2 and abs(band1 - band2) <= self.beta

    def __repr__(self) -> str:
        return (
            f"CompositeEquiBandCondition(beta={self.beta!r}, scale={self.scale!r}, "
            f"band_key_min={self.band_key_min!r}, band_key_max={self.band_key_max!r})"
        )
