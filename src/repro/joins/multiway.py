"""Multi-way joins as a sequence of load-balanced 2-way joins (paper, IV-B).

The paper's operator targets 2-way joins and argues that a multi-way join can
be executed efficiently as a *sequence* of its 2-way joins, because the
equi-weight histogram keeps precisely the expensive part of such a pipeline
-- shipping large intermediate results between operators -- balanced.  This
module provides that pipeline at library level:

* a :class:`MultiwayJoinStep` names the next relation to join and the
  monotonic condition to use;
* :func:`run_multiway_join` folds the steps left to right.  Each step builds
  a fresh partitioning (the paper builds its scheme per join, with no reuse),
  executes the step on the cluster simulator for cost accounting, and
  materialises the intermediate output keys that feed the next step.

The intermediate result of a step is the multiset of matched right-side keys:
the attribute the *next* condition joins on.  This mirrors a left-deep plan
``((R1 join R2) join R3) ...`` where each intermediate tuple carries the key
of the most recently joined relation.  Materialising intermediates keeps this
helper at example/test scale; the per-step cost accounting is what the
benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.histogram import EWHConfig
from repro.core.weights import WeightFunction
from repro.engine.cluster import JoinExecutionResult, run_partitioned_join
from repro.joins.conditions import JoinCondition
from repro.joins.local import join_output_pairs
from repro.partitioning.ewh import build_ewh_partitioning
from repro.partitioning.m_bucket import build_m_bucket_partitioning
from repro.partitioning.one_bucket import build_one_bucket_partitioning

__all__ = ["MultiwayJoinStep", "MultiwayStepResult", "MultiwayJoinResult", "run_multiway_join"]

#: Refuse to materialise intermediates beyond this many tuples.
_MAX_INTERMEDIATE = 5_000_000


@dataclass(frozen=True)
class MultiwayJoinStep:
    """One step of a left-deep multi-way join plan.

    Attributes
    ----------
    keys:
        Join keys of the relation joined in at this step (the right side).
    condition:
        Monotonic condition between the running intermediate's key and
        ``keys``.
    name:
        Optional step name for reports.
    """

    keys: np.ndarray
    condition: JoinCondition
    name: str = ""


@dataclass
class MultiwayStepResult:
    """Cost accounting of one executed step.

    Attributes
    ----------
    name:
        Step name.
    scheme:
        Partitioning scheme used (``CSIO``, ``CSI`` or ``CI``).
    left_size, right_size:
        Input sizes of the step.
    output_size:
        Output size of the step (and input size of the next one).
    max_weight:
        Maximum machine weight of the step under the plan's cost model.
    execution:
        Full per-machine execution statistics.
    """

    name: str
    scheme: str
    left_size: int
    right_size: int
    output_size: int
    max_weight: float
    execution: JoinExecutionResult = field(repr=False)


@dataclass
class MultiwayJoinResult:
    """Outcome of a full multi-way pipeline.

    Attributes
    ----------
    steps:
        Per-step results, in execution order.
    final_keys:
        Keys of the final intermediate (the right-side keys matched by the
        last step).
    """

    steps: list[MultiwayStepResult] = field(default_factory=list)
    final_keys: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def total_cost(self) -> float:
        """Sum of the per-step maximum machine weights (pipeline latency model)."""
        return float(sum(step.max_weight for step in self.steps))

    @property
    def final_output_size(self) -> int:
        """Output size of the last step."""
        return self.steps[-1].output_size if self.steps else 0


def _build_partitioning(
    scheme: str,
    keys1: np.ndarray,
    keys2: np.ndarray,
    condition: JoinCondition,
    num_machines: int,
    weight_fn: WeightFunction,
    ewh_config: EWHConfig | None,
    rng: np.random.Generator,
):
    if scheme == "CSIO":
        return build_ewh_partitioning(
            keys1, keys2, condition, num_machines,
            weight_fn=weight_fn, config=ewh_config, rng=rng,
        )
    if scheme == "CSI":
        return build_m_bucket_partitioning(
            keys1, keys2, condition, num_machines, weight_fn=weight_fn, rng=rng
        )
    if scheme == "CI":
        return build_one_bucket_partitioning(num_machines)
    raise ValueError(f"unknown scheme {scheme!r}")


def run_multiway_join(
    initial_keys: np.ndarray,
    steps: list[MultiwayJoinStep],
    num_machines: int,
    weight_fn: WeightFunction,
    scheme: str = "CSIO",
    ewh_config: EWHConfig | None = None,
    rng: np.random.Generator | None = None,
) -> MultiwayJoinResult:
    """Execute a left-deep multi-way join as a sequence of 2-way joins.

    Parameters
    ----------
    initial_keys:
        Join keys of the leftmost relation.
    steps:
        The relations and conditions to fold in, left to right.
    num_machines:
        ``J`` used by every step.
    weight_fn:
        Cost model shared by all steps.
    scheme:
        Partitioning scheme used for every step (``CSIO`` by default).
    ewh_config:
        Optional CSIO configuration.
    rng:
        Random generator.
    """
    if not steps:
        raise ValueError("a multi-way join needs at least one step")
    rng = rng or np.random.default_rng(0)
    current = np.asarray(initial_keys, dtype=np.float64)  # repro: ignore[KEY001]  # multiway simulation runs on the float histogram path

    result = MultiwayJoinResult()
    for index, step in enumerate(steps):
        right = np.asarray(step.keys, dtype=np.float64)  # repro: ignore[KEY001]  # multiway simulation runs on the float histogram path
        if len(current) == 0 or len(right) == 0:
            result.steps.append(
                MultiwayStepResult(
                    name=step.name or f"step-{index + 1}",
                    scheme=scheme,
                    left_size=len(current),
                    right_size=len(right),
                    output_size=0,
                    max_weight=0.0,
                    execution=JoinExecutionResult(
                        per_machine_input=np.zeros(num_machines, dtype=np.int64),
                        per_machine_output=np.zeros(num_machines, dtype=np.int64),
                        total_output=0,
                        memory_tuples=0,
                        network_tuples=0,
                        replication_factor=0.0,
                    ),
                )
            )
            current = np.empty(0)
            continue

        partitioning = _build_partitioning(
            scheme, current, right, step.condition, num_machines,
            weight_fn, ewh_config, rng,
        )
        execution = run_partitioned_join(
            partitioning, current, right, step.condition, rng
        )
        if execution.total_output > _MAX_INTERMEDIATE:
            raise ValueError(
                f"step {index + 1} would materialise {execution.total_output} "
                f"intermediate tuples (cap {_MAX_INTERMEDIATE}); the multiway "
                "helper is meant for example/test scale"
            )
        pairs = join_output_pairs(current, right, step.condition)
        left_size = len(current)
        current = np.asarray([pair[1] for pair in pairs], dtype=np.float64)

        result.steps.append(
            MultiwayStepResult(
                name=step.name or f"step-{index + 1}",
                scheme=scheme,
                left_size=left_size,
                right_size=len(right),
                output_size=len(pairs),
                max_weight=execution.max_weight(weight_fn),
                execution=execution,
            )
        )

    result.final_keys = current
    return result
