"""A small column-oriented relation container.

The library does not need a full storage engine: every experiment in the
paper touches a handful of numeric or categorical columns.  :class:`Relation`
stores columns as numpy arrays, supports predicate filtering (the selection
predicates of the BE_OCD join), join-key projection and uniform sampling.
Tuples never materialise as Python objects on the hot paths.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping

import numpy as np

__all__ = ["Relation"]


class Relation:
    """An in-memory relation stored column-wise.

    Parameters
    ----------
    name:
        Relation name used in reports.
    columns:
        Mapping from column name to a 1-D numpy array.  All columns must
        have identical length.
    key_column:
        Name of the column that acts as the join key.  Schemes and the
        execution engine read keys through :attr:`keys`, so a relation with a
        derived (e.g. composite-encoded) key simply stores it as an extra
        column and names it here.
    """

    def __init__(
        self,
        name: str,
        columns: Mapping[str, np.ndarray],
        key_column: str,
    ) -> None:
        if not columns:
            raise ValueError("a relation needs at least one column")
        lengths = {len(np.asarray(v)) for v in columns.values()}
        if len(lengths) != 1:
            raise ValueError(f"columns of {name!r} have differing lengths: {lengths}")
        if key_column not in columns:
            raise KeyError(f"key column {key_column!r} not among {sorted(columns)}")
        self.name = name
        self._columns = {k: np.asarray(v) for k, v in columns.items()}
        self.key_column = key_column

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._columns[self.key_column])

    @property
    def num_tuples(self) -> int:
        """Number of tuples in the relation."""
        return len(self)

    @property
    def column_names(self) -> list[str]:
        """Names of all columns."""
        return list(self._columns)

    def column(self, name: str) -> np.ndarray:
        """Return the column array for ``name``."""
        return self._columns[name]

    @property
    def keys(self) -> np.ndarray:
        """The join-key column as a float64 array."""
        return np.asarray(self._columns[self.key_column], dtype=np.float64)  # repro: ignore[KEY001]  # Relation feeds the float-domain partitioning simulators

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def iter_rows(self) -> Iterator[dict]:
        """Yield rows as dictionaries (slow; intended for tests and examples)."""
        names = self.column_names
        cols = [self._columns[n] for n in names]
        for i in range(len(self)):
            yield {n: c[i] for n, c in zip(names, cols)}

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[dict[str, np.ndarray]], np.ndarray],
               name: str | None = None) -> "Relation":
        """Return a new relation keeping rows where ``predicate`` is true.

        ``predicate`` receives the column mapping and must return a boolean
        mask of the relation's length, which keeps filtering vectorised.
        """
        mask = np.asarray(predicate(self._columns), dtype=bool)
        if mask.shape != (len(self),):
            raise ValueError(
                f"predicate must return a mask of length {len(self)}, "
                f"got shape {mask.shape}"
            )
        new_cols = {k: v[mask] for k, v in self._columns.items()}
        return Relation(name or f"{self.name}_filtered", new_cols, self.key_column)

    def select(self, mask: np.ndarray, name: str | None = None) -> "Relation":
        """Return a new relation keeping rows selected by a boolean mask or index array."""
        mask = np.asarray(mask)
        new_cols = {k: v[mask] for k, v in self._columns.items()}
        return Relation(name or self.name, new_cols, self.key_column)

    def with_column(self, name: str, values: np.ndarray,
                    as_key: bool = False) -> "Relation":
        """Return a copy of the relation with an added (or replaced) column."""
        values = np.asarray(values)
        if len(values) != len(self):
            raise ValueError(
                f"new column {name!r} has length {len(values)}, expected {len(self)}"
            )
        cols = dict(self._columns)
        cols[name] = values
        return Relation(self.name, cols, name if as_key else self.key_column)

    def with_key_column(self, key_column: str) -> "Relation":
        """Return a view of the relation with a different designated key column."""
        return Relation(self.name, self._columns, key_column)

    def sample(self, size: int, rng: np.random.Generator,
               replace: bool = False) -> "Relation":
        """Uniform random sample of ``size`` tuples."""
        if size < 0:
            raise ValueError("sample size must be non-negative")
        size = min(size, len(self)) if not replace else size
        idx = rng.choice(len(self), size=size, replace=replace)
        return self.select(idx, name=f"{self.name}_sample")

    def sorted_by_key(self) -> "Relation":
        """Return a copy of the relation sorted ascending by the join key."""
        order = np.argsort(self.keys, kind="stable")
        return self.select(order, name=self.name)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_keys(cls, name: str, keys: np.ndarray,
                  key_column: str = "key") -> "Relation":
        """Build a single-column relation directly from an array of join keys."""
        return cls(name, {key_column: np.asarray(keys)}, key_column)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Relation(name={self.name!r}, tuples={len(self)}, "
            f"columns={self.column_names}, key={self.key_column!r})"
        )
