"""Local (single-machine) join algorithms.

Each worker in the shared-nothing engine joins the tuples routed to its
region with one of these algorithms.  The partitioning schemes are orthogonal
to the choice of local algorithm (paper, section IV): as long as every worker
runs the same algorithm, only the *amount* of input and output per worker
matters for load balance.

Three algorithms are provided:

* :func:`sort_merge_band_join` -- the default for band/inequality joins;
  sorts both sides and sweeps a window.
* :func:`hash_equi_join` -- classic hash join, valid only for equality
  conditions.
* :func:`nested_loop_join` -- O(n*m) reference implementation used by the
  tests as ground truth.

For the simulator we rarely need materialised pairs, only their number;
:func:`count_join_output` computes the output cardinality of a key-range
region with two binary searches per tuple.
"""

from __future__ import annotations

import numpy as np

from repro.joins.conditions import (
    BandJoinCondition,
    EquiJoinCondition,
    JoinCondition,
    normalise_keys,
)

__all__ = [
    "nested_loop_join",
    "sort_merge_band_join",
    "hash_equi_join",
    "join_output_pairs",
    "count_join_output",
]


def nested_loop_join(
    keys1: np.ndarray, keys2: np.ndarray, condition: JoinCondition
) -> list[tuple[float, float]]:
    """Join two key arrays by exhaustive comparison.

    Quadratic; only suitable for small inputs.  Used as the reference
    implementation in tests.
    """
    keys1 = np.asarray(keys1, dtype=np.float64)  # repro: ignore[KEY001]  # reference oracle is float-keyed by design
    keys2 = np.asarray(keys2, dtype=np.float64)  # repro: ignore[KEY001]  # reference oracle is float-keyed by design
    out: list[tuple[float, float]] = []
    for k1 in keys1:
        for k2 in keys2:
            if condition.matches(float(k1), float(k2)):
                out.append((float(k1), float(k2)))
    return out


def sort_merge_band_join(
    keys1: np.ndarray, keys2: np.ndarray, condition: JoinCondition
) -> list[tuple[float, float]]:
    """Sort-merge join for monotonic conditions.

    Both inputs are sorted; for every R1 key the joinable R2 window is found
    with binary search, so the cost is ``O(n log n + output)``.
    """
    keys1 = np.sort(np.asarray(keys1, dtype=np.float64))  # repro: ignore[KEY001]  # reference oracle is float-keyed by design
    keys2 = np.sort(np.asarray(keys2, dtype=np.float64))  # repro: ignore[KEY001]  # reference oracle is float-keyed by design
    if len(keys1) == 0 or len(keys2) == 0:
        return []
    lows, highs = condition.joinable_bounds(keys1)
    left = np.searchsorted(keys2, lows, side="left")
    right = np.searchsorted(keys2, highs, side="right")
    out: list[tuple[float, float]] = []
    for k1, lo_idx, hi_idx in zip(keys1, left, right):
        for j in range(lo_idx, hi_idx):
            out.append((float(k1), float(keys2[j])))  # repro: ignore[KEY001]  # pair materialisation in the float oracle
    return out


def hash_equi_join(
    keys1: np.ndarray, keys2: np.ndarray, condition: JoinCondition | None = None
) -> list[tuple[float, float]]:
    """Hash join; valid only for equality conditions.

    ``condition`` may be passed for interface uniformity but must be an
    equi-join (band width zero) if given.
    """
    if condition is not None:
        is_equi = isinstance(condition, EquiJoinCondition) or (
            isinstance(condition, BandJoinCondition) and condition.beta == 0
        )
        if not is_equi:
            raise ValueError("hash_equi_join only supports equality conditions")
    keys1 = np.asarray(keys1, dtype=np.float64)  # repro: ignore[KEY001]  # reference oracle is float-keyed by design
    keys2 = np.asarray(keys2, dtype=np.float64)  # repro: ignore[KEY001]  # reference oracle is float-keyed by design
    table: dict[float, int] = {}
    for k in keys2:
        table[float(k)] = table.get(float(k), 0) + 1
    out: list[tuple[float, float]] = []
    for k in keys1:
        k = float(k)
        if k in table:
            out.extend((k, k) for _ in range(table[k]))
    return out


def join_output_pairs(
    keys1: np.ndarray, keys2: np.ndarray, condition: JoinCondition
) -> list[tuple[float, float]]:
    """Produce all output key pairs using the best applicable algorithm."""
    is_equi = isinstance(condition, EquiJoinCondition) or (
        isinstance(condition, BandJoinCondition) and condition.beta == 0
    )
    if is_equi:
        return hash_equi_join(keys1, keys2)
    return sort_merge_band_join(keys1, keys2, condition)


def count_join_output(
    keys1: np.ndarray, keys2: np.ndarray, condition: JoinCondition,
    keys2_sorted: bool = False,
) -> int:
    """Count output tuples of joining two key arrays without materialising them.

    This is the workhorse of the cluster simulator: it computes, per R1 key,
    the number of joinable R2 keys via binary search over the sorted R2 side.

    Parameters
    ----------
    keys1, keys2:
        Join-key arrays of the two sides.  Integer arrays are counted as
        integers (unsigned ones via their exact int64 image when the
        values fit) -- band/equi conditions with an integral width stay
        exact for integer keys above 2**53, which a ``float64`` coercion
        would silently round onto their neighbours.  Other inputs are
        coerced to ``float64`` as before.
    condition:
        A monotonic join condition.
    keys2_sorted:
        Set to ``True`` when ``keys2`` is already sorted ascending to skip
        the sort.
    """
    keys1 = normalise_keys(keys1)
    keys2 = normalise_keys(keys2)
    if len(keys1) == 0 or len(keys2) == 0:
        return 0
    if not keys2_sorted:
        keys2 = np.sort(keys2)
    counts = condition.count_matches_per_key(keys1, keys2)
    return int(counts.sum())
