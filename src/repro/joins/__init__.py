"""Join conditions, relations and local (per-machine) join algorithms.

This subpackage is the substrate every partitioning scheme relies on:

* :mod:`repro.joins.conditions` -- monotonic join predicates (equi-, band-,
  inequality- and composite equi+band joins) with interval arithmetic used
  both for matching tuples and for candidate-cell checks on grid boundaries.
* :mod:`repro.joins.relations` -- a small column-oriented relation container.
* :mod:`repro.joins.local` -- the local join algorithms each worker runs on
  its region (sort-merge band join, hash equi-join, nested loop), plus fast
  vectorised output counting used by the simulator and the benchmarks.
"""

from repro.joins.conditions import (
    BandJoinCondition,
    CompositeEquiBandCondition,
    EquiJoinCondition,
    InequalityJoinCondition,
    InequalityOp,
    JoinCondition,
)
from repro.joins.local import (
    count_join_output,
    hash_equi_join,
    join_output_pairs,
    nested_loop_join,
    sort_merge_band_join,
)
from repro.joins.relations import Relation

__all__ = [
    "JoinCondition",
    "EquiJoinCondition",
    "BandJoinCondition",
    "InequalityJoinCondition",
    "InequalityOp",
    "CompositeEquiBandCondition",
    "Relation",
    "sort_merge_band_join",
    "hash_equi_join",
    "nested_loop_join",
    "join_output_pairs",
    "count_join_output",
]
