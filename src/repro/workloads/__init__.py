"""The evaluation workloads of the paper (Table IV).

* ``B_ICD`` -- an input-cost dominated band join over TPC-H ORDERS:
  ``|O1.orderkey - 10 * O2.custkey| <= 2``.
* ``B_CB(beta)`` -- a cost-balanced band join over the synthetic X dataset,
  with band widths 1, 2, 3, 4, 8 and 16.
* ``BE_OCD`` -- an output-cost dominated combination of an equality and a
  band condition over TPC-H ORDERS, with selection predicates on order
  priority and total price.

Each factory returns a :class:`~repro.workloads.definitions.JoinWorkload`
holding the two key arrays, the join condition, the cost model the paper's
regression associates with that join class, and lazily computed exact
input/output sizes (the Table IV columns).
"""

from repro.workloads.definitions import (
    JoinWorkload,
    make_bcb,
    make_beocd,
    make_bicd,
    table_iv_workloads,
)

__all__ = [
    "JoinWorkload",
    "make_bicd",
    "make_bcb",
    "make_beocd",
    "table_iv_workloads",
]
