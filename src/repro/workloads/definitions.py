"""Factories for the paper's evaluation joins (Table IV and Appendix B).

The paper runs TPC-H at 160 GB and the X dataset at 192M tuples; this
reproduction is laptop-scale, so every factory takes explicit size knobs and
defaults to a few tens of thousands of tuples.  What is preserved is the
*structure* that drives the evaluation: the output/input ratio class of each
join (input-cost dominated, cost-balanced, output-cost dominated), the skew
in the data, and the join conditions themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.weights import (
    BAND_JOIN_WEIGHTS,
    EQUI_BAND_JOIN_WEIGHTS,
    WeightFunction,
)
from repro.data.tpch import ORDER_PRIORITIES, TPCHConfig, generate_orders
from repro.data.xdataset import XDatasetConfig, generate_x_dataset
from repro.joins.conditions import (
    BandJoinCondition,
    CompositeEquiBandCondition,
    JoinCondition,
)
from repro.joins.local import count_join_output

__all__ = [
    "JoinWorkload",
    "make_bicd",
    "make_bcb",
    "make_beocd",
    "table_iv_workloads",
]


@dataclass
class JoinWorkload:
    """A fully materialised evaluation join.

    Attributes
    ----------
    name:
        Workload name as used in the paper (``B_ICD``, ``B_CB-3``, ...).
    keys1, keys2:
        Join-key arrays of the two join sides.
    condition:
        The (monotonic) join condition.
    weight_fn:
        The cost model the paper's regression associates with this join class.
    description:
        One-line description for reports.
    """

    name: str
    keys1: np.ndarray
    keys2: np.ndarray
    condition: JoinCondition
    weight_fn: WeightFunction
    description: str = ""
    _exact_output: int | None = field(default=None, repr=False)

    @property
    def num_input_tuples(self) -> int:
        """Total input tuples (both sides) -- the Table IV ``input`` column."""
        return len(self.keys1) + len(self.keys2)

    def exact_output_size(self) -> int:
        """Exact join output size -- the Table IV ``output`` column (cached)."""
        if self._exact_output is None:
            self._exact_output = count_join_output(
                self.keys1, self.keys2, self.condition
            )
        return self._exact_output

    def output_input_ratio(self) -> float:
        """The ratio rho_oi = output / input that drives operator performance."""
        return self.exact_output_size() / self.num_input_tuples


def make_bicd(
    num_orders: int = 40_000,
    zipf_z: float = 0.25,
    seed: int = 7,
) -> JoinWorkload:
    """The input-cost dominated band join B_ICD over TPC-H ORDERS.

    ``SELECT * FROM ORDERS O1, ORDERS O2
    WHERE ABS(O1.orderkey - 10 * O2.custkey) <= 2``

    Order keys are sparse (as in TPC-H, only a quarter of the key space is
    used), so each O2 tuple joins with roughly 1.2 O1 tuples and the output
    is smaller than the input (rho_oi around 0.6, matching the paper).
    """
    config = TPCHConfig(num_orders=num_orders, zipf_z=zipf_z, seed=seed)
    orders = generate_orders(config)
    rng = np.random.default_rng(seed + 1)
    # TPC-H order keys are sparse: spread the dense keys over 4x the range.
    sparse_orderkeys = rng.choice(
        np.arange(1, 4 * num_orders + 1), size=num_orders, replace=False
    )
    keys1 = sparse_orderkeys.astype(np.float64)
    keys2 = 10.0 * orders.column("custkey").astype(np.float64)
    return JoinWorkload(
        name="B_ICD",
        keys1=keys1,
        keys2=keys2,
        condition=BandJoinCondition(beta=2.0),
        weight_fn=BAND_JOIN_WEIGHTS,
        description="TPC-H band join |O1.orderkey - 10*O2.custkey| <= 2 "
        "(input-cost dominated)",
    )


def make_bcb(
    beta: float,
    small_segment_size: int = 8_000,
    seed: int = 11,
) -> JoinWorkload:
    """The cost-balanced band join B_CB(beta) over the synthetic X dataset.

    ``SELECT * FROM R1, R2 WHERE ABS(R1.key - R2.key) <= beta``

    The X dataset's small segments (20% of each relation, packed into a
    narrow key range) produce almost all of the output -- join product skew
    with only moderate redistribution skew.  The paper's rho_oi values
    (1.8 for beta=1 up to ~20 for beta=16) emerge from the construction.
    """
    config = XDatasetConfig(small_segment_size=small_segment_size, seed=seed)
    r1, r2 = generate_x_dataset(config)
    return JoinWorkload(
        name=f"B_CB-{beta:g}",
        keys1=r1.keys,
        keys2=r2.keys,
        condition=BandJoinCondition(beta=float(beta)),
        weight_fn=BAND_JOIN_WEIGHTS,
        description=f"X-dataset band join |R1.key - R2.key| <= {beta:g} "
        "(cost balanced)",
    )


def make_beocd(
    num_orders: int = 60_000,
    band_width: float = 2.0,
    price_low: float = 140_000.0,
    price_high: float = 360_000.0,
    customers_per_order: float = 0.002,
    zipf_z: float = 0.5,
    seed: int = 7,
) -> JoinWorkload:
    """The output-cost dominated equi/band join BE_OCD over TPC-H ORDERS.

    ``SELECT * FROM ORDERS O1, ORDERS O2
    WHERE O1.custkey = O2.custkey
      AND ABS(O1.ship_priority - O2.ship_priority) <= 2
      AND O1.order_priority = '4-NOT SPECIFIED'
      AND O2.order_priority = '1-URGENT'
      AND O1.totalprice BETWEEN gamma AND 360000
      AND O2.totalprice BETWEEN gamma AND 360000``

    The composite (custkey, ship_priority) key is encoded lexicographically so
    the join becomes a band join on scalar keys (see
    :class:`CompositeEquiBandCondition`).  The many orders per customer make
    the join heavily output-dominated, as in the paper.

    At the paper's 160 GB scale the moderate Zipf skew (z = 0.25) over 24M
    customers already concentrates enough orders on the heavy customers to
    push the output/input ratio past 50.  At laptop scale the customer domain
    is tiny, so the defaults here compensate with more orders per customer
    (``customers_per_order = 0.002``) and a somewhat stronger skew
    (``z = 0.5``): that lands the workload in the output-cost-dominated
    regime with join product skew, while keeping the per-customer output
    share small enough that no single (custkey, ship_priority) cell is an
    indivisible fraction of the join (which would penalise every
    content-sensitive scheme at this scale, not just CSI).  The knobs remain
    exposed for callers who want the literal paper parameters.
    """
    config = TPCHConfig(
        num_orders=num_orders,
        zipf_z=zipf_z,
        customers_per_order=customers_per_order,
        seed=seed,
    )
    orders = generate_orders(config)

    priority_index = {name: i for i, name in enumerate(ORDER_PRIORITIES)}

    def side(order_priority: str, name: str):
        filtered = orders.filter(
            lambda cols: (
                (cols["order_priority"] == priority_index[order_priority])
                & (cols["totalprice"] >= price_low)
                & (cols["totalprice"] <= price_high)
            ),
            name=name,
        )
        return filtered

    o1 = side("4-NOT SPECIFIED", "orders_o1")
    o2 = side("1-URGENT", "orders_o2")

    condition = CompositeEquiBandCondition(
        beta=band_width,
        scale=float(config.ship_priority_levels + band_width + 1),
        band_key_min=0.0,
        band_key_max=float(config.ship_priority_levels - 1),
    )
    keys1 = condition.encode(o1.column("custkey"), o1.column("ship_priority"))
    keys2 = condition.encode(o2.column("custkey"), o2.column("ship_priority"))
    return JoinWorkload(
        name="BE_OCD",
        keys1=keys1,
        keys2=keys2,
        condition=condition,
        weight_fn=EQUI_BAND_JOIN_WEIGHTS,
        description="TPC-H equi/band join on (custkey, ship_priority) with "
        "selection predicates (output-cost dominated)",
    )


def table_iv_workloads(
    scale: float = 1.0, seed: int = 7
) -> list[JoinWorkload]:
    """All Table IV joins at a configurable fraction of the default sizes.

    ``scale = 1.0`` yields the default laptop-scale sizes; the scalability
    benchmarks pass 0.5 / 1.0 / 2.0 together with 16 / 32 / 64 machines to
    mirror the paper's weak-scaling setup.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    workloads = [make_bicd(num_orders=int(40_000 * scale), seed=seed)]
    for beta in (1, 2, 3, 4, 8, 16):
        workloads.append(
            make_bcb(beta=beta, small_segment_size=int(8_000 * scale), seed=seed + beta)
        )
    workloads.append(make_beocd(num_orders=int(60_000 * scale), seed=seed))
    return workloads
