"""Incremental maintenance of streaming state: histogram samples and join state.

Two kinds of state are maintained incrementally across micro-batches, and
both live here:

* the equi-weight histogram's **sample state** (:class:`DecayedReservoir`,
  :class:`IncrementalHistogram`), so the partitioning can be rebuilt online
  at a cost proportional to the reservoir capacity instead of the stream
  length; and
* each machine's **retained join state** (:class:`SortedRegionState`), kept
  sorted by join key so the engine can count a batch's incremental output
  with ``O(new log state)`` binary searches instead of re-sorting and
  re-scanning the whole region every batch (``O(state log state)``).

The batch pipeline samples both relations from scratch every time it builds
the histogram.  Over an unbounded stream that is impossible -- the input can
no longer be rescanned -- so the streaming subsystem keeps the *sample* state
alive across micro-batches and rebuilds the histogram from it on demand:

* Each side feeds a :class:`DecayedReservoir`, an Efraimidis--Spirakis
  weighted reservoir whose item weights grow geometrically with the batch
  index.  Algebraically this is time-biased sampling: an item that arrived
  ``a`` batches ago is retained with probability proportional to
  ``decay ** a``, so the reservoir tracks the *recent* key distribution and
  forgets stale phases at a configurable half-life.  Priorities are kept in
  log space (``ln(u) / w``) so the geometric weights never overflow or lose
  float resolution.
* Rebuilding runs the ordinary 3-stage pipeline
  (:func:`~repro.core.histogram.build_equi_weight_histogram`) over the two
  reservoir snapshots.  The cost is proportional to the reservoir capacity,
  not to the stream length -- the whole point of maintaining the state
  incrementally.

The rebuilt histogram routes *real* keys correctly because the outermost
region boundaries are opened to +-infinity, and its predicted region-weight
imbalance (a scale-free ratio) is what the drift detector compares against
the live load imbalance.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.core.histogram import (
    EWHConfig,
    EquiWeightHistogram,
    build_equi_weight_histogram,
)
from repro.core.weights import WeightFunction
from repro.joins.conditions import JoinCondition
from repro.partitioning.ewh import EWHPartitioning
from repro.streaming.source import MicroBatch

__all__ = ["DecayedReservoir", "IncrementalHistogram", "SortedRegionState"]


class SortedRegionState:
    """One machine's retained join state on one side, kept sorted by key.

    The engine's incremental counting needs, per batch and per machine, the
    number of joinable pairs between the batch's few arrivals and the
    machine's (much larger) retained state.  Keeping the state sorted by
    join key turns that into ``O(new log state)`` binary searches: arrivals
    are merged in with :func:`numpy.searchsorted` + :func:`numpy.insert`,
    and expired tuples are dropped with one vectorised mask -- no per-batch
    re-sort of the full region ever happens.

    The ``(index, keys)`` pair is also the unit of state portability:
    checkpoints (:class:`~repro.streaming.checkpoint.StreamCheckpoint`)
    capture it verbatim, migrations and restores rebuild it with
    :meth:`from_indices` / :meth:`from_pairs`, and because the key-sort is
    stable, rebuilding from arrival-index-sorted inputs reproduces the
    original ordering exactly -- the foundation of the kill-and-restore ==
    uninterrupted-run guarantee.

    Attributes
    ----------
    keys:
        The retained join keys, ascending.  The dtype follows the stream's
        key arrays: integer keys are retained as integers (int64 keys
        above 2**53 must not round through float64), floats as float64.
    index:
        Arrival indices, parallel to ``keys`` (``keys[i]`` is the key of
        history tuple ``index[i]``).  Unique within a machine: a machine
        holds one region, and a region routes each tuple at most once.
        Under history compaction these are *engine coordinates* -- the
        global arrival index minus the tuples already trimmed from the
        history (:meth:`rebase`); without compaction the two coincide.
    """

    __slots__ = ("keys", "index")

    #: Resident bytes per retained tuple (float64 key + int64 arrival index).
    BYTES_PER_TUPLE = 16

    def __init__(
        self, index: np.ndarray | None = None, keys: np.ndarray | None = None
    ) -> None:
        self.index = (
            np.empty(0, dtype=np.int64) if index is None else np.asarray(index)
        )
        self.keys = (
            np.empty(0, dtype=np.float64) if keys is None else np.asarray(keys)
        )

    @classmethod
    def from_indices(
        cls, indices: np.ndarray, history: np.ndarray
    ) -> "SortedRegionState":
        """Build sorted state for ``indices`` looked up in the key history.

        The history's dtype carries over, so integer-keyed streams keep
        exact integer state across migrations.
        """
        indices = np.asarray(indices, dtype=np.int64)
        return cls.from_pairs(indices, np.asarray(history)[indices])

    @classmethod
    def from_pairs(
        cls, indices: np.ndarray, keys: np.ndarray
    ) -> "SortedRegionState":
        """Build sorted state from parallel arrival-index / key arrays.

        Same stable key-sort as :meth:`from_indices`, for callers that have
        already gathered the keys -- a sticky worker rebuilding migrated
        state from a shared-memory message holds ``(indices, keys)`` pairs
        but no key history.  Both inputs are copied (the pairs may be views
        into a transient shared segment).
        """
        indices = np.asarray(indices, dtype=np.int64)
        keys = np.asarray(keys)
        order = np.argsort(keys, kind="stable")
        return cls(index=indices[order], keys=keys[order])

    def __len__(self) -> int:
        """Number of retained tuples."""
        return len(self.index)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the retained state (keys + arrival indices)."""
        return len(self.index) * self.BYTES_PER_TUPLE

    def insert(self, new_indices: np.ndarray, new_keys: np.ndarray) -> None:
        """Merge a batch's arrivals into the sorted state.

        ``O(new log state)`` searches plus one ``O(state + new)`` array
        merge; the keys stay sorted so the next batch's counting can binary
        search them directly.  The first insert into empty state adopts the
        arrivals' dtype (exact integers stay integers); a later dtype
        mismatch promotes the state, so a mixed int/float stream never
        truncates a float key into an integer slot.
        """
        if len(new_indices) == 0:
            return
        new_indices = np.asarray(new_indices, dtype=np.int64)
        new_keys = np.asarray(new_keys)
        order = np.argsort(new_keys, kind="stable")
        new_keys = new_keys[order]
        new_indices = new_indices[order]
        if len(self.keys) == 0:
            self.keys = new_keys
            self.index = new_indices
            return
        if self.keys.dtype != new_keys.dtype:
            target = np.promote_types(self.keys.dtype, new_keys.dtype)
            self.keys = self.keys.astype(target)
            new_keys = new_keys.astype(target)
        positions = np.searchsorted(self.keys, new_keys)
        self.keys = np.insert(self.keys, positions, new_keys)
        self.index = np.insert(self.index, positions, new_indices)

    def rebase(self, shift: int) -> None:
        """Shift every arrival index down by ``shift`` (history compaction).

        The engine calls this after trimming ``shift`` expired tuples off
        the front of the side's key history, so ``index`` keeps addressing
        the same keys in the compacted array.  Every retained index must be
        ``>= shift`` (compaction only trims below the window's safe trim
        point, and eviction has already dropped anything older).
        """
        if shift:
            self.index = self.index - shift

    def evict(self, expired: np.ndarray) -> int:
        """Drop the given global arrival indices; return how many were held.

        ``expired`` is the window policy's eviction set for the side; only
        the tuples this machine actually holds are dropped (and counted).
        """
        if len(self.index) == 0 or len(expired) == 0:
            return 0
        keep = ~np.isin(self.index, expired, assume_unique=True)
        dropped = int(len(keep) - keep.sum())
        if dropped:
            self.index = self.index[keep]
            self.keys = self.keys[keep]
        return dropped


class DecayedReservoir:
    """A bounded weighted reservoir that favours recent arrivals.

    Entries are ``(priority_key, counter, key)`` triples in a min-heap of
    bounded size.  The Efraimidis--Spirakis priority of an item offered in
    batch ``b`` with weight ``w = decay ** -b`` is ``u ** (1/w)``; comparing
    those directly (or their logs ``ln(u) * decay**b``) underflows once
    ``decay**b`` hits the float floor, which would silently freeze the sample
    on long streams.  Only the *order* matters, so the heap stores the
    doubly-logarithmic rebasing

        priority_key = -ln(-ln(u)) + b * ln(1/decay)

    which is strictly increasing in the original priority and grows only
    linearly with the batch index.  The retained set is exactly the weighted
    sample without replacement.
    """

    def __init__(self, capacity: int, decay: float = 1.0) -> None:
        if capacity <= 0:
            raise ValueError("reservoir capacity must be positive")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.capacity = capacity
        self.decay = decay
        self._log_inv_decay = -math.log(decay)
        self._heap: list[tuple[float, int, float]] = []
        self._counter = 0
        self.tuples_seen = 0

    def __len__(self) -> int:
        """Number of keys currently held in the reservoir."""
        return len(self._heap)

    def add_batch(
        self, keys: np.ndarray, batch_index: int, rng: np.random.Generator
    ) -> None:
        """Offer one micro-batch of keys, all weighted by the batch's age."""
        keys = np.asarray(keys, dtype=np.float64)  # repro: ignore[KEY001]  # reservoir samples feed float EWH boundaries, not join state
        self.tuples_seen += len(keys)
        if len(keys) == 0:
            return
        with np.errstate(divide="ignore"):
            # -ln(-ln u): u -> 0 gives -inf (never sampled), u -> 1 gives +inf.
            priorities = -np.log(-np.log(rng.random(len(keys))))
        priorities += batch_index * self._log_inv_decay
        if len(self._heap) >= self.capacity:
            # Entries below the current minimum can never enter (the heap
            # minimum only rises), so drop them vectorised before the
            # per-entry heap loop.
            mask = priorities > self._heap[0][0]
            keys, priorities = keys[mask], priorities[mask]
        for key, priority in zip(keys, priorities):
            entry = (float(priority), self._counter, float(key))  # repro: ignore[KEY001]  # heap entry over the sampled float key
            self._counter += 1
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, entry)
            elif entry[0] > self._heap[0][0]:
                heapq.heapreplace(self._heap, entry)

    def keys(self) -> np.ndarray:
        """Snapshot of the sampled keys (unordered)."""
        return np.array([entry[2] for entry in self._heap], dtype=np.float64)


class IncrementalHistogram:
    """EWH sample state maintained across micro-batches.

    Parameters
    ----------
    num_machines:
        ``J`` -- the number of regions the rebuilt histogram targets.
    weight_fn:
        The cost model used by coarsening and regionalization.
    capacity:
        Per-side reservoir capacity (the rebuild cost scales with it).
    decay:
        Per-batch retention factor of old samples; 1.0 keeps the whole
        history uniformly, 0.8 halves an old batch's influence roughly every
        three batches.
    config:
        Histogram configuration used by rebuilds.  The sample-matrix size is
        derived from the reservoir size, so the streaming default caps it
        lower than the batch default.
    """

    def __init__(
        self,
        num_machines: int,
        weight_fn: WeightFunction,
        capacity: int = 2048,
        decay: float = 0.8,
        config: EWHConfig | None = None,
    ) -> None:
        if num_machines <= 0:
            raise ValueError("num_machines must be positive")
        self.num_machines = num_machines
        self.weight_fn = weight_fn
        self.config = config or EWHConfig(max_sample_matrix_size=256)
        self.reservoir1 = DecayedReservoir(capacity, decay)
        self.reservoir2 = DecayedReservoir(capacity, decay)
        self.batches_observed = 0
        self.rebuilds = 0
        self.last_histogram: EquiWeightHistogram | None = None
        self._predicted_imbalance = 1.0

    @property
    def tuples_seen(self) -> int:
        """Total stream tuples observed (both sides)."""
        return self.reservoir1.tuples_seen + self.reservoir2.tuples_seen

    @property
    def sample_tuples(self) -> int:
        """Tuples currently held in the two reservoirs."""
        return len(self.reservoir1) + len(self.reservoir2)

    def observe(self, batch: MicroBatch, rng: np.random.Generator) -> None:
        """Fold one micro-batch into the maintained sample state.

        The decay exponent is the histogram's own observation counter, not
        the source's ``MicroBatch.index``: recency is measured in batches
        *observed*, so any strictly increasing source numbering samples
        identically (and a policy that stops observing does not inflate the
        next observation's weight).
        """
        self.reservoir1.add_batch(batch.keys1, self.batches_observed, rng)
        self.reservoir2.add_batch(batch.keys2, self.batches_observed, rng)
        self.batches_observed += 1

    def can_build(self) -> bool:
        """Whether both sides have sample mass to build from."""
        return len(self.reservoir1) > 0 and len(self.reservoir2) > 0

    def build_partitioning(
        self, condition: JoinCondition, rng: np.random.Generator
    ) -> EWHPartitioning:
        """Rebuild the EWH partitioning from the current sample state.

        Runs sampling/coarsening/regionalization over the reservoir
        snapshots; cost is ``O(capacity)`` work regardless of how long the
        stream has run.
        """
        if not self.can_build():
            raise ValueError(
                "cannot build a histogram before both sides have been observed"
            )
        histogram = build_equi_weight_histogram(
            self.reservoir1.keys(),
            self.reservoir2.keys(),
            condition,
            self.num_machines,
            self.weight_fn,
            config=self.config,
            rng=rng,
        )
        self.last_histogram = histogram
        self.rebuilds += 1
        # Freeze the predicted imbalance at build time: the ratio of the
        # estimated maximum region weight to the no-replication lower bound
        # over the sample the histogram was actually built from.
        lower = self.weight_fn.lower_bound_optimum(
            self.sample_tuples, histogram.total_output, self.num_machines
        )
        if lower > 0 and math.isfinite(lower):
            self._predicted_imbalance = max(
                1.0, histogram.estimated_max_weight / lower
            )
        else:
            self._predicted_imbalance = 1.0
        return EWHPartitioning(histogram)

    def predicted_imbalance(self) -> float:
        """The last build's predicted max/mean region-weight ratio.

        The ratio is scale-free, so it transfers from sample space to the
        live stream: it is the imbalance the histogram *expects* the cluster
        to exhibit if the key distribution has not drifted.  Computed against
        the no-replication lower bound at build time, it is slightly
        conservative (the denominator ignores replicated input), which biases
        the drift detector towards fewer, more certain triggers.
        """
        return self._predicted_imbalance
