"""Repartitioning policies: when (and with what) to replace the partitioning.

The engine is scheme-agnostic; a policy decides which partitioning starts the
run and whether to adopt a new one after a batch.  Three policies reproduce
the comparison of interest:

* :class:`StaticOneBucketPolicy` -- 1-Bucket, built once, never changed.
  Immune to skew by construction but pays input replication forever.
* :class:`StaticEWHPolicy` -- the equi-weight histogram built from the first
  observed batch(es) and then frozen: the online analogue of running the
  batch pipeline on a prefix and hoping the distribution holds.
* :class:`DriftAdaptiveEWHPolicy` -- the same initial build, plus a
  :class:`~repro.streaming.drift.DriftDetector` that rebuilds from the
  incrementally maintained sample state when the live imbalance leaves the
  histogram's prediction, paying the migration cost in exchange for restored
  balance.

Policies only pick the *partitioning*; how much state a rebuild actually
moves is the engine's ``repartition_mode`` (partial vs. full migration, see
:mod:`repro.streaming.migration`), and the policy's drift decisions are
deliberately insensitive to it: the detector consumes the batch's live
imbalance *before* migration charges land, and that ratio is invariant under
the region-to-machine remap partial repartitioning performs.  The same
policy therefore triggers at the same batches under either mode and under
any execution backend, which the equivalence tests rely on.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.joins.conditions import JoinCondition
from repro.partitioning.base import Partitioning
from repro.partitioning.one_bucket import build_one_bucket_partitioning
from repro.streaming.drift import DriftDetector
from repro.streaming.incremental import IncrementalHistogram
from repro.streaming.metrics import BatchMetrics

__all__ = [
    "RepartitioningPolicy",
    "StaticOneBucketPolicy",
    "StaticEWHPolicy",
    "DriftAdaptiveEWHPolicy",
]


class RepartitioningPolicy(abc.ABC):
    """Decides the initial partitioning and any mid-stream replacement."""

    #: Reporting name used by the benchmark tables.
    scheme_name: str = "policy"

    def ready(self, histogram: IncrementalHistogram) -> bool:
        """Whether enough of the stream has been seen to build a partitioning.

        The engine defers the initial build (and buffers nothing but the
        retained history) until this returns True.
        """
        return True

    def needs_statistics(self, has_partitioning: bool) -> bool:
        """Whether the engine should keep folding batches into the sample state.

        Maintaining the reservoirs costs per-tuple work; policies that will
        never (or never again) build from them let the engine skip it.
        """
        return True

    @abc.abstractmethod
    def initial_partitioning(
        self,
        histogram: IncrementalHistogram,
        condition: JoinCondition,
        rng: np.random.Generator,
    ) -> Partitioning:
        """Build the partitioning that starts the run (first batch observed)."""

    def maybe_repartition(
        self,
        histogram: IncrementalHistogram,
        metrics: BatchMetrics,
        condition: JoinCondition,
        rng: np.random.Generator,
    ) -> Partitioning | None:
        """Return a replacement partitioning, or None to keep the current one.

        Called after every processed batch with that batch's metrics; static
        policies never replace.
        """
        return None

    def predicted_imbalance(self, histogram: IncrementalHistogram) -> float:
        """The imbalance the current partitioning is expected to exhibit."""
        return histogram.predicted_imbalance()

    def resize_partitioning(
        self,
        num_machines: int,
        histogram: IncrementalHistogram,
        condition: JoinCondition,
        rng: np.random.Generator,
    ) -> Partitioning:
        """Build the partitioning for a mid-stream fleet resize.

        The engine calls this when
        :meth:`~repro.streaming.engine.StreamingJoinEngine.resize` changes
        the machine count: the histogram is retargeted at the new fleet and
        rebuilt from the maintained sample state.  Policies that never
        consult statistics (1-Bucket) override this to rebuild their grid
        directly.  The histogram's machine count is mutated in place --
        subsequent drift rebuilds target the new fleet too.
        """
        histogram.num_machines = num_machines
        return histogram.build_partitioning(condition, rng)


class StaticOneBucketPolicy(RepartitioningPolicy):
    """1-Bucket built once; random routing needs no statistics and no rebuilds."""

    scheme_name = "CI-static"

    def __init__(self, num_machines: int) -> None:
        if num_machines <= 0:
            raise ValueError("num_machines must be positive")
        self.num_machines = num_machines

    def initial_partitioning(self, histogram, condition, rng):
        """Build the 1-Bucket grid; the sample state is never consulted."""
        return build_one_bucket_partitioning(self.num_machines)

    def needs_statistics(self, has_partitioning: bool) -> bool:
        """Random routing never consults the sample state."""
        return False

    def predicted_imbalance(self, histogram) -> float:
        """Randomised routing balances in expectation regardless of content."""
        return 1.0

    def resize_partitioning(self, num_machines, histogram, condition, rng):
        """Rebuild the 1-Bucket grid for the new fleet; no statistics needed."""
        self.num_machines = num_machines
        return build_one_bucket_partitioning(num_machines)


class _EWHPolicyBase(RepartitioningPolicy):
    """Shared EWH behaviour: build from the sample state once both sides exist."""

    def ready(self, histogram):
        """Defer the initial build until both sides have sample mass."""
        return histogram.can_build()

    def initial_partitioning(self, histogram, condition, rng):
        """Build the equi-weight histogram from the maintained sample state."""
        return histogram.build_partitioning(condition, rng)


class StaticEWHPolicy(_EWHPolicyBase):
    """The equi-weight histogram built from the stream prefix, then frozen."""

    scheme_name = "CSIO-static"

    def needs_statistics(self, has_partitioning: bool) -> bool:
        """The sample only feeds the one initial build."""
        return not has_partitioning


class DriftAdaptiveEWHPolicy(_EWHPolicyBase):
    """EWH with drift-triggered rebuilds from the maintained sample state."""

    scheme_name = "CSIO-adaptive"

    def __init__(self, detector: DriftDetector | None = None) -> None:
        self.detector = detector or DriftDetector()

    def maybe_repartition(self, histogram, metrics, condition, rng):
        """Rebuild from the sample state when the drift detector fires."""
        # The detector's warm-up and cool-down count processed batches, so
        # they use the engine's own position, not the source's numbering.
        drifted = self.detector.update(
            metrics.stream_position,
            metrics.live_imbalance,
            metrics.predicted_imbalance,
        )
        if not drifted or not histogram.can_build():
            return None
        return histogram.build_partitioning(condition, rng)
