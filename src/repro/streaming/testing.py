"""Equivalence assertions shared by the streaming test and benchmark suites.

Several suites pin the same contract -- two engine runs over the same seeded
stream must be *behaviourally bit-identical* -- from different angles:
history compaction versus the uncompacted reference, incremental counting
versus the legacy recount, one execution backend versus another.  Keeping
the comparison in one place means a metric added to the contract tightens
every suite at once instead of silently weakening whichever copy was not
updated.

Wall-clock quantities (``wall_seconds``, ``join_seconds``,
``per_machine_join_seconds``) are deliberately excluded: they measure the
machine, not the behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.streaming.metrics import StreamRunResult

__all__ = ["assert_equivalent_runs"]


def assert_equivalent_runs(
    actual: StreamRunResult, reference: StreamRunResult
) -> None:
    """Assert two runs are behaviourally bit-identical, batch by batch.

    Compares totals (output, cumulative load) and, per batch: the output
    delta (cluster-wide and per machine), per-machine loads, eviction
    counts and bytes freed, resident state, migration volume, rebuild
    charges, repartitioning decisions and the adopted migration plans
    (per-machine arrivals, departures and the region-to-machine mapping).
    Memory-footprint metrics (``resident_history_tuples``,
    ``resident_bytes``) are *not* compared -- they are exactly what history
    compaction is allowed to change -- and neither are wall-clock timings.
    """
    assert actual.num_batches == reference.num_batches
    assert actual.total_output == reference.total_output
    np.testing.assert_array_equal(
        actual.cumulative_load, reference.cumulative_load
    )
    for act, ref in zip(actual.batches, reference.batches):
        assert act.batch_index == ref.batch_index
        assert act.output_delta == ref.output_delta
        assert act.tuples_evicted == ref.tuples_evicted
        assert act.bytes_freed == ref.bytes_freed
        assert act.resident_tuples == ref.resident_tuples
        assert act.migrated_tuples == ref.migrated_tuples
        assert act.repartitioned == ref.repartitioned
        assert act.rebuild_cost == ref.rebuild_cost
        np.testing.assert_array_equal(
            act.per_machine_load, ref.per_machine_load
        )
        if ref.per_machine_output_delta is None:
            assert act.per_machine_output_delta is None
        else:
            np.testing.assert_array_equal(
                act.per_machine_output_delta, ref.per_machine_output_delta
            )
        assert (act.migration_plan is None) == (ref.migration_plan is None)
        if ref.migration_plan is not None:
            np.testing.assert_array_equal(
                act.migration_plan.per_machine_arrivals,
                ref.migration_plan.per_machine_arrivals,
            )
            np.testing.assert_array_equal(
                act.migration_plan.per_machine_departures,
                ref.migration_plan.per_machine_departures,
            )
            np.testing.assert_array_equal(
                act.migration_plan.region_to_machine,
                ref.migration_plan.region_to_machine,
            )
            assert act.migration_plan.mode == ref.migration_plan.mode
