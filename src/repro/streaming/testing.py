"""Test helpers for the streaming suites: equivalence assertions and faults.

Several suites pin the same contract -- two engine runs over the same seeded
stream must be *behaviourally bit-identical* -- from different angles:
history compaction versus the uncompacted reference, incremental counting
versus the legacy recount, one execution backend versus another, and a
kill-and-restore run versus the run that never stopped.  Keeping the
comparison in one place (:func:`assert_equivalent_runs`) means a metric
added to the contract tightens every suite at once instead of silently
weakening whichever copy was not updated.

Wall-clock quantities (``wall_seconds``, ``join_seconds``,
``per_machine_join_seconds``) are deliberately excluded: they measure the
machine, not the behaviour.

The fault-injection decorators make worker crashes deterministic without
killing real processes: :class:`CrashingBackend` raises
:class:`~repro.streaming.backends.WorkerCrashError` at a chosen work call
(and stays dead, like a real lost fleet), :class:`FlakyBackend` fails a
fixed number of calls and then recovers (a transient fault).  Both wrap any
:class:`~repro.streaming.backends.ExecutionBackend` -- simulated for fast
deterministic tests, sticky/multiprocess for end-to-end ones -- and forward
the full state-ownership protocol, so the engine cannot tell them from the
real thing until the fault fires.  ``tests/conftest.py`` and
``benchmarks/conftest.py`` re-export the factory fixtures
(:func:`crashing_backend`, :func:`flaky_backend`) so every suite can inject
faults without owning backend cleanup.
"""

from __future__ import annotations

import numpy as np

from repro.streaming.backends import (
    ExecutionBackend,
    RegionJoinResult,
    SimulatedBackend,
    WorkerCrashError,
)
from repro.streaming.metrics import StreamRunResult

__all__ = [
    "assert_equivalent_runs",
    "CrashingBackend",
    "FlakyBackend",
]


def assert_equivalent_runs(
    actual: StreamRunResult, reference: StreamRunResult
) -> None:
    """Assert two runs are behaviourally bit-identical, batch by batch.

    Compares totals (output, cumulative load) and, per batch: the output
    delta (cluster-wide and per machine), per-machine loads, eviction
    counts and bytes freed, resident state, migration volume, rebuild
    charges, repartitioning decisions and the adopted migration plans
    (per-machine arrivals, departures and the region-to-machine mapping).
    Memory-footprint metrics (``resident_history_tuples``,
    ``resident_bytes``) are *not* compared -- they are exactly what history
    compaction is allowed to change -- and neither are wall-clock timings.
    """
    assert actual.num_batches == reference.num_batches
    assert actual.total_output == reference.total_output
    assert actual.num_machines == reference.num_machines
    np.testing.assert_array_equal(
        actual.cumulative_load, reference.cumulative_load
    )
    for act, ref in zip(actual.batches, reference.batches):
        assert act.batch_index == ref.batch_index
        assert act.output_delta == ref.output_delta
        assert act.tuples_evicted == ref.tuples_evicted
        assert act.bytes_freed == ref.bytes_freed
        assert act.resident_tuples == ref.resident_tuples
        assert act.migrated_tuples == ref.migrated_tuples
        assert act.repartitioned == ref.repartitioned
        assert act.resized_from == ref.resized_from
        assert act.rebuild_cost == ref.rebuild_cost
        np.testing.assert_array_equal(
            act.per_machine_load, ref.per_machine_load
        )
        if ref.per_machine_output_delta is None:
            assert act.per_machine_output_delta is None
        else:
            np.testing.assert_array_equal(
                act.per_machine_output_delta, ref.per_machine_output_delta
            )
        assert (act.migration_plan is None) == (ref.migration_plan is None)
        if ref.migration_plan is not None:
            np.testing.assert_array_equal(
                act.migration_plan.per_machine_arrivals,
                ref.migration_plan.per_machine_arrivals,
            )
            np.testing.assert_array_equal(
                act.migration_plan.per_machine_departures,
                ref.migration_plan.per_machine_departures,
            )
            np.testing.assert_array_equal(
                act.migration_plan.region_to_machine,
                ref.migration_plan.region_to_machine,
            )
            assert act.migration_plan.mode == ref.migration_plan.mode


#: Work operations a fault can be scoped to.  ``bind``, ``resize`` and
#: ``drain_channel_bytes`` are deliberately not fault points: they are
#: engine-side bookkeeping commands whose failure modes the crash tests for
#: real backends already cover.
FAULT_OPS = ("join", "count", "evict", "rebase", "install")


class _ForwardingBackend(ExecutionBackend):
    """Transparent decorator over any backend, including the sticky protocol.

    Subclasses inject faults by overriding :meth:`_before`, which runs ahead
    of every *work* call (the operations in :data:`FAULT_OPS`).  Everything
    else -- identity, clock domain, state ownership, byte accounting -- is
    forwarded verbatim, so the engine drives the wrapped backend exactly as
    it would drive the inner one.
    """

    #: Prefix composed into ``name`` (e.g. ``crashing(simulated)``).
    wrapper_name = "forwarding"

    def __init__(self, inner: ExecutionBackend) -> None:
        self.inner = inner
        #: Work calls observed so far (faulting and forwarded alike).
        self.calls = 0

    @property
    def name(self) -> str:  # type: ignore[override]
        """Reporting name: the wrapper composed over the inner backend's."""
        return f"{self.wrapper_name}({self.inner.name})"

    @property
    def clock_domain(self) -> str:  # type: ignore[override]
        """The inner backend's clock domain, forwarded."""
        return self.inner.clock_domain

    @property
    def owns_state(self) -> bool:  # type: ignore[override]
        """Whether the inner backend keeps the join state resident."""
        return bool(getattr(self.inner, "owns_state", False))

    def _before(self, op: str) -> None:
        """Fault hook; called before each work call with its operation name."""

    def join_regions(
        self, region_keys, condition, keys2_sorted: bool = False
    ) -> RegionJoinResult:
        """Forward a stateless region join, faults permitting."""
        self._ensure_open()
        self._before("join")
        return self.inner.join_regions(
            region_keys, condition, keys2_sorted=keys2_sorted
        )

    def bind(self, num_machines, condition, transposed) -> None:
        """Forward the stream binding (never a fault point)."""
        self._ensure_open()
        self.inner.bind(num_machines, condition, transposed)

    def count_batch(self, new1, new2, history1, history2) -> RegionJoinResult:
        """Forward a stateful batch count, faults permitting."""
        self._ensure_open()
        self._before("count")
        return self.inner.count_batch(new1, new2, history1, history2)

    def evict_state(self, expired1, expired2) -> int:
        """Forward a worker-side eviction, faults permitting."""
        self._ensure_open()
        self._before("evict")
        return self.inner.evict_state(expired1, expired2)

    def rebase_state(self, trim1: int, trim2: int) -> None:
        """Forward an index rebase, faults permitting."""
        self._ensure_open()
        self._before("rebase")
        self.inner.rebase_state(trim1, trim2)

    def install_state(self, assignments1, assignments2, history1, history2):
        """Forward a state migration install, faults permitting."""
        self._ensure_open()
        self._before("install")
        return self.inner.install_state(
            assignments1, assignments2, history1, history2
        )

    def resize(self, num_machines: int) -> None:
        """Forward a fleet resize (never a fault point)."""
        self._ensure_open()
        self.inner.resize(num_machines)

    def drain_channel_bytes(self):
        """Forward the per-batch byte accounting drain."""
        return self.inner.drain_channel_bytes()

    def close(self) -> None:
        """Close the wrapper and the wrapped backend."""
        super().close()
        self.inner.close()


class CrashingBackend(_ForwardingBackend):
    """Inject a permanent worker crash at a chosen work call.

    The ``crash_at_call``-th matching work call (1-based; see
    :data:`FAULT_OPS`) raises
    :class:`~repro.streaming.backends.WorkerCrashError`, and -- like a real
    fleet whose resident state died with its processes -- every later work
    call keeps raising.  ``crash_on`` restricts which operations count and
    can fault (e.g. ``("install",)`` crashes *during a migration*);
    ``None`` counts every work call.  ``crash_at_call=None`` never
    crashes, making the wrapper a pure pass-through control.
    """

    wrapper_name = "crashing"

    def __init__(
        self,
        inner: ExecutionBackend,
        crash_at_call: "int | None" = None,
        crash_on: "tuple[str, ...] | None" = None,
    ) -> None:
        super().__init__(inner)
        if crash_at_call is not None and crash_at_call <= 0:
            raise ValueError("crash_at_call must be positive (1-based)")
        if crash_on is not None:
            unknown = set(crash_on) - set(FAULT_OPS)
            if unknown:
                raise ValueError(
                    f"unknown crash_on operations {sorted(unknown)!r} "
                    f"(expected a subset of {FAULT_OPS})"
                )
        self.crash_at_call = crash_at_call
        self.crash_on = tuple(crash_on) if crash_on is not None else None
        #: Set once the injected crash has fired; the backend stays dead.
        self.crashed = False

    def _before(self, op: str) -> None:
        """Raise the injected crash at (and after) the configured call."""
        if self.crashed:
            raise WorkerCrashError(
                f"injected crash: backend already dead (work call {op!r} "
                "after the crash) -- restore the run from its last "
                "checkpoint onto a fresh backend"
            )
        if self.crash_on is not None and op not in self.crash_on:
            return
        self.calls += 1
        if self.crash_at_call is not None and self.calls >= self.crash_at_call:
            self.crashed = True
            raise WorkerCrashError(
                f"injected crash at work call {self.calls} ({op!r}); the "
                "backend stays dead -- restore the run from its last "
                "checkpoint onto a fresh backend"
            )


class FlakyBackend(_ForwardingBackend):
    """Inject ``failures`` transient faults, then behave normally.

    The first ``failures`` work calls raise
    :class:`~repro.streaming.backends.WorkerCrashError`; every call after
    that is forwarded -- the model of a worker that died and was replaced,
    where retrying the whole run (or resuming it) succeeds.  The instance
    keeps its recovery across engines, so a driver that restarts on the
    *same* backend object observes fail-then-succeed.
    """

    wrapper_name = "flaky"

    def __init__(self, inner: ExecutionBackend, failures: int = 1) -> None:
        super().__init__(inner)
        if failures < 0:
            raise ValueError("failures must be non-negative")
        #: Remaining work calls that will fault; decremented per fault.
        self.failures_remaining = failures

    def _before(self, op: str) -> None:
        """Fault while the failure budget lasts, then forward forever."""
        self.calls += 1
        if self.failures_remaining > 0:
            self.failures_remaining -= 1
            raise WorkerCrashError(
                f"injected transient fault at work call {self.calls} "
                f"({op!r}); {self.failures_remaining} more will fail"
            )


try:  # pragma: no cover - exercised via the test suites' conftests
    import pytest
except ImportError:  # pragma: no cover - pytest is a test-only dependency
    pytest = None

if pytest is not None:
    __all__ += ["crashing_backend", "flaky_backend"]

    @pytest.fixture
    def crashing_backend():
        """Factory fixture: build :class:`CrashingBackend` wrappers.

        Call the factory with the same arguments as the class (``inner``
        defaults to a fresh :class:`SimulatedBackend`); every backend it
        built is closed at teardown, so tests do not own cleanup even when
        the injected crash aborts them mid-run.
        """
        created = []

        def factory(inner=None, **kwargs):
            backend = CrashingBackend(
                inner if inner is not None else SimulatedBackend(), **kwargs
            )
            created.append(backend)
            return backend

        yield factory
        for backend in created:
            backend.close()

    @pytest.fixture
    def flaky_backend():
        """Factory fixture: build :class:`FlakyBackend` wrappers.

        Same shape as :func:`crashing_backend`: call with the class's
        arguments, teardown closes everything the factory built.
        """
        created = []

        def factory(inner=None, **kwargs):
            backend = FlakyBackend(
                inner if inner is not None else SimulatedBackend(), **kwargs
            )
            created.append(backend)
            return backend

        yield factory
        for backend in created:
            backend.close()
