"""Checkpoint/restore of a running streaming join, and crash-resilient driving.

A streaming join is long-lived state: per-machine sorted region state, the
flat key histories, window liveness, the histogram's decayed sample
reservoirs, the drift detector's EWMA and the engine's own random generator.
:class:`StreamCheckpoint` captures *all* of it -- everything
:meth:`~repro.streaming.engine.StreamingJoinEngine.process_batch` reads or
writes -- so a run can be stopped at any batch boundary and resumed
bit-identically: the restored run produces the same outputs, per-machine
loads, migration plans and resident counts as the run that never stopped
(``tests/test_checkpoint.py`` pins this with hypothesis across window
policies, backends and crash points).

On-disk format
--------------
``to_bytes`` serializes a versioned, integrity-checked container::

    magic  b"RPSC"            4 bytes
    version  uint32 LE        4 bytes   (refused on load if unknown)
    payload length  uint64 LE 8 bytes
    sha256(payload)          32 bytes   (refused on load if it mismatches)
    payload                   pickle protocol 4 of the checkpoint fields

The payload pins pickle protocol 4, so serializing the same state twice in
one process yields byte-identical files -- ``save`` output is deterministic
and safe to golden.  ``from_bytes`` refuses unknown versions and corrupt
payloads with a clear ``ValueError`` instead of unpickling garbage.

Driving a crash-survivable run
------------------------------
:func:`run_resilient` wraps the engine's stepwise API into a loop that
checkpoints every ``checkpoint_every`` batches and, when a backend worker
dies mid-stream (:class:`~repro.streaming.backends.WorkerCrashError`),
restores onto a fresh backend from the last checkpoint and replays the
source -- the engine skips the already-processed prefix, so the final
result is identical to an uninterrupted run::

    result = run_resilient(
        lambda: StreamingJoinEngine(8, condition, weights, backend=backend()),
        source,
        checkpoint_every=6,
        backend_factory=lambda: SimulatedBackend(),
    )

The source must be re-iterable (every
:class:`~repro.streaming.source.StreamSource` is); a one-shot iterable can
be driven through the stepwise API directly with externally stored batches.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Callable, Iterable

import numpy as np

from repro.streaming.backends import WorkerCrashError
from repro.streaming.metrics import StreamRunResult

__all__ = ["CHECKPOINT_VERSION", "StreamCheckpoint", "run_resilient"]

#: Magic prefix of the serialized container ("RePro Stream Checkpoint").
_MAGIC = b"RPSC"

#: Format version written by this build; :meth:`StreamCheckpoint.from_bytes`
#: refuses anything else.
CHECKPOINT_VERSION = 1

#: Pickle protocol pinned for deterministic bytes (same state, same process,
#: same serialization).
_PICKLE_PROTOCOL = 4

_HEADER = struct.Struct("<4sIQ32s")


@dataclass(eq=False)
class StreamCheckpoint:
    """The complete resumable state of a streaming join at a batch boundary.

    Captured by
    :meth:`~repro.streaming.engine.StreamingJoinEngine.checkpoint` and
    consumed by
    :meth:`~repro.streaming.engine.StreamingJoinEngine.resume_from`; the
    fields split into the engine's *configuration* (scalars plus the live
    condition/weight/policy/window/histogram objects, pickled wholesale so
    the restored engine is constructed exactly like the original) and the
    run's *mutable state* (histories, liveness, per-machine region state,
    generator state, accumulated result).

    Attributes
    ----------
    num_machines, counting, repartition_mode, compact_history,
    migration_cost_factor, rebuild_scan_factor, seed:
        The engine constructor arguments at checkpoint time
        (``num_machines`` reflects any resize already adopted).
    condition, weight_fn, policy, window, histogram, partitioning:
        The engine's live collaborator objects, deep-copied at capture so
        later batches cannot mutate the checkpoint retroactively.  The
        policy carries its drift detector's EWMA/cooldown, the histogram
        its decayed reservoirs; ``partitioning`` is ``None`` before the
        initial build.
    rng_state:
        The engine generator's ``bit_generator.state`` dict -- restoring it
        replays routing, reservoir sampling and decay-window survival draws
        exactly.
    history1, history2, starts1, starts2, live1, live2:
        The flat per-side key histories, batch-start lists and live
        arrival-index sets, in engine coordinates (rebased by whatever
        history compaction trimmed).
    state_index1, state_keys1, state_index2, state_keys2:
        Per-machine region state.  For engine-resident state both the index
        and key columns are stored verbatim (restore is an exact
        reconstruction); for a state-owning sticky backend the engine only
        mirrors the indices, so the key lists are ``None`` and a restore
        regathers keys from the history.
    prev_outputs:
        The recount baseline's cumulative per-machine counts.
    region_to_machine:
        Where each region's state lives after any partial-repartitioning
        remap.
    last_batch_index, position:
        The last consumed source index (resume skips everything at or
        below it when the source is replayed) and the engine's own
        processed-batch counter.
    cumulative:
        Per-machine cost-model load accumulated so far.
    result:
        The partially filled :class:`~repro.streaming.metrics.StreamRunResult`
        (all batches processed so far), so the resumed run's final result
        covers the whole stream.
    pending_resize:
        Charges of a :meth:`~repro.streaming.engine.StreamingJoinEngine.resize`
        not yet folded into a batch, or ``None``.
    version:
        Format version (:data:`CHECKPOINT_VERSION`).
    """

    num_machines: int
    counting: str
    repartition_mode: str
    compact_history: bool
    migration_cost_factor: float
    rebuild_scan_factor: float
    seed: int
    condition: Any
    weight_fn: Any
    policy: Any
    window: Any
    histogram: Any
    partitioning: Any
    rng_state: dict[str, Any]
    history1: np.ndarray
    history2: np.ndarray
    starts1: list[int]
    starts2: list[int]
    live1: np.ndarray
    live2: np.ndarray
    state_index1: "list[np.ndarray]"
    state_keys1: "list[np.ndarray] | None"
    state_index2: "list[np.ndarray]"
    state_keys2: "list[np.ndarray] | None"
    prev_outputs: np.ndarray
    region_to_machine: np.ndarray
    last_batch_index: "int | None"
    position: int
    cumulative: np.ndarray
    result: StreamRunResult
    pending_resize: "dict[str, Any] | None" = None
    version: int = CHECKPOINT_VERSION

    def to_bytes(self) -> bytes:
        """Serialize to the versioned, digest-protected container format.

        Deterministic within a process: pickling the same captured state
        twice yields identical bytes (the protocol is pinned and dict
        insertion order is stable), which
        ``tests/test_checkpoint.py::test_checkpoint_roundtrip`` asserts.
        """
        payload = pickle.dumps(self._payload(), protocol=_PICKLE_PROTOCOL)
        header = _HEADER.pack(
            _MAGIC, self.version, len(payload), hashlib.sha256(payload).digest()
        )
        return header + payload

    def _payload(self) -> dict[str, Any]:
        """The field dict shipped in the pickled payload (version travels in the header)."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "version"
        }

    @classmethod
    def from_bytes(cls, raw: bytes) -> "StreamCheckpoint":
        """Parse the container format; refuse unknown versions and corruption."""
        if len(raw) < _HEADER.size:
            raise ValueError(
                f"truncated stream checkpoint: {len(raw)} bytes is shorter "
                f"than the {_HEADER.size}-byte header"
            )
        magic, version, length, digest = _HEADER.unpack_from(raw)
        if magic != _MAGIC:
            raise ValueError(
                f"not a stream checkpoint (bad magic {magic!r}, "
                f"expected {_MAGIC!r})"
            )
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported stream checkpoint version {version}; this "
                f"build reads version {CHECKPOINT_VERSION} only"
            )
        payload = raw[_HEADER.size :]
        if len(payload) != length:
            raise ValueError(
                f"truncated stream checkpoint: header promises {length} "
                f"payload bytes, got {len(payload)}"
            )
        if hashlib.sha256(payload).digest() != digest:
            raise ValueError(
                "corrupt stream checkpoint: payload digest mismatch"
            )
        return cls(version=version, **pickle.loads(payload))

    def save(self, path: "str | Path") -> int:
        """Write the serialized checkpoint to ``path``; return bytes written."""
        data = self.to_bytes()
        Path(path).write_bytes(data)
        return len(data)

    @classmethod
    def load(cls, path: "str | Path") -> "StreamCheckpoint":
        """Read a checkpoint written by :meth:`save` (validating the format)."""
        return cls.from_bytes(Path(path).read_bytes())

    @property
    def resident_tuples(self) -> int:
        """State entries captured across all machines and both sides."""
        return sum(len(index) for index in self.state_index1) + sum(
            len(index) for index in self.state_index2
        )


def run_resilient(
    engine_factory: "Callable[[], Any]",
    source: "Iterable[Any]",
    *,
    checkpoint_every: int = 8,
    max_restarts: int = 3,
    backend_factory: "Callable[[], Any] | None" = None,
    machines: "int | None" = None,
    verify: bool = True,
    allow_gaps: bool = False,
) -> StreamRunResult:
    """Run a streaming join to completion, surviving backend worker crashes.

    Drives ``engine_factory()``'s engine through the stepwise API
    (``start`` / ``process_batch`` / ``finish``), capturing a
    :class:`StreamCheckpoint` every ``checkpoint_every`` processed batches.
    When a :class:`~repro.streaming.backends.WorkerCrashError` surfaces the
    crashed engine is closed (which reaps an engine-owned backend; an
    *injected* backend stays the caller's to close, so a transient
    :class:`~repro.streaming.testing.FlakyBackend` shared across restarts
    survives), the run is restored from the last checkpoint onto a fresh
    backend (``backend_factory()`` when given, else the restored engine's
    default simulated backend) and the source is replayed -- the engine
    skips every batch at or below the checkpoint's position, so nothing is
    double-counted.  A crash before the first checkpoint restarts from
    scratch via ``engine_factory()``.

    Parameters
    ----------
    engine_factory:
        Zero-argument callable building a fresh, unconsumed engine (with a
        fresh backend if it uses a process-backed one).
    source:
        The stream; must be re-iterable for replay after a crash.
    checkpoint_every:
        Checkpoint cadence in processed batches; ``0`` disables periodic
        checkpoints (a crash then always restarts from scratch).
    max_restarts:
        Crash budget; the ``WorkerCrashError`` is re-raised once exceeded.
    backend_factory:
        Builds the backend each *restore* runs on.  ``None`` resumes onto
        the engine default (in-process simulated).
    machines:
        Optional fleet size to resize onto at restore time -- crash
        recovery onto a surviving (smaller) fleet is
        ``machines=<survivors>``.
    verify, allow_gaps:
        Forwarded to ``finish`` / ``process_batch`` (same semantics as
        :meth:`~repro.streaming.engine.StreamingJoinEngine.run`).

    Returns the completed :class:`~repro.streaming.metrics.StreamRunResult`;
    its ``restores`` field counts how many recoveries happened.
    """
    if checkpoint_every < 0:
        raise ValueError("checkpoint_every must be non-negative")
    if max_restarts < 0:
        raise ValueError("max_restarts must be non-negative")
    engine = engine_factory()
    restarts = 0
    last_checkpoint: "StreamCheckpoint | None" = None
    # Backends built by backend_factory are this function's resources: the
    # resumed engine treats an injected backend as the caller's, and here
    # the caller is this loop.  close() is idempotent.
    factory_backends: "list[Any]" = []
    try:
        while True:
            try:
                if engine.phase == "new":
                    engine.start()
                processed = 0
                batches = (
                    source.batches()
                    if hasattr(source, "batches")
                    else iter(source)
                )
                for batch in batches:
                    if engine.process_batch(batch, allow_gaps=allow_gaps) is None:
                        continue  # replayed prefix, already restored
                    processed += 1
                    if checkpoint_every and processed % checkpoint_every == 0:
                        last_checkpoint = engine.checkpoint()
                return engine.finish(verify=verify)
            except WorkerCrashError:
                # Engine-owned backends are reaped here; an injected backend
                # stays the caller's to close (a transient FlakyBackend
                # shared across restarts must survive the crash, and a dead
                # sticky fleet is the caller's resource either way).
                engine.close()
                restarts += 1
                if restarts > max_restarts:
                    raise
                if last_checkpoint is None:
                    # No checkpoint yet: restart from scratch.  The factory
                    # must hand back a fresh usable backend (the crashed
                    # engine's owned backend is closed above).
                    engine = engine_factory()
                else:
                    backend = (
                        backend_factory()
                        if backend_factory is not None
                        else None
                    )
                    if backend is not None:
                        factory_backends.append(backend)
                    engine = type(engine).resume_from(
                        last_checkpoint,
                        backend=backend,
                        machines=machines,
                    )
    finally:
        for backend in factory_backends:
            backend.close()
