"""Micro-batched input streams for the online join engine.

A :class:`StreamSource` produces a deterministic, re-iterable sequence of
:class:`MicroBatch` objects, each carrying the join keys that arrived on both
sides during one batch interval.  Two concrete sources are provided:

* :class:`ArrayStreamSource` replays fixed key arrays (for example a
  :class:`~repro.workloads.definitions.JoinWorkload`) in contiguous slices --
  a stationary stream, useful for validating the engine against the batch
  pipeline.
* :class:`DriftingZipfSource` draws each batch from a Zipf(z) multiplicity
  distribution whose skew parameter *and* rank-to-value permutation change at
  a configurable shift point.  Before the shift the stream is near-uniform;
  after it, a few hot values concentrate most of the mass (join product
  skew), and because the permutation is redrawn the hot values *move* -- the
  scenario where a partitioning built from early statistics goes stale.

Sources are re-iterable: every call to :meth:`StreamSource.batches` restarts
the stream from scratch with the same seed, so several engines can consume
identical input.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.data.zipf import sample_zipf_multiplicities
from repro.joins.conditions import normalise_keys

__all__ = [
    "MicroBatch",
    "StreamSource",
    "ArrayStreamSource",
    "DriftingZipfSource",
    "RateLimitedSource",
]


def _as_key_array(keys) -> np.ndarray:
    """Normalise a key array, preserving exact integer values.

    Delegates to :func:`~repro.joins.conditions.normalise_keys`, the one
    shared rule: integer inputs keep their exact int64 image (coercing
    them to ``float64`` silently rounds integer join keys above 2**53 and
    can change join output -- two distinct keys collapse onto one float);
    everything else, including the pathological uint64 beyond int64 range,
    is coerced to ``float64`` as before.
    """
    return normalise_keys(keys)


@dataclass(frozen=True)
class MicroBatch:
    """One batch interval's worth of arrivals on both join sides.

    Attributes
    ----------
    index:
        Zero-based batch sequence number.
    keys1, keys2:
        Join keys that arrived on the R1 and R2 side during the interval
        (either may be empty).  Dtypes are preserved end-to-end: integer
        keys stay integers through the engine's history and region state,
        so int64 keys above 2**53 never lose precision.
    """

    index: int
    keys1: np.ndarray
    keys2: np.ndarray

    @property
    def num_tuples(self) -> int:
        """Total arrivals in the batch (both sides)."""
        return len(self.keys1) + len(self.keys2)


class StreamSource(abc.ABC):
    """A deterministic, re-iterable producer of micro-batches."""

    @property
    @abc.abstractmethod
    def num_batches(self) -> int:
        """Number of batches the stream produces."""

    @abc.abstractmethod
    def batches(self) -> Iterator[MicroBatch]:
        """Yield the stream's micro-batches from the beginning."""

    def __iter__(self) -> Iterator[MicroBatch]:
        """Iterate the stream from the beginning (alias for :meth:`batches`)."""
        return self.batches()

    @property
    def total_tuples(self) -> int:
        """Total arrivals over the whole stream.

        The base implementation materialises the stream to count; sources
        (and wrappers) that already know the answer override it with an
        O(1) computation so pipeline bookkeeping never replays the stream.
        """
        return sum(batch.num_tuples for batch in self.batches())


class ArrayStreamSource(StreamSource):
    """Replay fixed key arrays as a stream of contiguous micro-batches.

    Both sides are cut into ``num_batches`` near-equal contiguous slices in
    arrival order, so batch ``i`` of a replayed workload contains the same
    tuples on every iteration.  Integer key arrays keep their dtype -- an
    int64 workload replays exactly, even for keys above 2**53 that a
    ``float64`` coercion would silently round.
    """

    def __init__(
        self, keys1: np.ndarray, keys2: np.ndarray, num_batches: int
    ) -> None:
        if num_batches <= 0:
            raise ValueError("num_batches must be positive")
        self.keys1 = _as_key_array(keys1)
        self.keys2 = _as_key_array(keys2)
        self._num_batches = num_batches

    @classmethod
    def from_workload(cls, workload, num_batches: int) -> "ArrayStreamSource":
        """Replay a :class:`~repro.workloads.definitions.JoinWorkload`."""
        return cls(workload.keys1, workload.keys2, num_batches)

    @property
    def num_batches(self) -> int:
        """Number of slices the arrays are replayed as."""
        return self._num_batches

    @property
    def total_tuples(self) -> int:
        """Both arrays' combined length, without replaying the stream."""
        return len(self.keys1) + len(self.keys2)

    def batches(self) -> Iterator[MicroBatch]:
        """Yield the arrays as contiguous, near-equal micro-batches."""
        splits1 = np.array_split(self.keys1, self._num_batches)
        splits2 = np.array_split(self.keys2, self._num_batches)
        for index, (part1, part2) in enumerate(zip(splits1, splits2)):
            yield MicroBatch(index=index, keys1=part1, keys2=part2)


class DriftingZipfSource(StreamSource):
    """A band-join friendly stream whose skew shifts mid-stream.

    Every batch draws ``tuples_per_batch`` keys per side over the integer
    domain ``[domain_min, domain_min + num_values)`` with Zipf(z)
    multiplicities -- an independent multinomial realisation per side (and
    per batch), so R1 and R2 are never the same multiset; they only share
    the skew distribution.  The rank-to-value permutation is fixed *within*
    a phase (so the hot values persist batch after batch and the skew is a
    stable property of the stream, as with a trending key in production
    traffic) and redrawn at the shift, so the post-shift hot spot lands
    somewhere a partitioning built on the early phase never anticipated.
    Both sides share the phase permutation, which aligns the hot values
    across sides and turns the frequency skew into join *product* skew.

    Parameters
    ----------
    num_batches:
        Length of the stream.
    tuples_per_batch:
        Arrivals per side per batch.
    num_values:
        Distinct key values in the domain.
    z_initial, z_final:
        Zipf skew before and after the shift (``z_initial`` near 0 is
        near-uniform).
    shift_at_batch:
        First batch drawn from the post-shift distribution; ``None`` (or a
        value >= ``num_batches``) yields a stationary stream.
    z_schedule:
        Optional override: a callable ``batch_index -> z`` replacing the
        two-phase schedule (the permutation still changes at
        ``shift_at_batch``).
    domain_min:
        Smallest key value.
    seed:
        Seed of the stream; iterating twice yields identical batches.
    """

    def __init__(
        self,
        num_batches: int,
        tuples_per_batch: int,
        num_values: int,
        z_initial: float = 0.1,
        z_final: float = 1.0,
        shift_at_batch: int | None = None,
        z_schedule: Callable[[int], float] | None = None,
        domain_min: int = 1,
        seed: int = 0,
    ) -> None:
        if num_batches <= 0:
            raise ValueError("num_batches must be positive")
        if tuples_per_batch <= 0:
            raise ValueError("tuples_per_batch must be positive")
        if num_values <= 0:
            raise ValueError("num_values must be positive")
        self._num_batches = num_batches
        self.tuples_per_batch = tuples_per_batch
        self.num_values = num_values
        self.z_initial = z_initial
        self.z_final = z_final
        self.shift_at_batch = shift_at_batch
        self.z_schedule = z_schedule
        self.domain_min = domain_min
        self.seed = seed

    @property
    def num_batches(self) -> int:
        """Length of the stream in micro-batches."""
        return self._num_batches

    @property
    def total_tuples(self) -> int:
        """Exact stream volume (two fixed-size sides), computed in O(1)."""
        return 2 * self.tuples_per_batch * self._num_batches

    def _z_of(self, batch_index: int) -> float:
        if self.z_schedule is not None:
            return float(self.z_schedule(batch_index))
        if self.shift_at_batch is not None and batch_index >= self.shift_at_batch:
            return self.z_final
        return self.z_initial

    def _phase_of(self, batch_index: int) -> int:
        if self.shift_at_batch is None:
            return 0
        return 0 if batch_index < self.shift_at_batch else 1

    def batches(self) -> Iterator[MicroBatch]:
        """Yield the drifting-Zipf batches deterministically from the seed."""
        rng = np.random.default_rng(self.seed)
        values = np.arange(
            self.domain_min, self.domain_min + self.num_values, dtype=np.int64
        )
        # One permutation per phase, drawn up front so the per-batch draws
        # cannot perturb it.
        permutations = [rng.permutation(values), rng.permutation(values)]
        for index in range(self._num_batches):
            phase_values = permutations[self._phase_of(index)]
            sides = []
            for _ in range(2):
                # One multinomial draw per side: R1 and R2 share the skew
                # distribution and the phase permutation (so the hot values
                # align across sides and the skew becomes join product
                # skew) but are independent realisations, not copies of
                # one multiset.
                counts = sample_zipf_multiplicities(
                    self.num_values, self.tuples_per_batch, self._z_of(index), rng
                )
                keys = np.repeat(phase_values, counts).astype(np.float64)  # repro: ignore[KEY001]  # drifting-Zipf source emits small-domain float keys by design
                rng.shuffle(keys)
                sides.append(keys)
            yield MicroBatch(index=index, keys1=sides[0], keys2=sides[1])


class RateLimitedSource(StreamSource):
    """Attach a wall-clock arrival schedule to an existing stream.

    The wrapper changes *when* batches become available, never what they
    contain: batch ``i`` arrives at ``(i + 1) * seconds_per_batch`` (one
    interval elapses while a batch's tuples are being collected).  The
    :class:`~repro.streaming.pipeline.StreamingPipeline` reads the schedule
    through :meth:`arrival_time` -- its threaded mode sleeps the producer
    until each batch is due, its simulated mode uses the times directly as
    deterministic event timestamps.  Consuming the source outside a
    pipeline (e.g. ``engine.run(rate_limited)``) ignores the schedule and
    behaves exactly like the wrapped source.

    Parameters
    ----------
    inner:
        The stream being scheduled.
    seconds_per_batch:
        Interval between consecutive batch arrivals (must be positive).
    """

    def __init__(self, inner: StreamSource, seconds_per_batch: float) -> None:
        if seconds_per_batch <= 0:
            raise ValueError("seconds_per_batch must be positive")
        self.inner = inner
        self.seconds_per_batch = float(seconds_per_batch)

    @property
    def num_batches(self) -> int:
        """Length of the wrapped stream."""
        return self.inner.num_batches

    @property
    def total_tuples(self) -> int:
        """The wrapped stream's volume; never re-materialises the stream.

        Delegates to the inner source, which knows its own count (O(1) for
        the provided sources) -- the wrapper adds timing metadata only.
        """
        return self.inner.total_tuples

    def arrival_time(self, position: int) -> float:
        """Seconds from stream start until batch ``position`` is available."""
        return (position + 1) * self.seconds_per_batch

    def batches(self) -> Iterator[MicroBatch]:
        """Yield the wrapped stream's batches (the schedule is metadata)."""
        return self.inner.batches()
