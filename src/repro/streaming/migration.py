"""State migration between partitionings of a running streaming join.

A streaming join is stateful: every machine retains the tuples routed to its
region so far, because future arrivals on the other side must join against
them.  Swapping in a new partitioning therefore has a real cost -- every
retained tuple whose new region set includes a machine that does not already
hold it must be shipped there.  :func:`plan_migration` computes that plan
exactly from the old per-machine index sets and the new partitioning, and the
engine charges the moved tuples into the cost model (they are received,
demarshalled and indexed like any other network arrival).

Tuples are identified by their global arrival index, so "already present on
machine r" is an exact set test, and replicated tuples (a tuple may live on
several machines under either partitioning) are handled naturally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partitioning.base import Partitioning

__all__ = ["MigrationPlan", "pad_assignments", "plan_migration"]


@dataclass
class MigrationPlan:
    """The exact tuple movements required to adopt a new partitioning.

    Attributes
    ----------
    new_assignments1, new_assignments2:
        Per-machine global-index arrays of the retained R1/R2 state under
        the *new* partitioning (machines beyond the new region count hold
        nothing).
    per_machine_arrivals:
        Tuples each machine must newly receive (it did not hold them under
        the old partitioning).
    total_moved:
        Sum of the per-machine arrivals -- the migration volume in tuples.
    """

    new_assignments1: list[np.ndarray]
    new_assignments2: list[np.ndarray]
    per_machine_arrivals: np.ndarray

    @property
    def total_moved(self) -> int:
        return int(self.per_machine_arrivals.sum())


def pad_assignments(
    assignments: list[np.ndarray], num_machines: int
) -> list[np.ndarray]:
    """Extend a per-region assignment list to the full machine count.

    A partitioning may produce fewer regions than there are machines (the
    equi-weight histogram uses at most J); machines beyond the region count
    hold nothing.  Shared by the engine's routing and the migration planner
    so both paths pad identically.
    """
    empty = np.empty(0, dtype=np.int64)
    padded = [np.asarray(a, dtype=np.int64) for a in assignments]
    padded.extend(empty for _ in range(num_machines - len(padded)))
    return padded


def plan_migration(
    old_assignments1: list[np.ndarray],
    old_assignments2: list[np.ndarray],
    new_partitioning: Partitioning,
    keys1: np.ndarray,
    keys2: np.ndarray,
    num_machines: int,
    rng: np.random.Generator,
) -> MigrationPlan:
    """Plan the state movement from the old machine assignment to a new scheme.

    Parameters
    ----------
    old_assignments1, old_assignments2:
        Per-machine arrays of global tuple indices currently held (R1/R2).
    new_partitioning:
        The scheme taking over; it is asked to route the full retained
        history.
    keys1, keys2:
        The retained key history, indexed by the global indices.
    num_machines:
        Cluster size (at least the region count of either partitioning).
    rng:
        Generator for randomised schemes.
    """
    new1 = pad_assignments(
        new_partitioning.assign_r1(np.asarray(keys1), rng), num_machines
    )
    new2 = pad_assignments(
        new_partitioning.assign_r2(np.asarray(keys2), rng), num_machines
    )
    old1 = pad_assignments(old_assignments1, num_machines)
    old2 = pad_assignments(old_assignments2, num_machines)

    arrivals = np.zeros(num_machines, dtype=np.int64)
    for machine in range(num_machines):
        moved1 = np.setdiff1d(new1[machine], old1[machine], assume_unique=True)
        moved2 = np.setdiff1d(new2[machine], old2[machine], assume_unique=True)
        arrivals[machine] = len(moved1) + len(moved2)
    return MigrationPlan(
        new_assignments1=new1,
        new_assignments2=new2,
        per_machine_arrivals=arrivals,
    )
