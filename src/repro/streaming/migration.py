"""State migration between partitionings of a running streaming join.

A streaming join is stateful: every machine retains the tuples routed to its
region so far, because future arrivals on the other side must join against
them.  Swapping in a new partitioning therefore has a real cost -- every
retained tuple whose new home includes a machine that does not already hold
it must be shipped there.  :func:`plan_migration` computes that plan exactly
from the old per-machine index sets and the new partitioning, and the engine
charges the moved tuples into the cost model (they are received,
demarshalled and indexed like any other network arrival).

Two planning modes exist:

* ``mode="full"`` adopts the new partitioning *positionally*: new region
  ``r`` lands on machine ``r``, and the full routed history is diffed
  against what each machine already holds.  This is the naive rebuild --
  nothing ties new region ``r`` to the machine whose old state it most
  resembles, so a mild boundary shift can still reshuffle most of the
  cluster.
* ``mode="partial"`` first diffs the old and new region-to-machine mappings:
  it computes, for every (new region, machine) pair, how many retained
  tuples the machine already holds of that region, then picks a bijective
  region-to-machine assignment maximising that overlap (a greedy matching,
  never worse than the positional identity).  Only the regions whose
  assignment actually changed migrate state, and exactly that volume is
  charged -- the partial-migration volume is therefore always at most the
  full-migration volume, and zero when the mapping is unchanged.

Tuples are identified by their arrival index, so "already present on machine
r" is an exact set test, and replicated tuples (a tuple may live on several
machines under either partitioning) are handled naturally.  The planner is
coordinate-agnostic: it only requires that the old assignments, the key
arrays and the live sets agree on one indexing scheme.  The engine passes
*engine coordinates* -- global arrival indices minus whatever its history
compaction has trimmed -- and because every input is rebased together, the
planned volumes, mappings and state are identical with or without
compaction.  The plan also reports per-machine departures, so tests can
assert tuple conservation (for non-replicating schemes, migrated-out ==
migrated-in per rebuild).

When the engine runs under a window policy (:mod:`repro.streaming.window`)
it passes the per-side live index sets (``live1`` / ``live2``): only live
tuples are routed by the new partitioning, so a rebuild migrates live state
only -- expired tuples are neither shipped nor resurrected onto machines
that already dropped them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.partitioning.base import Partitioning

__all__ = ["MigrationPlan", "pad_assignments", "plan_migration"]

#: Planning modes accepted by :func:`plan_migration`.
MIGRATION_MODES = ("full", "partial")


@dataclass
class MigrationPlan:
    """The exact tuple movements required to adopt a new partitioning.

    Attributes
    ----------
    new_assignments1, new_assignments2:
        Per-machine arrival-index arrays of the retained R1/R2 state under
        the *new* partitioning (machines whose new region is empty hold
        nothing).
    per_machine_arrivals:
        Tuples each machine must newly receive (it did not hold them under
        the old partitioning).
    per_machine_departures:
        Tuples each machine held under the old partitioning but no longer
        holds under the new one (dropped locally, shipped by the sender side
        of the arrivals above).  On a shrinking resize this vector covers
        the *old* fleet, so it can be longer than ``per_machine_arrivals``;
        a machine leaving the cluster departs everything it held.
    region_to_machine:
        The adopted region-to-machine bijection: new region ``r``'s state
        lives on machine ``region_to_machine[r]``.  The identity permutation
        under ``mode="full"``.
    mode:
        The planning mode that produced this plan (``"full"``/``"partial"``).
    total_moved:
        Sum of the per-machine arrivals -- the migration volume in tuples,
        which is what the engine charges into the cost model.
    """

    new_assignments1: list[np.ndarray]
    new_assignments2: list[np.ndarray]
    per_machine_arrivals: np.ndarray
    per_machine_departures: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    region_to_machine: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    mode: str = "full"

    @property
    def total_moved(self) -> int:
        """Migration volume in tuples (sum of per-machine arrivals)."""
        return int(self.per_machine_arrivals.sum())

    @property
    def total_departed(self) -> int:
        """Tuples dropped by their old machines (sum of departures)."""
        return int(self.per_machine_departures.sum())


def pad_assignments(
    assignments: list[np.ndarray], num_machines: int
) -> list[np.ndarray]:
    """Extend a per-region assignment list to the full machine count.

    A partitioning may produce fewer regions than there are machines (the
    equi-weight histogram uses at most J); machines beyond the region count
    hold nothing.  Shared by the engine's routing and the migration planner
    so both paths pad identically.
    """
    empty = np.empty(0, dtype=np.int64)
    padded = [np.asarray(a, dtype=np.int64) for a in assignments]
    padded.extend(empty for _ in range(num_machines - len(padded)))
    return padded


def _overlap_matrix(
    routed: list[np.ndarray],
    held: list[np.ndarray],
    num_machines: int,
) -> np.ndarray:
    """J x J matrix of ``len(routed[r] & held[m])`` in one vectorised pass.

    The per-pair ``np.intersect1d`` rebuild this replaces re-sorted both
    sides J^2 times -- the ROADMAP-named scaling bottleneck for large-J
    grids.  Here the held side is flattened and sorted *once* (tagged by
    holding machine), every routed index finds its holders with two
    ``searchsorted`` passes, and the hits are histogrammed on
    ``region * J + machine`` pair codes.  Indices are unique within a
    region and within a machine (a region routes a tuple at most once, a
    machine holds it at most once), so each hit is one intersection member;
    an index held by several machines expands to one hit per holder, which
    is exactly how the per-pair intersections counted it.
    """
    J = num_machines
    overlaps = np.zeros((J, J), dtype=np.int64)
    routed_lengths = np.array([len(r) for r in routed], dtype=np.int64)
    held_lengths = np.array([len(h) for h in held], dtype=np.int64)
    if routed_lengths.sum() == 0 or held_lengths.sum() == 0:
        return overlaps
    routed_idx = np.concatenate(
        [np.asarray(r, dtype=np.int64) for r in routed]
    )
    region_of = np.repeat(np.arange(J, dtype=np.int64), routed_lengths)
    held_idx = np.concatenate([np.asarray(h, dtype=np.int64) for h in held])
    machine_of = np.repeat(np.arange(J, dtype=np.int64), held_lengths)
    order = np.argsort(held_idx, kind="stable")
    held_idx = held_idx[order]
    machine_of = machine_of[order]
    lo = np.searchsorted(held_idx, routed_idx, side="left")
    counts = np.searchsorted(held_idx, routed_idx, side="right") - lo
    total = int(counts.sum())
    if total == 0:
        return overlaps
    # Ragged expansion: for every routed index, the positions of its
    # holders in the sorted held array (lo[i] .. lo[i]+counts[i]).
    positions = (
        np.repeat(lo, counts)
        + np.arange(total, dtype=np.int64)
        - np.repeat(np.cumsum(counts) - counts, counts)
    )
    pair_codes = np.repeat(region_of * J, counts) + machine_of[positions]
    overlaps += np.bincount(pair_codes, minlength=J * J).reshape(J, J)
    return overlaps


def _best_region_map(
    routed1: list[np.ndarray],
    routed2: list[np.ndarray],
    old1: list[np.ndarray],
    old2: list[np.ndarray],
    num_machines: int,
) -> np.ndarray:
    """Bijective region-to-machine map maximising already-held tuples.

    Greedy maximal matching on the (region, machine) overlap matrix, taken
    only if it retains at least as much state as the positional identity --
    so the resulting partial plan never migrates more than the full plan.
    Deterministic: ties break towards lower region then machine index.
    """
    overlaps = _overlap_matrix(routed1, old1, num_machines) + _overlap_matrix(
        routed2, old2, num_machines
    )

    pairs = sorted(
        (
            (-overlaps[region, machine], region, machine)
            for region in range(num_machines)
            for machine in range(num_machines)
            if overlaps[region, machine] > 0
        )
    )
    mapping = np.full(num_machines, -1, dtype=np.int64)
    taken = np.zeros(num_machines, dtype=bool)
    for negative_overlap, region, machine in pairs:
        if mapping[region] >= 0 or taken[machine]:
            continue
        mapping[region] = machine
        taken[machine] = True
    # Unmatched regions (no overlap anywhere) keep their positional slot
    # when free, else take the lowest free machine.
    free = [machine for machine in range(num_machines) if not taken[machine]]
    for region in range(num_machines):
        if mapping[region] >= 0:
            continue
        if not taken[region]:
            mapping[region] = region
            taken[region] = True
            free.remove(region)
        else:
            machine = free.pop(0)
            mapping[region] = machine
            taken[machine] = True

    greedy_total = int(overlaps[np.arange(num_machines), mapping].sum())
    identity_total = int(np.trace(overlaps))
    if greedy_total <= identity_total:
        return np.arange(num_machines, dtype=np.int64)
    return mapping


def _route_live(
    assign,
    keys: np.ndarray,
    live: np.ndarray | None,
    num_machines: int,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Route one side's live tuples; return per-region global-index arrays.

    With ``live=None`` the whole history is routed and the partitioning's
    batch-local indices already are global indices.  With a live set, only
    ``keys[live]`` is handed to the partitioning and the local indices are
    mapped back through ``live`` -- expired tuples are never routed, so a
    migration ships (and a post-migration machine holds) live state only.
    """
    keys = np.asarray(keys)
    if live is None:
        return pad_assignments(assign(keys, rng), num_machines)
    live = np.asarray(live, dtype=np.int64)
    local = pad_assignments(assign(keys[live], rng), num_machines)
    return [live[indices] for indices in local]


def plan_migration(
    old_assignments1: list[np.ndarray],
    old_assignments2: list[np.ndarray],
    new_partitioning: Partitioning,
    keys1: np.ndarray,
    keys2: np.ndarray,
    num_machines: int,
    rng: np.random.Generator,
    mode: str = "full",
    live1: np.ndarray | None = None,
    live2: np.ndarray | None = None,
) -> MigrationPlan:
    """Plan the state movement from the old machine assignment to a new scheme.

    Parameters
    ----------
    old_assignments1, old_assignments2:
        Per-machine arrays of tuple arrival indices currently held (R1/R2),
        in the same coordinates as ``keys1``/``keys2``.
    new_partitioning:
        The scheme taking over; it is asked to route the retained history
        (all of it, or only the live subset when a window is active).
    keys1, keys2:
        The retained key history, indexed by the arrival indices (the
        engine passes its compacted arrays; indices are rebased to match).
    num_machines:
        The *target* cluster size (at least the region count of the new
        partitioning).  The old assignment lists may be longer -- a shrink
        plans the surviving ``num_machines`` fleet and every tuple held by
        a departing machine counts as a departure there (and as an arrival
        on its new holder, if it is still live).  Shorter old lists (a
        grow) are padded with empty machines as before.
    rng:
        Generator for randomised schemes.
    mode:
        ``"full"`` places new region ``r`` on machine ``r``; ``"partial"``
        remaps regions to the machines already holding most of their state
        and migrates only the difference (see the module docstring).
    live1, live2:
        Optional arrival-index arrays of the tuples still live under the
        engine's window policy.  When given, only those tuples are routed
        and can appear in the planned state -- a rebuild never ships (or
        resurrects) expired tuples, and the migration volume charged is the
        live volume only.  ``None`` routes the full history (unbounded).
    """
    if mode not in MIGRATION_MODES:
        raise ValueError(
            f"unknown migration mode {mode!r} (expected one of {MIGRATION_MODES})"
        )
    routed1 = _route_live(
        new_partitioning.assign_r1, keys1, live1, num_machines, rng
    )
    routed2 = _route_live(
        new_partitioning.assign_r2, keys2, live2, num_machines, rng
    )
    # A resize may shrink the fleet: the old lists then outnumber the new
    # machines.  Pad the old side to whichever count is larger so departing
    # machines' state is diffed (everything they hold departs), while the
    # new state, the matching and the arrival vector live on the target
    # fleet only.
    old_machines = max(len(old_assignments1), len(old_assignments2), num_machines)
    old1 = pad_assignments(old_assignments1, old_machines)
    old2 = pad_assignments(old_assignments2, old_machines)

    if mode == "partial":
        region_to_machine = _best_region_map(
            routed1,
            routed2,
            old1[:num_machines],
            old2[:num_machines],
            num_machines,
        )
    else:
        region_to_machine = np.arange(num_machines, dtype=np.int64)

    empty = np.empty(0, dtype=np.int64)
    new1: list[np.ndarray] = [empty] * num_machines
    new2: list[np.ndarray] = [empty] * num_machines
    for region, machine in enumerate(region_to_machine):
        new1[machine] = routed1[region]
        new2[machine] = routed2[region]

    arrivals = np.zeros(num_machines, dtype=np.int64)
    departures = np.zeros(old_machines, dtype=np.int64)
    for machine in range(old_machines):
        target1 = new1[machine] if machine < num_machines else empty
        target2 = new2[machine] if machine < num_machines else empty
        if machine < num_machines:
            moved_in1 = np.setdiff1d(target1, old1[machine], assume_unique=True)
            moved_in2 = np.setdiff1d(target2, old2[machine], assume_unique=True)
            arrivals[machine] = len(moved_in1) + len(moved_in2)
        moved_out1 = np.setdiff1d(old1[machine], target1, assume_unique=True)
        moved_out2 = np.setdiff1d(old2[machine], target2, assume_unique=True)
        departures[machine] = len(moved_out1) + len(moved_out2)
    return MigrationPlan(
        new_assignments1=new1,
        new_assignments2=new2,
        per_machine_arrivals=arrivals,
        per_machine_departures=departures,
        region_to_machine=region_to_machine,
        mode=mode,
    )
