"""Backpressured producer/consumer pipeline between a source and the engine.

The synchronous :meth:`~repro.streaming.engine.StreamingJoinEngine.run` loop
pulls batches one at a time: a slow batch (a repartitioning, a migration, a
skew-inflated join) stalls the *producer*, and nothing in the system models
the regime where arrivals outpace joining -- exactly where an adaptive
scheme has to prove itself.  :class:`StreamingPipeline` decouples the two
ends with a bounded queue of micro-batches:

* the **producer** runs the :class:`~repro.streaming.source.StreamSource`
  (on its own thread in ``mode="thread"``), pushing each batch into the
  queue as it becomes available -- on the wall-clock schedule declared by a
  :class:`~repro.streaming.source.RateLimitedSource`, or as fast as the
  queue accepts otherwise;
* the **consumer** is the engine itself, popping batches off the queue and
  processing them exactly as the synchronous loop would;
* a pluggable :class:`BackpressurePolicy` decides what happens when the
  queue is full:

  - :class:`BlockPolicy` (``"block"``, the default) -- lossless: the
    producer stalls until a slot frees.  The consumed batch sequence is
    identical to the source, so a ``block`` run is *bit-identical* to the
    synchronous engine -- outputs, loads, evictions, migration plans --
    and the stall time is the price, surfaced as
    ``producer_stall_seconds``.
  - :class:`ShedPolicy` (``"shed"``) -- lossy: the incoming batch is
    dropped whole and counted (``batches_shed`` / ``tuples_shed``).  The
    queue (and so the engine's backlog) stays bounded no matter how slow
    the consumer is; the output can only shrink relative to a lossless
    run.
  - :class:`CoalescePolicy` (``"coalesce"``) -- lossless but lumpy: the
    queued batches and the arrival merge into one super-batch (the queue
    drops to one occupied slot, never exceeding its bound), so the engine
    catches up in fewer, larger steps.  Per-batch
    overheads -- dispatch, eviction sweeps, repartitioning checks -- are
    paid once per super-batch, which is how a consumer whose cost is
    dominated by per-batch overhead actually catches up.

Two execution modes share all of that policy logic:

* ``mode="simulated"`` replaces wall time with a **simulated clock**: batch
  arrival times come from the source's declared schedule and the consumer's
  per-batch service time from an explicit ``service_model``, and the whole
  queue evolution is computed as a deterministic single-threaded
  discrete-event simulation (ties broken consumer-first).  Every queue
  depth, stall second and shed decision is exactly reproducible, which is
  what the tier-1 tests and the backpressure benchmark assert against.
* ``mode="thread"`` (the default) runs the producer on a real
  ``threading.Thread`` against a condition-variable bounded queue and
  measures stalls and idle time with a real (injectable) clock.  Behaviour
  under ``block`` is still bit-identical to the synchronous engine --
  losslessness does not depend on timing -- while ``shed``/``coalesce``
  decisions naturally depend on real machine speed.

Shed and coalesced streams skip batch indices, so the pipeline runs the
engine with ``allow_gaps=True`` for those policies; ``block`` keeps the
strict contiguous-index validation.
"""

from __future__ import annotations

import abc
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.obs.clock import perf_counter
from repro.streaming.engine import StreamingJoinEngine
from repro.streaming.metrics import StreamRunResult
from repro.streaming.source import MicroBatch, StreamSource

__all__ = [
    "BACKPRESSURE_MODES",
    "BackpressurePolicy",
    "BlockPolicy",
    "ShedPolicy",
    "CoalescePolicy",
    "make_backpressure",
    "merge_batches",
    "StreamingPipeline",
]

#: Backpressure policy names accepted by :func:`make_backpressure`.
BACKPRESSURE_MODES = ("block", "shed", "coalesce")


def merge_batches(batches: "list[MicroBatch]") -> MicroBatch:
    """Merge consecutive micro-batches into one super-batch.

    The merged batch carries the *last* constituent's index (so a stream of
    merged batches keeps strictly increasing indices) and the concatenation
    of both sides' keys in arrival order.  Key dtypes are preserved --
    merging int64 batches yields an int64 super-batch.
    """
    if not batches:
        raise ValueError("cannot merge zero batches")
    if len(batches) == 1:
        return batches[0]
    return MicroBatch(
        index=batches[-1].index,
        keys1=np.concatenate([batch.keys1 for batch in batches]),
        keys2=np.concatenate([batch.keys2 for batch in batches]),
    )


class BackpressurePolicy(abc.ABC):
    """What the producer does when the bounded queue has no free slot.

    Policies are stateless: :meth:`on_full` may mutate the queue to make
    room (coalesce) or refuse the incoming batch (shed), and the
    ``blocks_producer`` flag selects the lossless wait-for-a-slot behaviour
    instead.  The same policy instance may drive several pipelines.
    """

    #: Reporting name recorded on the run result.
    name: str = "backpressure"

    #: Whether every produced tuple reaches the engine.
    lossless: bool = True

    #: True when a full queue stalls the producer until a slot frees
    #: (``on_full`` is never consulted).
    blocks_producer: bool = False

    #: True when the consumed stream may skip batch indices; the pipeline
    #: then runs the engine with ``allow_gaps=True``.
    introduces_gaps: bool = False

    @abc.abstractmethod
    def on_full(self, queue: "deque[MicroBatch]", batch: MicroBatch) -> bool:
        """Handle ``batch`` arriving at a full queue; report its fate.

        Called with the queue holding exactly its bound.  The policy either
        absorbs the batch -- mutating ``queue`` in place while keeping it
        within that bound (coalesce merges it into the queued batches) --
        and returns ``True``, or returns ``False`` to drop it (the pipeline
        records the shed).  The caller never appends after a ``True``: the
        queue must already reflect the arrival.
        """


class BlockPolicy(BackpressurePolicy):
    """Lossless backpressure: the producer waits for a free slot."""

    name = "block"
    blocks_producer = True

    def on_full(self, queue, batch):
        """Never reached: a blocking policy's producer waits instead."""
        raise RuntimeError(
            "BlockPolicy blocks the producer on a full queue; on_full is "
            "never consulted"
        )


class ShedPolicy(BackpressurePolicy):
    """Lossy backpressure: drop the incoming batch whole when full.

    Dropping whole batches (rather than sampling tuples) keeps every
    delivered batch internally intact, so the engine's per-batch semantics
    -- liveness, drift statistics, incremental counting -- are unaffected;
    only coverage of the stream shrinks.  Every shed is recorded.
    """

    name = "shed"
    lossless = False
    introduces_gaps = True

    def on_full(self, queue, batch):
        """Refuse the incoming batch; the queue is left untouched."""
        return False


class CoalescePolicy(BackpressurePolicy):
    """Lossless backpressure: merge the full queue into one super-batch.

    The queued batches and the incoming batch collapse into a single batch,
    so the queue drops to one occupied slot and never exceeds its bound --
    even a bound of one.  No tuple is lost: the engine just sees fewer,
    larger steps, paying per-batch overheads (dispatch, eviction sweeps,
    repartitioning decisions) once per super-batch.  Note that windowed
    semantics are defined over *processed* batches, so under a bounded
    window coalescing legitimately changes which pairs coexist; under an
    unbounded window the total output is exactly that of the lossless
    per-batch run.
    """

    name = "coalesce"
    introduces_gaps = True

    def on_full(self, queue, batch):
        """Collapse the queue plus the arrival into one super-batch."""
        merged = merge_batches(list(queue) + [batch])
        queue.clear()
        queue.append(merged)
        return True


def make_backpressure(
    spec: "BackpressurePolicy | str",
) -> BackpressurePolicy:
    """Build a backpressure policy from its name (or pass one through).

    Accepted names are ``"block"``, ``"shed"`` and ``"coalesce"``; unknown
    names raise ``ValueError`` listing the accepted forms.
    """
    if isinstance(spec, BackpressurePolicy):
        return spec
    policies = {
        BlockPolicy.name: BlockPolicy,
        ShedPolicy.name: ShedPolicy,
        CoalescePolicy.name: CoalescePolicy,
    }
    try:
        return policies[spec]()
    except KeyError:
        raise ValueError(
            f"unknown backpressure policy {spec!r} "
            f"(expected one of {BACKPRESSURE_MODES})"
        ) from None


@dataclass
class _PopRecord:
    """One consumed batch plus the queue events attributed to it.

    ``batches_shed`` / ``tuples_shed`` / ``stall_seconds`` accrue between
    the previous pop and this one; ``idle_seconds`` is how long the
    consumer waited on the empty queue before this batch; ``queue_depth``
    counts the queued batches at the moment of the pop, including this one.
    """

    batch: MicroBatch
    queue_depth: int
    batches_shed: int
    tuples_shed: int
    stall_seconds: float
    idle_seconds: float


def _simulate(
    batches: "Iterator[MicroBatch]",
    arrival_time: "Callable[[int], float] | None",
    service_time: "Callable[[MicroBatch], float]",
    policy: BackpressurePolicy,
    maxsize: "int | None",
) -> "list[_PopRecord]":
    """Deterministic discrete-event simulation of the bounded queue.

    Batch ``i`` arrives at ``arrival_time(i)`` (immediately, pushed only by
    producer stalls, when ``None``); the consumer takes ``service_time(b)``
    simulated seconds per popped batch.  When an arrival and a pop fall on
    the same instant the pop happens first (consumer-first tie-break), so a
    consumer that exactly keeps up never sees the queue grow.  Returns the
    consumed batches in order with their queue metrics; the engine run
    afterwards is fed exactly this sequence.
    """
    queue: "deque[MicroBatch]" = deque()
    pops: "list[_PopRecord]" = []
    t_producer = 0.0  # when the producer finished its latest enqueue
    t_consumer = 0.0  # when the consumer frees up
    pending_shed_batches = 0
    pending_shed_tuples = 0
    pending_stall = 0.0
    pending_idle = 0.0

    def pop() -> None:
        nonlocal t_consumer
        nonlocal pending_shed_batches, pending_shed_tuples
        nonlocal pending_stall, pending_idle
        batch = queue.popleft()
        pops.append(
            _PopRecord(
                batch=batch,
                queue_depth=len(queue) + 1,
                batches_shed=pending_shed_batches,
                tuples_shed=pending_shed_tuples,
                stall_seconds=pending_stall,
                idle_seconds=pending_idle,
            )
        )
        pending_shed_batches = 0
        pending_shed_tuples = 0
        pending_stall = 0.0
        pending_idle = 0.0
        t_consumer += service_time(batch)

    for position, batch in enumerate(batches):
        scheduled = arrival_time(position) if arrival_time is not None else 0.0
        now = max(t_producer, scheduled)
        # Consumer-first tie-break: every pop the consumer can start at or
        # before this arrival happens first.
        while queue and t_consumer <= now:
            pop()
        if not queue and t_consumer < now:
            # The consumer drained the queue and waited for this arrival.
            pending_idle += now - t_consumer
            t_consumer = now
        if maxsize is not None and len(queue) >= maxsize:
            if policy.blocks_producer:
                while len(queue) >= maxsize:
                    # The next slot frees the moment the consumer pops,
                    # which is when it finishes its current batch.
                    slot_freed_at = t_consumer
                    pop()
                    pending_stall += slot_freed_at - now
                    now = slot_freed_at
                queue.append(batch)
            elif not policy.on_full(queue, batch):
                pending_shed_batches += 1
                pending_shed_tuples += batch.num_tuples
            # else: absorbed in place (coalesced), still within the bound.
        else:
            queue.append(batch)
        t_producer = now
    while queue:
        pop()
    return pops


class _BoundedBuffer:
    """Thread-safe bounded micro-batch queue applying a backpressure policy.

    The single producer calls :meth:`put` (blocking, shedding or coalescing
    per the policy) and :meth:`finish` when the stream ends; the single
    consumer calls :meth:`pop`, which waits for an item and returns it with
    its queue metrics, or ``None`` once the stream is drained.
    :meth:`cancel` unblocks both ends (consumer died mid-run).
    """

    def __init__(
        self,
        maxsize: "int | None",
        policy: BackpressurePolicy,
        clock: "Callable[[], float]",
    ) -> None:
        self._maxsize = maxsize
        self._policy = policy
        self._clock = clock
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._items: "deque[MicroBatch]" = deque()
        self._done = False
        self._cancelled = False
        self._pending_shed_batches = 0
        self._pending_shed_tuples = 0
        self._pending_stall = 0.0

    @property
    def cancelled(self) -> bool:
        """Whether the consumer aborted the run."""
        with self._lock:
            return self._cancelled

    def put(self, batch: MicroBatch) -> None:
        """Producer side: enqueue a batch, applying the policy when full."""
        with self._lock:
            if (
                self._maxsize is not None
                and len(self._items) >= self._maxsize
                and not self._cancelled
            ):
                if self._policy.blocks_producer:
                    stalled_from = self._clock()
                    while (
                        len(self._items) >= self._maxsize
                        and not self._cancelled
                    ):
                        self._not_full.wait(timeout=0.1)
                    self._pending_stall += self._clock() - stalled_from
                else:
                    if self._policy.on_full(self._items, batch):
                        # Absorbed in place (coalesced), within the bound.
                        self._not_empty.notify()
                    else:
                        self._pending_shed_batches += 1
                        self._pending_shed_tuples += batch.num_tuples
                    return
            if self._cancelled:
                return
            self._items.append(batch)
            self._not_empty.notify()

    def finish(self) -> None:
        """Producer side: signal end of stream."""
        with self._lock:
            self._done = True
            self._not_empty.notify_all()

    def cancel(self) -> None:
        """Consumer side: abort -- unblock the producer and drop new puts."""
        with self._lock:
            self._cancelled = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    def pop(self) -> "_PopRecord | None":
        """Consumer side: wait for the next batch; ``None`` at end of stream."""
        with self._lock:
            waiting_from = self._clock()
            while not self._items and not self._done and not self._cancelled:
                self._not_empty.wait(timeout=0.1)
            idle = self._clock() - waiting_from
            if not self._items:
                return None
            batch = self._items.popleft()
            record = _PopRecord(
                batch=batch,
                queue_depth=len(self._items) + 1,
                batches_shed=self._pending_shed_batches,
                tuples_shed=self._pending_shed_tuples,
                stall_seconds=self._pending_stall,
                idle_seconds=idle,
            )
            self._pending_shed_batches = 0
            self._pending_shed_tuples = 0
            self._pending_stall = 0.0
            self._not_full.notify()
            return record


class StreamingPipeline:
    """Run a stream through a bounded queue into a streaming join engine.

    Parameters
    ----------
    source:
        The stream to consume.  Wrap it in a
        :class:`~repro.streaming.source.RateLimitedSource` to declare when
        each batch arrives; otherwise the producer offers batches as fast
        as the queue accepts them.
    engine:
        A fresh :class:`~repro.streaming.engine.StreamingJoinEngine` (one
        engine consumes one stream).  The pipeline calls ``engine.run`` on
        the consumed batch sequence and annotates the result with the queue
        metrics.
    queue_batches:
        Queue bound, in batches.  ``None`` means an unbounded queue -- the
        lossless buffer-everything baseline whose depth grows with the
        consumer's lag.
    backpressure:
        A :class:`BackpressurePolicy` or its name (``"block"`` -- the
        lossless default, ``"shed"``, ``"coalesce"``).
    mode:
        ``"thread"`` (default) runs the producer on a real thread with real
        clocks; ``"simulated"`` computes the queue evolution on a simulated
        clock -- fully deterministic, which the tests and benchmarks
        require -- and needs ``service_model``.
    service_model:
        Simulated mode's consumer cost: seconds per popped batch, as a
        constant or a ``batch -> seconds`` callable.  Ignored (and
        refused) in threaded mode, where the engine's real processing time
        plays this role -- slow the consumer deliberately with
        :class:`~repro.streaming.backends.SlowConsumerBackend`.
    allow_gaps:
        Forwarded to ``engine.run`` for sources whose own numbering
        legitimately skips values (renumbered or strided replays).  Gaps
        introduced by the queue itself -- shedding or coalescing -- are
        declared automatically; this flag is only for gaps already present
        in the source.
    clock, sleep:
        Threaded mode's time source and delayer (injectable for tests).
    """

    def __init__(
        self,
        source: StreamSource,
        engine: StreamingJoinEngine,
        *,
        queue_batches: "int | None" = 8,
        backpressure: "BackpressurePolicy | str" = "block",
        mode: str = "thread",
        service_model: "Callable[[MicroBatch], float] | float | None" = None,
        allow_gaps: bool = False,
        clock: "Callable[[], float]" = perf_counter,
        sleep: "Callable[[float], None]" = time.sleep,
    ) -> None:
        if mode not in ("thread", "simulated"):
            raise ValueError(
                f"unknown pipeline mode {mode!r} "
                "(expected 'thread' or 'simulated')"
            )
        if queue_batches is not None and queue_batches < 1:
            raise ValueError("queue_batches must be >= 1 (or None: unbounded)")
        if mode == "simulated" and service_model is None:
            raise ValueError(
                "simulated mode needs a service_model (seconds per consumed "
                "batch, constant or callable) to drive the simulated clock"
            )
        if mode == "thread" and service_model is not None:
            raise ValueError(
                "service_model only applies to mode='simulated'; in threaded "
                "mode the engine's real processing time is the service time "
                "(use SlowConsumerBackend to slow the consumer down)"
            )
        self.source = source
        self.engine = engine
        self.queue_batches = queue_batches
        self.policy = make_backpressure(backpressure)
        self.mode = mode
        self._allow_gaps = allow_gaps or self.policy.introduces_gaps
        if service_model is None or callable(service_model):
            self._service_model = service_model
        else:
            seconds = float(service_model)
            self._service_model = lambda batch: seconds
        self._clock = clock
        self._sleep = sleep

    def run(self, verify: bool = True) -> StreamRunResult:
        """Produce, queue and consume the stream; return the annotated result.

        The returned :class:`~repro.streaming.metrics.StreamRunResult` is
        the engine's, with the pipeline's queue metrics filled in: one
        entry of ``queue_depth`` / ``batches_shed`` / ``tuples_shed`` /
        ``producer_stall_seconds`` / ``consumer_idle_seconds`` per consumed
        batch, plus the run-level ``backpressure`` and ``queue_batches``
        labels.  ``verify`` is forwarded to the engine.

        Every queue quantity is stamped with its clock domain:
        ``mode="simulated"`` stalls and idles are simulated seconds,
        threaded ones are real seconds, and ``queue_clock`` on both the
        batch and run records says which -- so a report can never silently
        compare a simulated stall against a wall-clock one.  If the engine
        carries a :class:`~repro.obs.metrics.MetricsRegistry`, the queue
        totals (sheds, stall, idle, peak depth) are folded into it after
        the run, under ``queue.*`` names.
        """
        if self.mode == "simulated":
            records = _simulate(
                iter(self.source.batches()),
                getattr(self.source, "arrival_time", None),
                self._service_model,
                self.policy,
                self.queue_batches,
            )
            result = self.engine.run(
                (record.batch for record in records),
                verify=verify,
                allow_gaps=self._allow_gaps,
            )
        else:
            result, records = self._run_threaded(verify)
        queue_clock = "simulated" if self.mode == "simulated" else "real"
        for metrics, record in zip(result.batches, records):
            metrics.queue_depth = record.queue_depth
            metrics.batches_shed = record.batches_shed
            metrics.tuples_shed = record.tuples_shed
            metrics.producer_stall_seconds = record.stall_seconds
            metrics.consumer_idle_seconds = record.idle_seconds
            metrics.queue_clock = queue_clock
        result.backpressure = self.policy.name
        result.queue_batches = self.queue_batches
        result.queue_clock = queue_clock
        registry = self.engine.metrics
        if registry is not None:
            # The engine pulsed per batch while it ran; the queue's totals
            # are only known post-hoc (pop records are zipped onto the
            # batches above), so they land as run-level counters/gauges.
            registry.counter("queue.batches_shed").inc(
                result.total_batches_shed
            )
            registry.counter("queue.tuples_shed").inc(result.total_tuples_shed)
            registry.counter("queue.producer_stall_seconds").inc(
                result.producer_stall_seconds
            )
            registry.counter("queue.consumer_idle_seconds").inc(
                result.consumer_idle_seconds
            )
            registry.gauge("queue.peak_depth").set(result.peak_queue_depth)
        return result

    def _run_threaded(
        self, verify: bool
    ) -> "tuple[StreamRunResult, list[_PopRecord]]":
        """Real-thread execution: producer thread, engine on this thread."""
        buffer = _BoundedBuffer(self.queue_batches, self.policy, self._clock)
        arrival = getattr(self.source, "arrival_time", None)
        started_at = self._clock()
        producer_error: "list[BaseException]" = []

        def produce() -> None:
            try:
                for position, batch in enumerate(self.source.batches()):
                    if arrival is not None:
                        delay = arrival(position) - (
                            self._clock() - started_at
                        )
                        if delay > 0:
                            self._sleep(delay)
                    if buffer.cancelled:
                        return
                    buffer.put(batch)
            except BaseException as error:  # noqa: BLE001 - re-raised below
                producer_error.append(error)
            finally:
                buffer.finish()

        records: "list[_PopRecord]" = []

        def consumed() -> "Iterator[MicroBatch]":
            while True:
                record = buffer.pop()
                if record is None:
                    return
                records.append(record)
                yield record.batch

        producer = threading.Thread(
            target=produce, name="stream-producer", daemon=True
        )
        producer.start()
        try:
            result = self.engine.run(
                consumed(),
                verify=verify,
                allow_gaps=self._allow_gaps,
            )
        finally:
            buffer.cancel()
            producer.join(timeout=30.0)
        if producer_error:
            raise producer_error[0]
        return result, records
