"""Window policies: bounding the retained state of a streaming join.

An unbounded streaming join retains every tuple forever -- new arrivals on
one side must join the other side's full history, so per-machine state (and
with it the per-batch counting cost) grows linearly with the stream.  A
:class:`WindowPolicy` bounds that growth by declaring, after every processed
micro-batch, which retained tuples are still *live*.  Expired tuples are
evicted from every machine's region state, the freed memory is charged into
:class:`~repro.streaming.metrics.BatchMetrics` (tuples evicted, bytes freed,
resident state), and a later repartitioning migrates only the surviving
tuples (:func:`~repro.streaming.migration.plan_migration` with ``live1`` /
``live2``).

Eviction also reports a **safe trim point** (:meth:`WindowPolicy.trim_point`):
the arrival-index prefix that no liveness bookkeeping can ever reference
again.  The engine compacts everything below it -- the flat per-side key
history, the batch-start list and every stored arrival index are trimmed and
rebased -- so a windowed run's total footprint (history + live sets + state)
is O(window), not O(stream).

Three policies are provided:

* :class:`UnboundedWindow` -- the pre-window behaviour: nothing ever
  expires.  The engine skips all liveness bookkeeping on this fast path.
* :class:`SlidingWindow` -- a hard horizon, expressed either in **batches**
  (a tuple is live for the ``batches`` most recent micro-batches, the
  classic jumping/sliding window) or in **tuples** (only the most recent
  ``tuples`` arrivals per side are live, a count-based window).  Liveness is
  a pure cutoff on the global arrival index, so it is identical on every
  machine -- a replicated tuple expires everywhere at once and can never be
  resurrected by a migration.
* :class:`ExponentialDecayWindow` -- a probabilistic horizon: after each
  batch every live tuple survives independently with probability
  ``survival`` (one uniform per live tuple, drawn from the engine's seeded
  generator; the eviction set is computed once per side and applied to all
  machines, so runs are reproducible and replicas stay consistent).  Tuple
  lifetimes are
  geometric with mean ``1 / (1 - survival)`` batches: recent state dominates
  without a sharp edge, mirroring the decayed reservoir that feeds the
  histogram (:class:`~repro.streaming.incremental.DecayedReservoir`).

Windowed semantics: an output pair is produced exactly when the later tuple
arrives while the earlier one is still live.  Because eviction runs *after*
a batch is counted, a window of one batch still joins each batch against
itself.  Policies are stateless -- liveness is a pure function of the
arrival bookkeeping and the generator -- so one policy instance may be
shared by several engines (``compare_streaming_schemes`` does).
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "WindowPolicy",
    "UnboundedWindow",
    "SlidingWindow",
    "ExponentialDecayWindow",
    "WINDOW_SPEC_FORMS",
    "make_window",
]

#: Every spec form :func:`make_window` accepts, aliases included.  The
#: factory's own error message derives from this tuple, and spec
#: validators (the query analyzer's QRY005) introspect it to suggest
#: choices without re-stating the grammar.
WINDOW_SPEC_FORMS = (
    "unbounded",
    "none",
    "batches:<n>",
    "sliding:<n>",
    "tuples:<n>",
    "count:<n>",
    "decay:<p>",
)


class WindowPolicy(abc.ABC):
    """Decides, after each batch, which retained tuples remain live.

    The engine calls :meth:`evictions` once per join side per processed
    batch and removes the returned tuples from every machine's region state
    and from its own liveness bookkeeping.  Implementations must be
    stateless: liveness may depend only on the method's arguments, so the
    same policy instance can drive several engines at once.
    """

    #: Reporting name recorded on the run result (e.g. ``"batches:8"``).
    name: str = "window"

    #: True for the no-op policy; lets the engine skip liveness bookkeeping.
    is_unbounded: bool = False

    @abc.abstractmethod
    def evictions(
        self,
        live: np.ndarray,
        batch_starts: list[int],
        total_arrived: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return the arrival indices that expire after the just-processed batch.

        Parameters
        ----------
        live:
            Sorted arrival indices of one side's currently live tuples
            (including this batch's arrivals).
        batch_starts:
            Arrival-index starts of recently processed batches, oldest
            first; ``batch_starts[-1]`` belongs to the batch just processed.
            The engine appends one entry per *processed* batch (liveness is
            a function of the engine's own batch count, never of a source's
            ``MicroBatch.index`` numbering), and compaction may drop entries
            below the trim point -- only the suffix a policy can still
            reference is guaranteed to be present.
        total_arrived:
            The side's arrivals retained plus this batch (the history
            length, in the same coordinates as ``live``).
        rng:
            The engine's seeded generator, for randomised policies.

        All index arguments share one coordinate system: the engine rebases
        ``live``, ``batch_starts`` and ``total_arrived`` together when it
        compacts trimmed history, so cutoff arithmetic is unaffected.  The
        result must be a sorted subset of ``live`` (``live`` itself is
        sorted ascending, so any mask or prefix of it qualifies).
        """

    def trim_point(self, live: np.ndarray, total_arrived: int) -> int:
        """The arrival-index prefix that is safe to compact away.

        Everything strictly below the returned index can never be referenced
        again: ``live`` is sorted and eviction cutoffs only move forward, so
        ``live[0]`` (or the full history length once nothing is live) is a
        safe bound for every provided policy.  Override only for a policy
        whose future cutoffs can move *backwards* -- such a policy must
        return the smallest index it may still reference.
        """
        return int(live[0]) if len(live) else int(total_arrived)


class UnboundedWindow(WindowPolicy):
    """Retain the full history: nothing ever expires (the legacy behaviour)."""

    name = "unbounded"
    is_unbounded = True

    def evictions(self, live, batch_starts, total_arrived, rng):
        """Evict nothing, ever."""
        return np.empty(0, dtype=np.int64)


class SlidingWindow(WindowPolicy):
    """A hard horizon in batches or in tuples (exactly one must be given).

    Parameters
    ----------
    batches:
        A tuple is live for this many micro-batches, counting its arrival
        batch: ``batches=1`` keeps only the current batch's arrivals,
        ``batches=8`` keeps the last eight batches' worth of state.
    tuples:
        Only the most recent ``tuples`` arrivals of each side are live --
        a count-based bound that holds regardless of batch sizes.

    Both forms are global cutoffs on the arrival index, so every machine
    (and every replica of a tuple) agrees on liveness, and a repartitioning
    can never resurrect an expired tuple.
    """

    def __init__(self, batches: int | None = None, tuples: int | None = None) -> None:
        if (batches is None) == (tuples is None):
            raise ValueError("specify exactly one of batches= or tuples=")
        if batches is not None and batches <= 0:
            raise ValueError("batches must be positive")
        if tuples is not None and tuples <= 0:
            raise ValueError("tuples must be positive")
        self.batches = batches
        self.tuples = tuples
        self.name = f"batches:{batches}" if batches is not None else f"tuples:{tuples}"

    def evictions(self, live, batch_starts, total_arrived, rng):
        """Evict everything older than the batch- or tuple-count cutoff.

        The batch cutoff is positional from the *end* of ``batch_starts``
        (the engine's processed-batch count), so it is independent of any
        ``MicroBatch.index`` numbering and survives the engine trimming the
        list's dead prefix during history compaction.
        """
        if self.batches is not None:
            if len(batch_starts) < self.batches:
                return np.empty(0, dtype=np.int64)
            cutoff = batch_starts[-self.batches]
        else:
            cutoff = total_arrived - self.tuples
        if cutoff <= 0:
            return np.empty(0, dtype=np.int64)
        return live[:np.searchsorted(live, cutoff)]


class ExponentialDecayWindow(WindowPolicy):
    """Probabilistic decay: each tuple survives a batch with fixed probability.

    Parameters
    ----------
    survival:
        Per-batch survival probability in ``(0, 1)``.  Lifetimes are
        geometric with mean ``1 / (1 - survival)`` batches, so
        ``survival=0.9`` retains a soft horizon of roughly ten batches.

    Survival is drawn once per live tuple per side per batch (one vectorised
    ``rng.random(len(live))`` call on the engine's seeded generator), and
    the resulting eviction set is applied to every machine -- so runs are
    reproducible and all replicas of a tuple live or die together.  The
    decay applies from a tuple's arrival batch onwards: it is counted
    against the batch it arrives in first, then decays.
    """

    def __init__(self, survival: float) -> None:
        if not 0.0 < survival < 1.0:
            raise ValueError("survival must be in (0, 1)")
        self.survival = survival
        self.name = f"decay:{survival:g}"

    def evictions(self, live, batch_starts, total_arrived, rng):
        """Evict each live tuple independently with probability 1 - survival."""
        if len(live) == 0:
            return live
        return live[rng.random(len(live)) >= self.survival]


def make_window(spec: "WindowPolicy | str | None") -> WindowPolicy:
    """Build a window policy from a spec string (or pass a policy through).

    Accepted specs::

        make_window(None)             # unbounded (the default)
        make_window("unbounded")      # same, by name ("none" also works)
        make_window("batches:8")      # sliding window of 8 micro-batches
        make_window("sliding:8")      # alias for batches:8
        make_window("tuples:5000")    # most recent 5000 arrivals per side
        make_window("count:5000")     # alias for tuples:5000
        make_window("decay:0.9")      # exponential decay, survival 0.9

    Unknown names raise ``ValueError`` listing the accepted forms.
    """
    if spec is None:
        return UnboundedWindow()
    if isinstance(spec, WindowPolicy):
        return spec
    name, _, argument = spec.partition(":")
    name = name.strip().lower()
    bad_spec = ValueError(
        f"unknown window spec {spec!r} "
        f"(expected one of {', '.join(repr(form) for form in WINDOW_SPEC_FORMS)})"
    )
    if name in ("unbounded", "none") and not argument:
        return UnboundedWindow()
    if name in ("batches", "sliding", "tuples", "count", "decay"):
        # Only the numeric parse is guarded: a malformed argument becomes
        # the spec error, a policy constructor's own ValueError (e.g. a
        # non-positive size) passes through unchanged.
        try:
            value = float(argument) if name == "decay" else int(argument)
        except ValueError:
            raise bad_spec from None
        if name == "decay":
            return ExponentialDecayWindow(value)
        if name in ("batches", "sliding"):
            return SlidingWindow(batches=value)
        return SlidingWindow(tuples=value)
    raise bad_spec
