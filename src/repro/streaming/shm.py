"""Zero-copy array transport over POSIX shared memory for sticky workers.

The :class:`~repro.streaming.backends.MultiprocessBackend` re-pickles every
region's full key arrays through the ``ProcessPoolExecutor`` channel on every
batch -- for a persistent streaming join that serialization tax dominates the
join itself (``BatchMetrics.bytes_pickled`` meters it exactly).  The sticky
worker backend keeps each worker's join state *resident* and ships only the
per-batch delta, and this module is the transport it ships it on:

* :class:`ShmArena` is the engine-side writer.  It owns one resizable
  ``multiprocessing.shared_memory`` segment, reused across messages: each
  :meth:`ShmArena.write` call copies a list of numpy arrays into the segment
  at aligned offsets and returns a tiny :class:`ShmMessage` descriptor
  (segment name, dtypes, shapes, offsets).  Only that descriptor crosses the
  pickle channel -- the array payload never does.
* :class:`ShmReader` is the worker-side counterpart.  It attaches to the
  named segment once (attachments are cached until the arena grows and the
  name changes) and materialises each message's arrays as **zero-copy numpy
  views** into the mapped buffer.  A worker that retains data past the
  message -- inserting arrivals into its resident state -- copies implicitly
  through the state's own merge; views themselves never outlive the handler.

Lifecycle rules keep ``/dev/shm`` clean (the tests assert no leaked
segments):

* the arena *owns* its segment: growing unlinks the old segment and
  :meth:`ShmArena.close` unlinks the last one.  An unlinked segment stays
  mapped in any worker still attached (POSIX semantics), so growth never
  races a reader -- the reader simply closes its stale mapping when the next
  message names the new segment;
* readers only ever ``close()`` (unmap), never ``unlink`` -- ownership is
  the writer's.  Attaching deliberately bypasses the resource tracker
  (``track=False`` on Python 3.13+, an explicit unregister before that), so
  a worker exiting does not tear down a segment the engine still owns.

Segment names are fixed-width (``rshm-`` + hex token + sequence number), so
the pickled size of a :class:`ShmMessage` is independent of pid or sequence
-- which keeps serialization-profiling goldens deterministic.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "SEGMENT_PREFIX",
    "ArraySpec",
    "ShmMessage",
    "ShmArena",
    "ShmReader",
    "attach_segment",
]

#: Every segment this module creates is named ``rshm-...`` -- the test
#: suite's leak fixture recognises (and fails on) leftovers by this prefix.
SEGMENT_PREFIX = "rshm"

#: Array payloads are laid out at 16-byte-aligned offsets (numpy's widest
#: streaming dtypes are 8 bytes; 16 keeps any future complex dtype aligned).
_ALIGNMENT = 16


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting ownership of it.

    ``multiprocessing.shared_memory`` registers *attachments* with the
    resource tracker on Python < 3.13, so a worker process would fight the
    engine over a segment only the engine owns (spurious tracker
    unregisters and shutdown unlinks).  Python 3.13 added ``track=False``
    for exactly this; on older versions registration is suppressed for the
    duration of the attach instead, so the worker never talks to the
    tracker at all -- the engine's create/unlink pair stays the segment's
    only tracker traffic.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


@dataclass(frozen=True)
class ArraySpec:
    """Where one array lives inside a segment: dtype, shape and byte offset."""

    dtype: str
    shape: "tuple[int, ...]"
    offset: int


@dataclass(frozen=True)
class ShmMessage:
    """A batch of arrays described by reference into a shared segment.

    This is the only thing the sticky backend's control channel pickles per
    payload: the segment name plus one :class:`ArraySpec` per array.
    ``payload_bytes`` is the total array payload resident in the segment --
    the quantity reported as ``bytes_shm`` / the ``shm KB`` column.
    """

    segment: str
    specs: "tuple[ArraySpec, ...]"
    payload_bytes: int


def _aligned(nbytes: int) -> int:
    """Round a byte count up to the arena alignment."""
    return (nbytes + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


class ShmArena:
    """Engine-side writer owning one resizable shared-memory segment.

    One arena serves one sticky backend: every outgoing payload --
    per-batch deltas, eviction sets, migrated state -- is written through
    :meth:`write`, which reuses the current segment when it is large enough
    and reallocates (unlinking the old segment) when it is not.  Capacity
    only grows, so a steady-state stream settles into zero allocations per
    batch.
    """

    def __init__(self) -> None:
        # Fixed-width token + fixed-width sequence keep the name length
        # (and so every ShmMessage's pickled size) constant.
        self._token = secrets.token_hex(6)
        self._sequence = 0
        self._segment: "shared_memory.SharedMemory | None" = None
        self._closed = False

    @property
    def segment_name(self) -> "str | None":
        """Name of the current segment (``None`` before the first write)."""
        return None if self._segment is None else self._segment.name

    @property
    def capacity(self) -> int:
        """Bytes the current segment can hold."""
        return 0 if self._segment is None else self._segment.size

    def _ensure_capacity(self, nbytes: int) -> shared_memory.SharedMemory:
        """Return a segment of at least ``nbytes``, reallocating if needed."""
        if self._segment is not None and self._segment.size >= nbytes:
            return self._segment
        if self._segment is not None:
            self._segment.close()
            self._segment.unlink()
        # Doubling growth amortises reallocation; floor keeps tiny control
        # messages from thrashing the segment on every size change.
        size = max(nbytes, 2 * self.capacity, 4096)
        name = f"{SEGMENT_PREFIX}-{self._token}-{self._sequence:04d}"
        self._sequence += 1
        self._segment = shared_memory.SharedMemory(
            name=name, create=True, size=size
        )
        return self._segment

    def write(self, arrays: "list[np.ndarray]") -> ShmMessage:
        """Copy ``arrays`` into the segment; return their descriptor.

        Arrays are laid out back to back at aligned offsets.  The returned
        :class:`ShmMessage` is safe to pickle (it carries no buffers) and
        stays valid until the *next* :meth:`write` -- the arena reuses its
        segment, so a reader must consume a message before the writer moves
        on, which the sticky backend's synchronous command protocol
        guarantees.
        """
        if self._closed:
            raise RuntimeError("ShmArena has been closed")
        arrays = [np.ascontiguousarray(array) for array in arrays]
        offsets: "list[int]" = []
        cursor = 0
        for array in arrays:
            offsets.append(cursor)
            cursor += _aligned(array.nbytes)
        segment = self._ensure_capacity(cursor)
        specs = []
        payload = 0
        for array, offset in zip(arrays, offsets):
            if array.nbytes:
                view = np.ndarray(
                    array.shape,
                    dtype=array.dtype,
                    buffer=segment.buf,
                    offset=offset,
                )
                view[:] = array
                del view
            specs.append(
                ArraySpec(
                    dtype=array.dtype.str, shape=array.shape, offset=offset
                )
            )
            payload += array.nbytes
        return ShmMessage(
            segment=segment.name, specs=tuple(specs), payload_bytes=payload
        )

    def close(self) -> None:
        """Unlink the segment and release the mapping (idempotent)."""
        if self._segment is not None:
            self._segment.close()
            self._segment.unlink()
            self._segment = None
        self._closed = True


class ShmReader:
    """Worker-side attachment cache producing zero-copy views of messages.

    The reader attaches to a message's segment by name on first sight and
    keeps the mapping until a message names a different segment (the writer
    grew) -- then the stale mapping is closed and the new one attached.
    Views returned by :meth:`arrays` alias the mapped buffer directly: a
    caller that retains data past the message must copy (inserting into a
    :class:`~repro.streaming.incremental.SortedRegionState` copies through
    its merge), and all views must be dropped before :meth:`close`.
    """

    def __init__(self) -> None:
        self._segment: "shared_memory.SharedMemory | None" = None
        self._name: "str | None" = None

    def arrays(self, message: ShmMessage) -> "list[np.ndarray]":
        """Materialise a message's arrays as views into the shared segment."""
        if message.segment != self._name:
            self.close()
            self._segment = attach_segment(message.segment)
            self._name = message.segment
        assert self._segment is not None
        return [
            np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=self._segment.buf,
                offset=spec.offset,
            )
            for spec in message.specs
        ]

    def close(self) -> None:
        """Unmap the current attachment (never unlink -- the writer owns it)."""
        if self._segment is not None:
            self._segment.close()
            self._segment = None
            self._name = None
