"""Drift detection: when does the live load stop matching the histogram?

The equi-weight histogram predicts, at build time, the maximum-to-mean
region-weight ratio the cluster should exhibit (a scale-free imbalance).  As
long as the stream's key distribution matches the sample the histogram was
built from, the measured per-batch load imbalance hovers around that
prediction; when skew drifts, the measured imbalance climbs while the
prediction stays flat.  :class:`DriftDetector` smooths the measured ratio
with an EWMA (single noisy batches must not trigger a repartitioning, whose
migration cost is real) and signals drift when the smoothed value exceeds the
prediction by a configurable factor, subject to a warm-up and a cool-down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DriftObservation", "DriftDetector"]


@dataclass(frozen=True)
class DriftObservation:
    """One batch's drift bookkeeping (kept for reports and tests)."""

    batch_index: int
    live_imbalance: float
    smoothed_imbalance: float
    predicted_imbalance: float
    triggered: bool


@dataclass
class DriftDetector:
    """EWMA comparison of live versus predicted load imbalance.

    Parameters
    ----------
    threshold:
        Trigger factor: drift is signalled when the smoothed live imbalance
        exceeds ``threshold * predicted_imbalance``.
    ewma_alpha:
        Weight of the newest batch in the smoothed imbalance (1.0 disables
        smoothing).
    warmup_batches:
        Batches observed before the detector may trigger at all (the first
        partitioning is built from very little sample mass).
    cooldown_batches:
        Minimum batches between two triggers, giving a fresh partitioning
        time to show its effect before it can be declared stale.
    """

    threshold: float = 1.5
    ewma_alpha: float = 0.5
    warmup_batches: int = 2
    cooldown_batches: int = 3
    history: list[DriftObservation] = field(default_factory=list)
    _smoothed: float | None = field(default=None, repr=False)
    _last_trigger: int | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        """Validate the threshold and smoothing parameters."""
        if self.threshold <= 1.0:
            raise ValueError("threshold must exceed 1.0")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")

    @property
    def smoothed_imbalance(self) -> float:
        """Current EWMA of the live imbalance (1.0 before any update)."""
        return self._smoothed if self._smoothed is not None else 1.0

    def update(
        self,
        batch_index: int,
        live_imbalance: float,
        predicted_imbalance: float,
    ) -> bool:
        """Fold in one batch's measured imbalance; return True on drift."""
        if self._smoothed is None:
            self._smoothed = live_imbalance
        else:
            self._smoothed = (
                self.ewma_alpha * live_imbalance
                + (1.0 - self.ewma_alpha) * self._smoothed
            )

        in_warmup = batch_index < self.warmup_batches
        in_cooldown = (
            self._last_trigger is not None
            and batch_index - self._last_trigger < self.cooldown_batches
        )
        smoothed_at_decision = self._smoothed
        triggered = (
            not in_warmup
            and not in_cooldown
            and smoothed_at_decision > self.threshold * max(predicted_imbalance, 1.0)
        )
        if triggered:
            self._last_trigger = batch_index
            # The repartitioning resets the live load profile; restart the
            # EWMA so stale pre-rebuild imbalance cannot re-trigger.
            self._smoothed = None
        self.history.append(
            DriftObservation(
                batch_index=batch_index,
                live_imbalance=live_imbalance,
                smoothed_imbalance=smoothed_at_decision,
                predicted_imbalance=predicted_imbalance,
                triggered=triggered,
            )
        )
        return triggered
