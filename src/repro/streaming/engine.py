"""The micro-batch streaming join engine.

:class:`StreamingJoinEngine` consumes a :class:`~repro.streaming.source.StreamSource`
and runs a stateful partitioned join over it:

* every machine retains the tuples routed to its region, each side kept
  sorted by join key (:class:`~repro.streaming.incremental.SortedRegionState`);
  how long a tuple stays retained is the
  :class:`~repro.streaming.window.WindowPolicy`'s decision -- unbounded
  history (the default), a sliding count-or-batch window, or exponential
  decay.  Evictions run after every batch, are charged into
  :class:`~repro.streaming.metrics.BatchMetrics` (tuples evicted, bytes
  freed, resident state) and bound both the per-machine join state and the
  per-batch cost.  Under any bounded window the engine also *compacts* its
  arrival bookkeeping after each eviction: the window reports a safe trim
  point (everything below ``min(live)`` can never be referenced again), the
  flat ``history1``/``history2`` key arrays and the batch-start lists are
  trimmed below it, and every stored arrival index -- the live sets and
  each :class:`~repro.streaming.incremental.SortedRegionState`'s index
  column -- is rebased by the trimmed amount.  All routing, counting and
  migration arithmetic runs in these rebased *engine coordinates*, so the
  whole footprint is O(window) however long the stream runs
  (``BatchMetrics.resident_bytes`` charges the three byte-weighted terms:
  join state, key history and live sets; the trimmed batch-start lists are
  O(window) entries too but too small to meter); compaction is pure bookkeeping and never changes
  outputs, loads, evictions or migration plans (``compact_history=False``
  keeps the uncompacted bookkeeping for equivalence testing);
* each micro-batch is routed by the current partitioning and its exact
  incremental output is counted by a pluggable
  :class:`~repro.streaming.backends.ExecutionBackend` (in-process simulation
  or a persistent multiprocess worker pool).  Under the default
  ``counting="incremental"`` the batch's output delta is computed directly
  -- the new arrivals are binary-searched against the maintained sorted
  state, ``O(new log state)`` per machine -- instead of re-counting the full
  region and differencing (``counting="recount"``, the legacy baseline,
  ``O(state log state)`` per batch).  Both produce identical deltas; the
  cost-model load is charged per machine either way (arrivals at the input
  cost, produced output at the output cost);
* after each batch the :class:`~repro.streaming.policies.RepartitioningPolicy`
  may swap in a new partitioning, in which case the retained *live* state is
  migrated (:mod:`repro.streaming.migration`) and the moved tuples are
  charged into the same cost model -- rebalancing is never free.  Under the
  default ``repartition_mode="partial"`` the engine diffs the old and new
  region-to-machine mappings and migrates only the regions whose assignment
  changed; ``"full"`` reproduces the naive positional rebuild that re-routes
  the whole (live) history.

The adopted region-to-machine mapping is remembered between rebuilds: later
arrivals routed to new region ``r`` are shipped to the machine that actually
holds ``r``'s state, so partial repartitioning never degrades correctness.

Correctness mirrors the batch simulator: grid-routed partitionings cover
every candidate cell exactly once, so summing each machine's incremental
output over an *unbounded* run reproduces the exact join cardinality of the
full history, which :meth:`StreamingJoinEngine.run` verifies at end of
stream.  Under a window the ground truth changes -- an output pair exists
exactly when the later tuple arrives while the earlier one is still live --
so windowed runs skip the full-history check (``output_correct`` stays
``None``) and ``tests/test_window_properties.py`` pins the windowed
semantics against an independent reference count instead.  All of this is
backend-independent -- every backend counts with the same exact kernel --
which ``tests/test_backends.py`` pins down.
"""

from __future__ import annotations

import copy
from dataclasses import replace
from typing import Iterable

import numpy as np

from repro.core.histogram import EWHConfig
from repro.core.weights import WeightFunction
from repro.joins.conditions import JoinCondition
from repro.joins.local import count_join_output
from repro.obs.clock import perf_counter
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.partitioning.base import Partitioning
from repro.streaming.backends import (
    ExecutionBackend,
    RegionJoinResult,
    SimulatedBackend,
)
from repro.streaming.checkpoint import StreamCheckpoint
from repro.streaming.incremental import IncrementalHistogram, SortedRegionState
from repro.streaming.metrics import BatchMetrics, StreamRunResult
from repro.streaming.migration import (
    MIGRATION_MODES,
    pad_assignments,
    plan_migration,
)
from repro.streaming.policies import (
    DriftAdaptiveEWHPolicy,
    RepartitioningPolicy,
    StaticEWHPolicy,
    StaticOneBucketPolicy,
)
from repro.streaming.source import MicroBatch, StreamSource
from repro.streaming.window import WindowPolicy, make_window

__all__ = ["COUNTING_MODES", "StreamingJoinEngine", "compare_streaming_schemes"]

#: Output-delta counting modes accepted by :class:`StreamingJoinEngine`.
COUNTING_MODES = ("incremental", "recount")


class _RunState:
    """Mutable loop state of one engine run, hoisted off the stack.

    Everything :meth:`StreamingJoinEngine.process_batch` reads or writes
    between batches lives here (the engine object itself holds only
    configuration), so a checkpoint is a copy of this object's fields plus
    the engine's collaborators, and a restore rebuilds exactly this.
    """

    __slots__ = (
        "rng",
        "history1",
        "history2",
        "state1",
        "state2",
        "held1",
        "held2",
        "prev_outputs",
        "partitioning",
        "region_to_machine",
        "live1",
        "live2",
        "starts1",
        "starts2",
        "last_batch_index",
        "position",
        "cumulative",
        "result",
        "pending_resize",
    )


class StreamingJoinEngine:
    """Run a stateful partitioned join over a micro-batched stream.

    Parameters
    ----------
    num_machines:
        Cluster size ``J``.
    condition:
        The monotonic join condition.
    weight_fn:
        Cost model charging arrivals and output per machine.
    policy:
        The repartitioning policy (defaults to drift-adaptive EWH).
    backend:
        The :class:`~repro.streaming.backends.ExecutionBackend` running the
        per-batch, per-region joins.  Defaults to a fresh
        :class:`~repro.streaming.backends.SimulatedBackend`; a backend the
        engine creates itself is closed at end of run, a caller-provided one
        (e.g. a shared multiprocess pool) is left open.
    window:
        The :class:`~repro.streaming.window.WindowPolicy` bounding the
        retained state, or a spec string for
        :func:`~repro.streaming.window.make_window` (``"batches:8"``,
        ``"tuples:5000"``, ``"decay:0.9"``).  ``None`` retains the full
        history (unbounded).
    counting:
        ``"incremental"`` (default) computes each batch's output delta by
        binary-searching the new arrivals against the maintained sorted
        state -- ``O(new log state)`` per machine per batch.  ``"recount"``
        is the legacy baseline: re-count every machine's full region each
        batch and difference against the previous total,
        ``O(state log state)``.  The deltas are identical
        (``benchmarks/test_streaming_window.py`` pins this bit-for-bit);
        recount exists for that equivalence check and as the speedup
        baseline, and only supports the unbounded window (differencing full
        recounts breaks once eviction shrinks a region's count).
    repartition_mode:
        ``"partial"`` (default) migrates only the regions whose
        region-to-machine assignment changed on a rebuild; ``"full"``
        re-routes the whole live history positionally.
    compact_history:
        ``True`` (default) trims the per-side key histories, live sets and
        batch-start lists below the window's safe trim point after every
        eviction and rebases all stored arrival indices, keeping the whole
        footprint O(window) under a bounded window.  ``False`` keeps the
        uncompacted full-run bookkeeping (the pre-compaction engine);
        outputs, loads, evictions and migration plans are bit-identical
        either way, which ``tests/test_window_properties.py`` pins.  The
        flag is irrelevant for unbounded runs: nothing is ever trimmed
        because the end-of-stream verification needs the full history.
    histogram:
        Optional pre-configured :class:`IncrementalHistogram`; built from
        ``sample_capacity`` / ``sample_decay`` / ``ewh_config`` when omitted.
    sample_capacity, sample_decay:
        Per-side reservoir capacity and per-batch decay of the maintained
        sample state.
    ewh_config:
        Histogram configuration used by (re)builds.
    migration_cost_factor:
        Input-cost multiplier for migrated tuples (1.0 charges a migrated
        tuple like any other network arrival).
    rebuild_scan_factor:
        Per-tuple cost of scanning the sample state during a rebuild, as a
        fraction of the join input cost (mirrors the batch operators'
        statistics scan factor).
    seed:
        Seed of the engine's internal generator (routing, sampling and any
        randomised window policy).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` recording the span tree
        ``run → batch → {route, incremental_count, join, evict, compact,
        drift_decide, migrate}``; under the multiprocess backend each
        counting span additionally stitches per-worker child spans keyed by
        the pool pid that ran each task.  Defaults to the shared
        zero-overhead :data:`~repro.obs.trace.NULL_TRACER`.  Tracing is
        observation only: it never touches the engine's random generator or
        arithmetic, so traced runs are behaviourally bit-identical to
        untraced runs.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; the engine
        folds every batch's :class:`~repro.streaming.metrics.BatchMetrics`
        into the registry's counters/gauges/histograms and pulses it once
        per batch (driving any attached
        :class:`~repro.obs.metrics.SnapshotReporter`).
    """

    def __init__(
        self,
        num_machines: int,
        condition: JoinCondition,
        weight_fn: WeightFunction,
        policy: RepartitioningPolicy | None = None,
        backend: ExecutionBackend | None = None,
        window: WindowPolicy | str | None = None,
        counting: str = "incremental",
        repartition_mode: str = "partial",
        compact_history: bool = True,
        histogram: IncrementalHistogram | None = None,
        sample_capacity: int = 2048,
        sample_decay: float = 0.8,
        ewh_config: EWHConfig | None = None,
        migration_cost_factor: float = 1.0,
        rebuild_scan_factor: float = 0.5,
        seed: int = 0,
        tracer: "Tracer | NullTracer | None" = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if num_machines <= 0:
            raise ValueError("num_machines must be positive")
        if migration_cost_factor < 0:
            raise ValueError("migration_cost_factor must be non-negative")
        if repartition_mode not in MIGRATION_MODES:
            raise ValueError(
                f"unknown repartition_mode {repartition_mode!r} "
                f"(expected one of {MIGRATION_MODES})"
            )
        if counting not in COUNTING_MODES:
            raise ValueError(
                f"unknown counting mode {counting!r} "
                f"(expected one of {COUNTING_MODES})"
            )
        self.window = make_window(window)
        if counting == "recount" and not self.window.is_unbounded:
            raise ValueError(
                "counting='recount' differences full per-region recounts and "
                "cannot account for evicted state; windowed runs require "
                "counting='incremental'"
            )
        self.num_machines = num_machines
        self.condition = condition
        self.weight_fn = weight_fn
        self.policy = policy or DriftAdaptiveEWHPolicy()
        self._owns_backend = backend is None
        self.backend = backend or SimulatedBackend()
        # A state-owning backend (sticky workers) keeps each machine's
        # SortedRegionState resident on its side; the engine then drives the
        # state-ownership protocol (bind / count_batch / evict_state /
        # rebase_state / install_state) and maintains only an arrival-index
        # mirror.  That protocol *is* incremental counting, so recount mode
        # cannot run on such a backend.
        self._stateful = bool(getattr(self.backend, "owns_state", False))
        if self._stateful and counting != "incremental":
            raise ValueError(
                f"backend {self.backend.name!r} owns its join state "
                "(owns_state=True), which requires counting='incremental' -- "
                "the recount baseline needs the full region state engine-side"
            )
        self.counting = counting
        if counting == "incremental":
            try:
                self._transposed = condition.transposed
            except NotImplementedError as error:
                raise ValueError(
                    f"condition {condition!r} does not define .transposed, "
                    "which incremental counting needs to search the sorted "
                    "R1 state; pass counting='recount' instead"
                ) from error
        else:
            self._transposed = None
        self.repartition_mode = repartition_mode
        self.compact_history = compact_history
        self.histogram = histogram or IncrementalHistogram(
            num_machines,
            weight_fn,
            capacity=sample_capacity,
            decay=sample_decay,
            config=ewh_config,
        )
        self.migration_cost_factor = migration_cost_factor
        self.rebuild_scan_factor = rebuild_scan_factor
        self.seed = seed
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self._consumed = False
        # Stepwise-run lifecycle: "new" -> start() -> "running" ->
        # finish() -> "finished".  run() is a thin wrapper over the three.
        self._phase = "new"
        self._state: "_RunState | None" = None
        self._run_span = None
        # After a restore, source batches at or below this index were
        # already processed before the checkpoint and are silently skipped
        # when the stream is replayed.
        self._skip_through: "int | None" = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _rebuild_charge(self) -> float:
        """Cost of one histogram (re)build, spread over the cluster."""
        return (
            self.rebuild_scan_factor
            * self.weight_fn.input_cost
            * self.histogram.sample_tuples
            / self.num_machines
        )

    @staticmethod
    def _append_history(history: np.ndarray, keys: np.ndarray) -> np.ndarray:
        """Append a batch's keys to a side's history, preserving the dtype.

        The first non-empty batch decides the side's history dtype (integer
        keys stay integers -- int64 join keys above 2**53 must never round
        through float64).  A later dtype change promotes via
        ``np.concatenate``'s normal rules.
        """
        if len(history) == 0:
            return np.array(keys)
        if len(keys) == 0:
            return history
        return np.concatenate([history, keys])

    @staticmethod
    def _globalise(
        local_assignments: list[np.ndarray],
        offset: int,
        region_to_machine: np.ndarray,
        num_machines: int,
    ) -> list[np.ndarray]:
        """Convert per-region batch-local indices to per-machine arrival indices.

        ``offset`` is the side's history length before the batch, so the
        results are engine-coordinate arrival indices -- global indices
        minus whatever history compaction has already trimmed (the two
        coincide while nothing has been trimmed).  Region ``r``'s arrivals
        are shipped to ``region_to_machine[r]`` -- the machine actually
        holding that region's state after any partial repartitioning remap.
        """
        empty = np.empty(0, dtype=np.int64)
        per_machine: list[np.ndarray] = [empty] * num_machines
        for region, local in enumerate(local_assignments):
            machine = int(region_to_machine[region])
            per_machine[machine] = np.asarray(local, dtype=np.int64) + offset
        return per_machine

    def _count_incremental(
        self,
        state1: list[SortedRegionState],
        state2: list[SortedRegionState],
        new1: list[np.ndarray],
        new2: list[np.ndarray],
        history1: np.ndarray,
        history2: np.ndarray,
    ) -> tuple[np.ndarray, RegionJoinResult]:
        """Fold a batch's arrivals into the sorted state and count the delta.

        Per machine the delta decomposes exactly as
        ``C(new1, state2 + new2) + C(state1, new2)`` -- the first term is
        counted by searching the (just-updated) sorted R2 state per new R1
        key, the second by searching the pre-insert sorted R1 state per new
        R2 key under the transposed condition.  Both are ``O(new log
        state)``, dispatched to the backend as one 2J-task execution (a
        single pool round-trip under the multiprocess backend); no
        full-region recount happens.  Returns the per-machine deltas and
        the backend execution (for its timings and serialization bytes).

        The whole fold-and-count is wrapped in an ``incremental_count``
        span; under a profiling backend the execution's worker pids are
        stitched as per-worker child spans.
        """
        J = self.num_machines
        with self.tracer.span(
            "incremental_count", category="stage", tasks=2 * J
        ) as span:
            tasks: list[tuple[np.ndarray, np.ndarray]] = []
            conditions = []
            for machine in range(J):
                new_keys1 = history1[new1[machine]]
                new_keys2 = history2[new2[machine]]
                old_keys1 = state1[machine].keys
                state2[machine].insert(new2[machine], new_keys2)
                tasks.append((new_keys1, state2[machine].keys))
                conditions.append(self.condition)
                tasks.append((new_keys2, old_keys1))
                conditions.append(self._transposed)
                state1[machine].insert(new1[machine], new_keys1)
            execution = self.backend.join_regions(
                tasks, conditions, keys2_sorted=True
            )
        self._stitch_workers(execution, span)
        deltas = execution.per_machine_output.reshape(J, 2).sum(axis=1)
        combined = RegionJoinResult(
            per_machine_output=deltas,
            per_machine_seconds=execution.per_machine_seconds.reshape(J, 2).sum(
                axis=1
            ),
            wall_seconds=execution.wall_seconds,
            bytes_pickled=execution.bytes_pickled,
            bytes_unpickled=execution.bytes_unpickled,
        )
        return deltas, combined

    def _count_resident(
        self,
        new1: list[np.ndarray],
        new2: list[np.ndarray],
        history1: np.ndarray,
        history2: np.ndarray,
    ) -> tuple[np.ndarray, RegionJoinResult]:
        """Count a batch's delta against state resident on a sticky backend.

        The stateful twin of :meth:`_count_incremental`: the fold-and-count
        happens *worker-side* against each worker's resident state, so the
        engine ships only the per-machine arrival index/key arrays (over
        the backend's shared-memory arena) instead of full region state.
        The workers replay the exact delta decomposition
        ``C(new1, state2 + new2) + C(state1, new2)``, so the per-machine
        deltas are bit-identical to the in-process path.  Serialization
        bytes are not on the returned execution -- they accrue on the
        backend across the whole batch's commands and are drained once per
        batch (``drain_channel_bytes``).
        """
        J = self.num_machines
        with self.tracer.span(
            "incremental_count", category="stage", tasks=2 * J
        ) as span:
            execution = self.backend.count_batch(
                new1, new2, history1, history2
            )
        self._stitch_workers(execution, span)
        return execution.per_machine_output, execution

    @staticmethod
    def _merge_sorted(held: np.ndarray, incoming: np.ndarray) -> np.ndarray:
        """Merge new arrival indices into a sorted ownership mirror.

        The engine's per-machine mirror of a sticky worker's resident
        arrival indices -- the index sets migration planning and resident
        accounting read without any worker round-trip.  Kept sorted so
        eviction can drop expired indices with the same ``searchsorted``
        membership pass the live sets use.
        """
        incoming = np.sort(np.asarray(incoming, dtype=np.int64))
        if len(incoming) == 0:
            return held
        if len(held) == 0:
            return incoming
        return np.insert(held, np.searchsorted(held, incoming), incoming)

    def _stitch_workers(self, execution: RegionJoinResult, span) -> None:
        """Emit per-worker child spans for one backend execution.

        Only the multiprocess backend reports ``worker_pids`` (and only for
        the tasks it actually dispatched), so simulated runs emit no worker
        spans at all -- which is what keeps simulated-mode traces
        byte-identical across runs: worker seconds are real wall-clock
        times and would otherwise leak nondeterminism into the trace.
        Each child starts at the parent span's start and lands on a per-pid
        Chrome-trace track, so Perfetto shows the pool's real parallelism
        under the dispatching span.
        """
        pids = execution.worker_pids
        if pids is None or not self.tracer.enabled:
            return
        for task, pid in enumerate(pids):
            pid = int(pid)
            if pid < 0:
                continue
            self.tracer.record(
                "task",
                float(execution.per_machine_seconds[task]),
                category="worker",
                start=span.start,
                tid=pid,
                thread_name=f"worker {pid}",
                task=task,
            )

    @staticmethod
    def _accumulate_bytes(
        total: "int | None", measured: "int | None"
    ) -> "int | None":
        """Fold one execution's byte count into a batch total.

        ``None`` means "not measured" on both sides -- a batch only gets a
        byte count once at least one of its executions went through a
        profiling serialization channel, so simulated batches keep ``None``
        (rendered ``-`` in the streaming tables) rather than a misleading
        ``0``.
        """
        if measured is None:
            return total
        return (0 if total is None else total) + measured

    def _meter_batch(self, metrics: BatchMetrics) -> None:
        """Fold one batch's metrics into the attached registry and pulse it.

        This is the single bridge between the per-batch
        :class:`~repro.streaming.metrics.BatchMetrics` record and the
        unified :class:`~repro.obs.metrics.MetricsRegistry`: monotonic
        quantities become counters, instantaneous ones gauges, and the
        per-batch distributions histograms.  The trailing ``pulse()``
        drives any attached :class:`~repro.obs.metrics.SnapshotReporter`.
        """
        registry = self.metrics
        if registry is None:
            return
        registry.counter("stream.batches").inc()
        registry.counter("stream.tuples").inc(metrics.new_tuples)
        registry.counter("stream.output").inc(metrics.output_delta)
        registry.counter("stream.tuples_evicted").inc(metrics.tuples_evicted)
        registry.counter("stream.tuples_migrated").inc(metrics.migrated_tuples)
        if metrics.repartitioned:
            registry.counter("stream.repartitions").inc()
        if metrics.bytes_pickled is not None:
            registry.counter("stream.bytes_pickled").inc(metrics.bytes_pickled)
            registry.counter("stream.bytes_unpickled").inc(
                metrics.bytes_unpickled or 0
            )
        if metrics.bytes_shm is not None:
            registry.counter("stream.bytes_shm").inc(metrics.bytes_shm)
        registry.gauge("stream.resident_tuples").set(metrics.resident_tuples)
        registry.gauge("stream.resident_bytes").set(metrics.resident_bytes)
        registry.gauge("stream.live_imbalance").set(metrics.live_imbalance)
        registry.histogram("stream.batch_seconds").observe(metrics.wall_seconds)
        registry.histogram("stream.max_load").observe(metrics.max_load)
        registry.pulse()

    @staticmethod
    def _remove_sorted(live: np.ndarray, expired: np.ndarray) -> np.ndarray:
        """Drop ``expired`` (a sorted subset) from the sorted ``live`` array.

        ``O(live log expired)`` membership via ``searchsorted`` -- cheaper
        than ``np.isin``, which re-sorts both arrays, and this runs on every
        windowed batch.
        """
        positions = np.searchsorted(expired, live)
        positions[positions == len(expired)] = len(expired) - 1
        return live[expired[positions] != live]

    def _evict(
        self,
        metrics: BatchMetrics,
        state1: list[SortedRegionState],
        state2: list[SortedRegionState],
        live1: np.ndarray,
        live2: np.ndarray,
        starts1: list[int],
        starts2: list[int],
        history1_len: int,
        history2_len: int,
        rng: np.random.Generator,
        held1: "list[np.ndarray] | None" = None,
        held2: "list[np.ndarray] | None" = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply the window policy after a batch; charge evictions to metrics.

        Returns the updated per-side live index sets.  Per-machine region
        state is trimmed in place; the freed entries and bytes land in
        ``metrics.tuples_evicted`` / ``metrics.bytes_freed``.

        On a state-owning backend the engine holds no region state --
        ``held1`` / ``held2`` are its per-machine ownership mirrors.  The
        mirrors are trimmed here and the expired sets shipped worker-side
        (``evict_state``); the workers report how many entries they really
        dropped, and a mismatch with the mirrors raises -- the mirror *is*
        the engine's claim about worker state, and a divergence means
        migration planning would move state that does not exist.
        """
        expired1 = self.window.evictions(live1, starts1, history1_len, rng)
        expired2 = self.window.evictions(live2, starts2, history2_len, rng)
        dropped = 0
        if len(expired1):
            live1 = self._remove_sorted(live1, expired1)
            for state in state1:
                dropped += state.evict(expired1)
            if held1 is not None:
                for machine, held in enumerate(held1):
                    kept = self._remove_sorted(held, expired1)
                    dropped += len(held) - len(kept)
                    held1[machine] = kept
        if len(expired2):
            live2 = self._remove_sorted(live2, expired2)
            for state in state2:
                dropped += state.evict(expired2)
            if held2 is not None:
                for machine, held in enumerate(held2):
                    kept = self._remove_sorted(held, expired2)
                    dropped += len(held) - len(kept)
                    held2[machine] = kept
        if self._stateful and (len(expired1) or len(expired2)):
            worker_dropped = self.backend.evict_state(expired1, expired2)
            if worker_dropped != dropped:
                raise RuntimeError(
                    f"sticky workers dropped {worker_dropped} state entries "
                    f"but the engine's ownership mirror expected {dropped}; "
                    "worker-resident state has diverged from the engine"
                )
        metrics.tuples_evicted = dropped
        metrics.bytes_freed = dropped * SortedRegionState.BYTES_PER_TUPLE
        return live1, live2

    def _compact_side(
        self,
        history: np.ndarray,
        live: np.ndarray,
        starts: list[int],
        states: list[SortedRegionState],
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Trim one side's dead history prefix and rebase all its indices.

        The window's safe trim point (``min(live)``, or the whole history
        once nothing is live) bounds every arrival index any future batch
        can reference, so the key history below it is copied out, the
        batch-start list drops entries below it, and the live set, the
        remaining starts and every machine's state indices shift down by
        the trimmed amount.  Returns the compacted history, the rebased
        live set and how many entries were trimmed.  Pure bookkeeping: the
        keys any index resolves to are unchanged, so routing, counting and
        migration are bit-identical with or without compaction.
        """
        trim = self.window.trim_point(live, len(history))
        if trim <= 0:
            return history, live, 0
        # .copy() drops the reference to the old full-size buffer; a plain
        # slice would be a view pinning it in memory.
        history = history[trim:].copy()
        live = live - trim
        drop = 0
        while drop < len(starts) and starts[drop] < trim:
            drop += 1
        starts[:] = [start - trim for start in starts[drop:]]
        for state in states:
            state.rebase(trim)
        return history, live, trim

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    @property
    def phase(self) -> str:
        """Lifecycle phase: ``"new"``, ``"running"`` or ``"finished"``.

        :meth:`start` (or :meth:`resume_from`) moves a new engine to
        running; :meth:`finish` moves it to finished.  :meth:`run` drives
        the whole cycle in one call.
        """
        return self._phase

    def _open_run_span(self) -> None:
        """Open the run-level span the whole consumption nests under.

        Every span arg is deterministic (indices, counts, flags -- never
        seconds), so a simulated-mode run traced with a TickClock produces
        a byte-identical trace on every replay.
        """
        self._run_span = self.tracer.span(
            "run",
            category="run",
            scheme=self.policy.scheme_name,
            machines=self.num_machines,
            backend=self.backend.name,
            window=self.window.name,
            counting=self.counting,
        )
        self._run_span.__enter__()

    def start(self) -> None:
        """Begin a stepwise run: initialise the loop state, bind the backend.

        The stepwise API -- :meth:`start`, then :meth:`process_batch` per
        micro-batch, then :meth:`finish` -- is :meth:`run` taken apart, so
        a driver can interleave its own actions between batches:
        :meth:`checkpoint` for crash recovery, :meth:`resize` for
        mid-stream elasticity.  An engine still consumes at most one
        stream; a second ``start`` raises exactly like a second ``run``.
        """
        if self._consumed:
            raise RuntimeError(
                "this engine has already consumed a stream; create a fresh "
                "StreamingJoinEngine (and policy) per run"
            )
        self._consumed = True
        J = self.num_machines
        s = _RunState()
        s.rng = np.random.default_rng(self.seed)
        s.history1 = np.empty(0, dtype=np.float64)
        s.history2 = np.empty(0, dtype=np.float64)
        if self._stateful:
            # The workers own the region state; the engine keeps only a
            # sorted per-machine mirror of the arrival indices each worker
            # holds (enough for migration planning, eviction accounting and
            # resident metrics, with no state readback ever).
            self.backend.bind(J, self.condition, self._transposed)
            s.state1 = []
            s.state2 = []
            empty_index = np.empty(0, dtype=np.int64)
            s.held1 = [empty_index] * J
            s.held2 = [empty_index] * J
        else:
            s.state1 = [SortedRegionState() for _ in range(J)]
            s.state2 = [SortedRegionState() for _ in range(J)]
            s.held1 = s.held2 = None
        s.prev_outputs = np.zeros(J, dtype=np.int64)
        s.partitioning = None
        # Where each region's state lives; partial repartitioning may remap.
        s.region_to_machine = np.arange(J, dtype=np.int64)
        # Liveness bookkeeping (windowed runs only): sorted arrival indices
        # still live per side and each batch's arrival-index start.  With
        # compaction, all stored indices are rebased by the amount trimmed
        # so far ("engine coordinates") and these structures stay O(window).
        s.live1 = np.empty(0, dtype=np.int64)
        s.live2 = np.empty(0, dtype=np.int64)
        s.starts1 = []
        s.starts2 = []
        s.last_batch_index = None
        s.position = -1
        s.result = StreamRunResult(
            scheme=self.policy.scheme_name,
            num_machines=J,
            backend=self.backend.name,
            window=self.window.name,
            counting=self.counting,
            join_clock=self.backend.clock_domain,
        )
        s.cumulative = np.zeros(J, dtype=np.float64)
        s.pending_resize = None
        self._state = s
        self._phase = "running"
        self._open_run_span()

    def run(
        self,
        source: "StreamSource | Iterable[MicroBatch]",
        verify: bool = True,
        allow_gaps: bool = False,
    ) -> StreamRunResult:
        """Consume the stream and return the per-batch and end-to-end metrics.

        ``source`` may be a :class:`~repro.streaming.source.StreamSource`
        or any iterable of micro-batches -- the backpressured pipeline
        feeds the engine straight off its bounded queue, where batches may
        have been shed or coalesced and are no longer re-iterable.

        ``verify`` checks, at end of an *unbounded* stream, that the summed
        incremental output equals the exact join cardinality of the full
        history.  Windowed runs have no full-history ground truth (the
        window deliberately forgets pairs), so they leave
        ``output_correct`` as ``None`` regardless of ``verify``.

        ``allow_gaps`` relaxes the batch-index validation.  By default
        batch indices must be *contiguous* (each exactly one above its
        predecessor; the first may start anywhere), which catches a source
        that silently drops data.  Pass ``allow_gaps=True`` for streams
        whose numbering legitimately skips values -- a pipeline that sheds
        or coalesces batches under backpressure, or a renumbered/strided
        replay -- where any strictly increasing numbering is accepted.
        Note that the verification above always covers exactly the batches
        the engine *received*: a shed batch is absent from the retained
        history and from the expected count alike.

        Windowed semantics apply from the initial build onwards: the
        backlog routed by the first build is counted under the liveness *at
        build time*, so a pair whose tuples coexisted earlier but expired
        before a (policy-delayed) initial build is not counted.  The
        built-in EWH policies build at the first batch where both sides
        have been observed, which makes this indistinguishable from the
        pair-at-arrival semantics in practice; a custom policy that defers
        ``ready()`` for many batches trades that backlog output away.

        An engine can only consume one stream: the maintained sample state
        and the policy's drift bookkeeping are not reset between runs, so a
        second call raises instead of silently mixing streams.  This is a
        thin wrapper over the stepwise API (:meth:`start` /
        :meth:`process_batch` / :meth:`finish`), which drivers needing
        checkpoints or mid-stream resizes call directly.
        """
        self.start()
        try:
            batches = (
                source.batches() if hasattr(source, "batches") else iter(source)
            )
            for batch in batches:
                self.process_batch(batch, allow_gaps=allow_gaps)
            return self.finish(verify=verify)
        finally:
            if self._owns_backend:
                self.backend.close()

    def process_batch(
        self, batch: MicroBatch, allow_gaps: bool = False
    ) -> "BatchMetrics | None":
        """Consume one micro-batch; return its metrics.

        The stepwise core of :meth:`run`: route the arrivals, count the
        incremental output, evict/compact under the window, let the policy
        repartition, and append the batch's
        :class:`~repro.streaming.metrics.BatchMetrics` to the running
        result.  After :meth:`resume_from`, source batches at or below the
        checkpoint's last consumed index are already part of the restored
        state; they are skipped silently and return ``None`` (this is what
        lets a driver replay a re-iterable source from the top after a
        crash).
        """
        if self._phase != "running":
            raise RuntimeError(
                "process_batch() requires a running engine; call start() "
                "(or resume_from()) first"
            )
        if self._skip_through is not None:
            if batch.index <= self._skip_through:
                return None
            self._skip_through = None
        s = self._state
        J = self.num_machines
        weight = self.weight_fn
        windowed = not self.window.is_unbounded
        compacting = windowed and self.compact_history
        incremental = self.counting == "incremental"
        stateful = self._stateful
        tracer = self.tracer
        rng = s.rng
        history1, history2 = s.history1, s.history2
        state1, state2 = s.state1, s.state2
        held1, held2 = s.held1, s.held2
        prev_outputs = s.prev_outputs
        partitioning = s.partitioning
        region_to_machine = s.region_to_machine
        live1, live2 = s.live1, s.live2
        starts1, starts2 = s.starts1, s.starts2

        start = perf_counter()
        # Liveness and windows key off the engine's own
        # processed-batch count, so any strictly increasing source
        # numbering works -- but a non-monotone one would silently
        # reorder time, and a gap in a contiguous stream usually
        # means lost data, so gaps must be opted into
        # (shed/coalesced pipelines, renumbered replays).
        if s.last_batch_index is not None:
            if batch.index <= s.last_batch_index:
                raise ValueError(
                    f"stream batch indices must be strictly "
                    f"increasing, got batch {batch.index} after "
                    f"{s.last_batch_index}"
                )
            if not allow_gaps and batch.index != s.last_batch_index + 1:
                raise ValueError(
                    f"stream batch indices must be contiguous, got "
                    f"batch {batch.index} after {s.last_batch_index}; "
                    "pass allow_gaps=True for streams that "
                    "legitimately skip indices (shed/coalesced "
                    "pipelines, renumbered sources)"
                )
        s.last_batch_index = batch.index
        s.position += 1
        position = s.position
        batch_span = tracer.span(
            "batch",
            category="batch",
            index=batch.index,
            position=position,
            tuples=batch.num_tuples,
        )
        if True:
            with batch_span:
                    if self.policy.needs_statistics(partitioning is not None):
                        self.histogram.observe(batch, rng)

                    rebuild_cost = 0.0
                    initial_build = False
                    if partitioning is None and self.policy.ready(self.histogram):
                        builds_before = self.histogram.rebuilds
                        partitioning = self.policy.initial_partitioning(
                            self.histogram, self.condition, rng
                        )
                        if self.histogram.rebuilds > builds_before:
                            rebuild_cost = self._rebuild_charge()
                        initial_build = True

                    offset1, offset2 = len(history1), len(history2)
                    history1 = self._append_history(history1, batch.keys1)
                    history2 = self._append_history(history2, batch.keys2)
                    if windowed:
                        starts1.append(offset1)
                        starts2.append(offset2)
                        live1 = np.concatenate(
                            [
                                live1,
                                np.arange(
                                    offset1, len(history1), dtype=np.int64
                                ),
                            ]
                        )
                        live2 = np.concatenate(
                            [
                                live2,
                                np.arange(
                                    offset2, len(history2), dtype=np.int64
                                ),
                            ]
                        )

                    join_seconds = 0.0
                    per_machine_join_seconds = np.zeros(J)
                    bytes_pickled: int | None = None
                    bytes_unpickled: int | None = None
                    bytes_shm: int | None = None
                    if partitioning is None:
                        # One side is still entirely unseen, so no
                        # partitioning can be built and no output is possible
                        # yet; the arrivals just accumulate in the (unrouted)
                        # history.
                        arrivals = np.zeros(J, dtype=np.int64)
                        deltas = np.zeros(J, dtype=np.int64)
                    else:
                        with tracer.span(
                            "route",
                            category="stage",
                            initial_build=initial_build,
                        ):
                            if initial_build:
                                # Tuples that arrived before the first build
                                # were never shipped anywhere: route the
                                # retained (live) history as one big batch of
                                # arrivals into the empty state.
                                if windowed:
                                    new1 = [
                                        live1[local]
                                        for local in pad_assignments(
                                            partitioning.assign_r1(
                                                history1[live1], rng
                                            ),
                                            J,
                                        )
                                    ]
                                    new2 = [
                                        live2[local]
                                        for local in pad_assignments(
                                            partitioning.assign_r2(
                                                history2[live2], rng
                                            ),
                                            J,
                                        )
                                    ]
                                else:
                                    new1 = pad_assignments(
                                        partitioning.assign_r1(history1, rng), J
                                    )
                                    new2 = pad_assignments(
                                        partitioning.assign_r2(history2, rng), J
                                    )
                                region_to_machine = np.arange(J, dtype=np.int64)
                            else:
                                # Route only the batch's arrivals and fold
                                # them into the held state of the machine
                                # owning each region.
                                new1 = self._globalise(
                                    partitioning.assign_r1(batch.keys1, rng),
                                    offset1,
                                    region_to_machine,
                                    J,
                                )
                                new2 = self._globalise(
                                    partitioning.assign_r2(batch.keys2, rng),
                                    offset2,
                                    region_to_machine,
                                    J,
                                )
                            arrivals = np.array(
                                [
                                    len(a) + len(b)
                                    for a, b in zip(new1, new2)
                                ],
                                dtype=np.int64,
                            )

                        if stateful:
                            deltas, execution = self._count_resident(
                                new1, new2, history1, history2
                            )
                            for machine in range(J):
                                held1[machine] = self._merge_sorted(
                                    held1[machine], new1[machine]
                                )
                                held2[machine] = self._merge_sorted(
                                    held2[machine], new2[machine]
                                )
                        elif incremental:
                            deltas, execution = self._count_incremental(
                                state1, state2, new1, new2, history1, history2
                            )
                        else:
                            # Legacy recount: fold the arrivals in, re-count
                            # each region's full held state and difference
                            # against the previous cumulative count.
                            # keys2_sorted is deliberately NOT passed: the
                            # legacy engine sorted every region from scratch
                            # each batch, and recount exists to reproduce
                            # that cost profile as the speedup baseline.
                            with tracer.span(
                                "join", category="stage", tasks=J
                            ) as join_span:
                                for machine in range(J):
                                    state1[machine].insert(
                                        new1[machine], history1[new1[machine]]
                                    )
                                    state2[machine].insert(
                                        new2[machine], history2[new2[machine]]
                                    )
                                execution = self.backend.join_regions(
                                    [
                                        (s1.keys, s2.keys)
                                        for s1, s2 in zip(state1, state2)
                                    ],
                                    self.condition,
                                )
                            self._stitch_workers(execution, join_span)
                            totals = execution.per_machine_output
                            deltas = totals - prev_outputs
                            prev_outputs = totals
                        join_seconds += execution.wall_seconds
                        per_machine_join_seconds += execution.per_machine_seconds
                        bytes_pickled = self._accumulate_bytes(
                            bytes_pickled, execution.bytes_pickled
                        )
                        bytes_unpickled = self._accumulate_bytes(
                            bytes_unpickled, execution.bytes_unpickled
                        )

                    loads = (
                        weight.input_cost * arrivals.astype(np.float64)
                        + weight.output_cost * deltas.astype(np.float64)
                        + rebuild_cost
                    )
                    mean_load = float(loads.mean()) if J else 0.0
                    live_imbalance = (
                        float(loads.max()) / mean_load if mean_load > 0 else 1.0
                    )
                    metrics = BatchMetrics(
                        batch_index=batch.index,
                        stream_position=position,
                        new_tuples=batch.num_tuples,
                        per_machine_load=loads,
                        output_delta=int(deltas.sum()),
                        rebuild_cost=rebuild_cost,
                        live_imbalance=live_imbalance,
                        predicted_imbalance=self.policy.predicted_imbalance(
                            self.histogram
                        ),
                        per_machine_output_delta=deltas
                        if partitioning is not None
                        else None,
                        join_clock=self.backend.clock_domain,
                    )

                    # A resize() between batches moved state immediately but
                    # parked its charges; fold them into this batch, after
                    # live_imbalance (computed above from the batch's own
                    # loads) exactly like a drift migration's charges land
                    # after it below.
                    if s.pending_resize is not None:
                        pending = s.pending_resize
                        s.pending_resize = None
                        metrics.resized_from = pending["resized_from"]
                        metrics.migrated_tuples += pending["migrated"]
                        metrics.rebuild_cost += pending["rebuild_cost"]
                        metrics.per_machine_load = (
                            metrics.per_machine_load + pending["load"]
                        )
                        metrics.migration_plan = pending["plan"]

                    # Window eviction runs after the batch is counted and
                    # *before* any repartitioning, so a migration only ever
                    # ships live state.
                    if windowed:
                        with tracer.span(
                            "evict", category="stage"
                        ) as evict_span:
                            live1, live2 = self._evict(
                                metrics, state1, state2, live1, live2,
                                starts1, starts2,
                                len(history1), len(history2), rng,
                                held1, held2,
                            )
                            evict_span.set(evicted=metrics.tuples_evicted)
                        if compacting:
                            # Compact the dead history prefix the eviction
                            # exposed: trim both sides below their safe trim
                            # points and rebase every stored arrival index by
                            # the same amount.
                            with tracer.span(
                                "compact", category="stage"
                            ) as compact_span:
                                history1, live1, trim1 = self._compact_side(
                                    history1, live1, starts1, state1
                                )
                                history2, live2, trim2 = self._compact_side(
                                    history2, live2, starts2, state2
                                )
                                if stateful and (trim1 or trim2):
                                    # The ownership mirrors and the workers'
                                    # resident indices rebase by the same
                                    # trims, so engine coordinates stay in
                                    # lock-step on both sides of the channel.
                                    held1 = [
                                        held - trim1 for held in held1
                                    ]
                                    held2 = [
                                        held - trim2 for held in held2
                                    ]
                                    self.backend.rebase_state(trim1, trim2)
                                metrics.history_tuples_trimmed = trim1 + trim2
                                compact_span.set(trimmed=trim1 + trim2)

                    # Give the policy a chance to swap partitionings;
                    # migration and rebuild charges land on this batch.
                    # Before the initial build there is nothing to replace.
                    builds_before = self.histogram.rebuilds
                    if partitioning is not None:
                        with tracer.span(
                            "drift_decide", category="stage"
                        ) as drift_span:
                            replacement = self.policy.maybe_repartition(
                                self.histogram, metrics, self.condition, rng
                            )
                            drift_span.set(
                                repartition=replacement is not None
                            )
                    else:
                        replacement = None
                    if replacement is not None:
                        with tracer.span(
                            "migrate",
                            category="stage",
                            mode=self.repartition_mode,
                        ) as migrate_span:
                            plan = plan_migration(
                                held1
                                if stateful
                                else [state.index for state in state1],
                                held2
                                if stateful
                                else [state.index for state in state2],
                                replacement,
                                history1,
                                history2,
                                J,
                                rng,
                                mode=self.repartition_mode,
                                live1=live1 if windowed else None,
                                live2=live2 if windowed else None,
                            )
                            partitioning = replacement
                            if stateful:
                                # State moves worker-to-worker through the
                                # shared arena: every machine's complete
                                # post-migration index/key arrays are written
                                # once and each worker rebuilds its machines
                                # from them -- full state never crosses the
                                # pickle channel.
                                self.backend.install_state(
                                    plan.new_assignments1,
                                    plan.new_assignments2,
                                    history1,
                                    history2,
                                )
                                held1 = [
                                    np.sort(
                                        np.asarray(
                                            indices, dtype=np.int64
                                        )
                                    )
                                    for indices in plan.new_assignments1
                                ]
                                held2 = [
                                    np.sort(
                                        np.asarray(
                                            indices, dtype=np.int64
                                        )
                                    )
                                    for indices in plan.new_assignments2
                                ]
                            else:
                                state1 = [
                                    SortedRegionState.from_indices(
                                        indices, history1
                                    )
                                    for indices in plan.new_assignments1
                                ]
                                state2 = [
                                    SortedRegionState.from_indices(
                                        indices, history2
                                    )
                                    for indices in plan.new_assignments2
                                ]
                            region_to_machine = plan.region_to_machine
                            if not incremental:
                                # The recount baseline differences cumulative
                                # counts, so the post-migration layout must
                                # be re-counted to reset the baseline.
                                # Incremental counting charges output at
                                # arrival time and needs no recount here.
                                with tracer.span(
                                    "join", category="stage", tasks=J
                                ) as join_span:
                                    execution = self.backend.join_regions(
                                        [
                                            (s1.keys, s2.keys)
                                            for s1, s2 in zip(state1, state2)
                                        ],
                                        self.condition,
                                    )
                                self._stitch_workers(execution, join_span)
                                join_seconds += execution.wall_seconds
                                per_machine_join_seconds += (
                                    execution.per_machine_seconds
                                )
                                bytes_pickled = self._accumulate_bytes(
                                    bytes_pickled, execution.bytes_pickled
                                )
                                bytes_unpickled = self._accumulate_bytes(
                                    bytes_unpickled, execution.bytes_unpickled
                                )
                                prev_outputs = execution.per_machine_output
                            migration_load = (
                                self.migration_cost_factor
                                * weight.input_cost
                                * plan.per_machine_arrivals.astype(np.float64)
                            )
                            if self.histogram.rebuilds > builds_before:
                                charge = self._rebuild_charge()
                                migration_load = migration_load + charge
                                metrics.rebuild_cost += charge
                            metrics.per_machine_load = (
                                metrics.per_machine_load + migration_load
                            )
                            metrics.migrated_tuples += plan.total_moved
                            metrics.repartitioned = True
                            # Keep the plan's accounting for reports and
                            # equivalence tests, but drop the O(history)
                            # state index arrays -- the engine's own state
                            # already holds them, and a result object must
                            # not pin full-history snapshots per rebuild.
                            metrics.migration_plan = replace(
                                plan, new_assignments1=[], new_assignments2=[]
                            )
                            migrate_span.set(moved=plan.total_moved)

                    if stateful:
                        # One drain covers every command the batch issued
                        # (count, evict, rebase, install); batches that
                        # issued none keep None, like an unprofiled run.
                        drained = self.backend.drain_channel_bytes()
                        bytes_pickled = self._accumulate_bytes(
                            bytes_pickled, drained[0]
                        )
                        bytes_unpickled = self._accumulate_bytes(
                            bytes_unpickled, drained[1]
                        )
                        bytes_shm = self._accumulate_bytes(
                            bytes_shm, drained[2]
                        )
                        metrics.resident_tuples = sum(
                            len(held) for held in held1
                        ) + sum(len(held) for held in held2)
                    else:
                        metrics.resident_tuples = sum(
                            len(s) for s in state1
                        ) + sum(len(s) for s in state2)
                    metrics.resident_history_tuples = len(history1) + len(
                        history2
                    )
                    metrics.resident_live_entries = len(live1) + len(live2)
                    metrics.join_seconds = join_seconds
                    metrics.per_machine_join_seconds = per_machine_join_seconds
                    metrics.bytes_pickled = bytes_pickled
                    metrics.bytes_unpickled = bytes_unpickled
                    metrics.bytes_shm = bytes_shm
                    metrics.wall_seconds = perf_counter() - start
                    batch_span.set(
                        output_delta=metrics.output_delta,
                        repartitioned=metrics.repartitioned,
                    )
        # Write the rebound loop locals back onto the run state (the lists
        # starts1/starts2 are mutated in place and stay aliased).
        s.history1, s.history2 = history1, history2
        s.state1, s.state2 = state1, state2
        s.held1, s.held2 = held1, held2
        s.prev_outputs = prev_outputs
        s.partitioning = partitioning
        s.region_to_machine = region_to_machine
        s.live1, s.live2 = live1, live2
        s.cumulative += metrics.per_machine_load
        s.result.batches.append(metrics)
        self._meter_batch(metrics)
        return metrics

    def finish(self, verify: bool = True) -> StreamRunResult:
        """End the stream: finalise totals, verify, close the run span.

        See :meth:`run` for the ``verify`` semantics (end-of-stream exact
        recount, unbounded windows only).  An engine-owned backend is
        closed here, matching :meth:`run`; an injected backend stays open
        for the caller.
        """
        if self._phase != "running":
            raise RuntimeError(
                "finish() requires a running engine (start() first; "
                "finish() may only be called once)"
            )
        s = self._state
        result = s.result
        result.cumulative_load = s.cumulative
        result.total_output = int(
            sum(batch.output_delta for batch in result.batches)
        )
        if verify and self.window.is_unbounded:
            with self.tracer.span("verify", category="run") as verify_span:
                result.expected_output = count_join_output(
                    s.history1, s.history2, self.condition
                )
                result.output_correct = (
                    result.total_output == result.expected_output
                )
                verify_span.set(correct=result.output_correct)
        self._run_span.__exit__(None, None, None)
        self._run_span = None
        self._phase = "finished"
        if self._owns_backend:
            self.backend.close()
        return result

    def close(self) -> None:
        """Release an engine-owned backend without finishing the run.

        Crash cleanup: after :meth:`process_batch` raises (e.g. a
        :class:`~repro.streaming.backends.WorkerCrashError`), the run
        cannot be finished, only abandoned or restored elsewhere.
        Idempotent; an injected backend is left untouched, exactly as in
        :meth:`run`'s ``finally``.
        """
        if self._owns_backend:
            self.backend.close()

    # ------------------------------------------------------------------
    # Elasticity and fault tolerance
    # ------------------------------------------------------------------
    def checkpoint(self) -> StreamCheckpoint:
        """Capture the complete resumable state at this batch boundary.

        The checkpoint is self-contained: configuration, policy and window
        objects, sample state, RNG state, retained history, per-machine
        region state (index mirrors for stateful backends, verbatim
        index+key arrays otherwise), liveness bookkeeping and the
        accumulated :class:`~repro.streaming.metrics.StreamRunResult`.
        Everything is deep-copied, so the engine may keep running after
        taking it.  :meth:`resume_from` on the checkpoint continues the
        run bit-identically to never having stopped.
        """
        if self._phase != "running":
            raise RuntimeError(
                "checkpoint() requires a running engine (between start()/"
                "process_batch() and finish())"
            )
        s = self._state
        with self.tracer.span(
            "checkpoint", category="run", position=s.position
        ) as span:
            s.result.checkpoints_taken += 1
            if self._stateful:
                # The workers' key arrays are reproducible from the index
                # mirrors plus the history, so the checkpoint stays
                # O(resident indices) and never reads state back.
                state_index1 = [np.array(held) for held in s.held1]
                state_index2 = [np.array(held) for held in s.held2]
                state_keys1 = state_keys2 = None
            else:
                state_index1 = [np.array(st.index) for st in s.state1]
                state_keys1 = [np.array(st.keys) for st in s.state1]
                state_index2 = [np.array(st.index) for st in s.state2]
                state_keys2 = [np.array(st.keys) for st in s.state2]
            checkpoint = StreamCheckpoint(
                num_machines=self.num_machines,
                counting=self.counting,
                repartition_mode=self.repartition_mode,
                compact_history=self.compact_history,
                migration_cost_factor=self.migration_cost_factor,
                rebuild_scan_factor=self.rebuild_scan_factor,
                seed=self.seed,
                condition=self.condition,
                weight_fn=self.weight_fn,
                policy=copy.deepcopy(self.policy),
                window=copy.deepcopy(self.window),
                histogram=copy.deepcopy(self.histogram),
                partitioning=copy.deepcopy(s.partitioning),
                rng_state=copy.deepcopy(s.rng.bit_generator.state),
                history1=np.array(s.history1),
                history2=np.array(s.history2),
                starts1=list(s.starts1),
                starts2=list(s.starts2),
                live1=np.array(s.live1),
                live2=np.array(s.live2),
                state_index1=state_index1,
                state_keys1=state_keys1,
                state_index2=state_index2,
                state_keys2=state_keys2,
                prev_outputs=np.array(s.prev_outputs),
                region_to_machine=np.array(s.region_to_machine),
                last_batch_index=s.last_batch_index,
                position=s.position,
                cumulative=np.array(s.cumulative),
                result=copy.deepcopy(s.result),
                pending_resize=copy.deepcopy(s.pending_resize),
            )
            span.set(
                batches=len(s.result.batches),
                resident=checkpoint.resident_tuples,
            )
        if self.metrics is not None:
            self.metrics.counter("stream.checkpoints").inc()
        return checkpoint

    def resize(self, machines: int) -> None:
        """Re-plan the join onto ``machines`` machines mid-stream.

        The policy rebuilds its partitioning for the new fleet
        (:meth:`~repro.streaming.policies.RepartitioningPolicy.resize_partitioning`),
        :func:`~repro.streaming.migration.plan_migration` moves the
        resident state onto the new machine set (growing pads empty
        machines in; shrinking drains the departing ones), and sticky
        workers are rebound through the same evict/install protocol a
        drift migration uses.  State moves immediately; the migration and
        rebuild *charges* are parked and folded into the next processed
        batch's metrics (marked via ``resized_from``), mirroring how a
        drift migration's charges land on the batch that triggered it.

        Resizing to the current size is a no-op.  The recount baseline
        differences cumulative per-machine counts and cannot survive a
        fleet change, so ``counting="recount"`` engines refuse.
        """
        if self._phase != "running":
            raise RuntimeError(
                "resize() requires a running engine (between start() and "
                "finish())"
            )
        if machines <= 0:
            raise ValueError("machines must be positive")
        if self.counting == "recount":
            raise ValueError(
                "resize() is not supported with counting='recount': the "
                "recount baseline differences cumulative per-machine "
                "counts, which a fleet change invalidates; use "
                "counting='incremental'"
            )
        s = self._state
        if s.partitioning is None:
            raise RuntimeError(
                "cannot resize before the initial partitioning is built; "
                "process at least one batch of each side first"
            )
        old_machines = self.num_machines
        if machines == old_machines:
            return
        windowed = not self.window.is_unbounded
        weight = self.weight_fn
        with self.tracer.span(
            "resize",
            category="run",
            machines_from=old_machines,
            machines_to=machines,
        ) as span:
            builds_before = self.histogram.rebuilds
            replacement = self.policy.resize_partitioning(
                machines, self.histogram, self.condition, s.rng
            )
            plan = plan_migration(
                s.held1
                if self._stateful
                else [state.index for state in s.state1],
                s.held2
                if self._stateful
                else [state.index for state in s.state2],
                replacement,
                s.history1,
                s.history2,
                machines,
                s.rng,
                mode=self.repartition_mode,
                live1=s.live1 if windowed else None,
                live2=s.live2 if windowed else None,
            )
            self.num_machines = machines
            s.partitioning = replacement
            s.region_to_machine = plan.region_to_machine
            if self._stateful:
                self.backend.resize(machines)
                self.backend.install_state(
                    plan.new_assignments1,
                    plan.new_assignments2,
                    s.history1,
                    s.history2,
                )
                s.held1 = [
                    np.sort(np.asarray(indices, dtype=np.int64))
                    for indices in plan.new_assignments1
                ]
                s.held2 = [
                    np.sort(np.asarray(indices, dtype=np.int64))
                    for indices in plan.new_assignments2
                ]
            else:
                s.state1 = [
                    SortedRegionState.from_indices(indices, s.history1)
                    for indices in plan.new_assignments1
                ]
                s.state2 = [
                    SortedRegionState.from_indices(indices, s.history2)
                    for indices in plan.new_assignments2
                ]
            # Incremental counting charges output at arrival time, so the
            # per-machine baseline resets cleanly with the fleet.
            s.prev_outputs = np.zeros(machines, dtype=np.int64)
            survivors = min(old_machines, machines)
            cumulative = np.zeros(machines, dtype=np.float64)
            cumulative[:survivors] = s.cumulative[:survivors]
            s.cumulative = cumulative
            s.result.num_machines = machines
            migration_load = (
                self.migration_cost_factor
                * weight.input_cost
                * plan.per_machine_arrivals.astype(np.float64)
            )
            rebuild_cost = 0.0
            if self.histogram.rebuilds > builds_before:
                # _rebuild_charge() spreads the scan over num_machines,
                # which was updated above -- the charge is for the new
                # fleet doing the rebuild.
                rebuild_cost = self._rebuild_charge()
                migration_load = migration_load + rebuild_cost
            s.pending_resize = {
                "resized_from": old_machines,
                "load": migration_load,
                "migrated": plan.total_moved,
                "rebuild_cost": rebuild_cost,
                "plan": replace(
                    plan, new_assignments1=[], new_assignments2=[]
                ),
            }
            span.set(moved=plan.total_moved)
        if self.metrics is not None:
            self.metrics.counter("stream.resizes").inc()

    @classmethod
    def resume_from(
        cls,
        checkpoint: StreamCheckpoint,
        *,
        backend: "ExecutionBackend | None" = None,
        machines: "int | None" = None,
        tracer=None,
        metrics=None,
    ) -> "StreamingJoinEngine":
        """Reconstruct a running engine from a checkpoint.

        The engine continues bit-identically to the one that took the
        checkpoint: same RNG stream, same sample state, same per-machine
        region state, same accumulated result.  ``backend`` provides the
        execution backend for the resumed run (default: a fresh simulated
        backend); it need not match the original -- region state is
        reinstalled through ``bind``/``install_state`` for stateful
        backends and rebuilt from the checkpoint arrays otherwise.
        ``machines`` optionally resizes onto a different fleet straight
        away (crash recovery onto the survivors), which is exactly
        :meth:`resize` from the restored state.

        The checkpoint is deep-copied first, so one checkpoint can seed
        any number of resumed runs.
        """
        checkpoint = copy.deepcopy(checkpoint)
        engine = cls(
            checkpoint.num_machines,
            checkpoint.condition,
            checkpoint.weight_fn,
            policy=checkpoint.policy,
            backend=backend,
            window=checkpoint.window,
            counting=checkpoint.counting,
            repartition_mode=checkpoint.repartition_mode,
            compact_history=checkpoint.compact_history,
            histogram=checkpoint.histogram,
            migration_cost_factor=checkpoint.migration_cost_factor,
            rebuild_scan_factor=checkpoint.rebuild_scan_factor,
            seed=checkpoint.seed,
            tracer=tracer,
            metrics=metrics,
        )
        engine._restore(checkpoint)
        if machines is not None and machines != engine.num_machines:
            engine.resize(machines)
        return engine

    def _restore(self, checkpoint: StreamCheckpoint) -> None:
        """Adopt a (privately owned) checkpoint as this engine's run state."""
        self._consumed = True
        s = _RunState()
        rng = np.random.default_rng(self.seed)
        rng.bit_generator.state = checkpoint.rng_state
        s.rng = rng
        s.history1, s.history2 = checkpoint.history1, checkpoint.history2
        s.starts1 = list(checkpoint.starts1)
        s.starts2 = list(checkpoint.starts2)
        s.live1, s.live2 = checkpoint.live1, checkpoint.live2
        s.partitioning = checkpoint.partitioning
        s.region_to_machine = checkpoint.region_to_machine
        s.prev_outputs = checkpoint.prev_outputs
        s.last_batch_index = checkpoint.last_batch_index
        s.position = checkpoint.position
        s.cumulative = checkpoint.cumulative
        s.result = checkpoint.result
        s.pending_resize = checkpoint.pending_resize
        s.result.restores += 1
        s.result.backend = self.backend.name
        s.result.join_clock = self.backend.clock_domain
        self._state = s
        self._phase = "running"
        # Replayed source batches at or below this index were already
        # consumed before the checkpoint; process_batch skips them.
        self._skip_through = checkpoint.last_batch_index
        self._open_run_span()
        with self.tracer.span(
            "restore", category="run", position=s.position
        ) as span:
            if self._stateful:
                self.backend.bind(
                    self.num_machines, self.condition, self._transposed
                )
                # Checkpoint index lists may be key-sorted (taken from a
                # stateless engine); the held mirrors are index-sorted.
                s.held1 = [
                    np.sort(np.asarray(indices, dtype=np.int64))
                    for indices in checkpoint.state_index1
                ]
                s.held2 = [
                    np.sort(np.asarray(indices, dtype=np.int64))
                    for indices in checkpoint.state_index2
                ]
                self.backend.install_state(
                    s.held1, s.held2, s.history1, s.history2
                )
                s.state1 = []
                s.state2 = []
            else:
                s.held1 = s.held2 = None
                if checkpoint.state_keys1 is None:
                    # Stateful-origin checkpoint: rebuild keys from the
                    # index mirrors, exactly as install_state would.
                    s.state1 = [
                        SortedRegionState.from_indices(indices, s.history1)
                        for indices in checkpoint.state_index1
                    ]
                    s.state2 = [
                        SortedRegionState.from_indices(indices, s.history2)
                        for indices in checkpoint.state_index2
                    ]
                else:
                    # Verbatim restore preserves the exact duplicate-key
                    # order the original engine held.
                    s.state1 = [
                        SortedRegionState(index=indices, keys=keys)
                        for indices, keys in zip(
                            checkpoint.state_index1, checkpoint.state_keys1
                        )
                    ]
                    s.state2 = [
                        SortedRegionState(index=indices, keys=keys)
                        for indices, keys in zip(
                            checkpoint.state_index2, checkpoint.state_keys2
                        )
                    ]
            span.set(
                batches=len(s.result.batches),
                resident=checkpoint.resident_tuples,
            )
        if self.metrics is not None:
            self.metrics.counter("stream.restores").inc()

    def measured_machine_speeds(self, last_n: int = 8) -> "np.ndarray | None":
        """Normalised machine speeds from recently measured join seconds.

        The live analogue of :mod:`repro.engine.heterogeneous`'s static
        speed vector: average each machine's measured join seconds over
        the last ``last_n`` batches and invert, normalised to mean 1.0.
        Returns None when nothing has been measured yet (simulated
        backends before any real timing, or no batches).  A driver can
        feed this into its own resize policy -- e.g. shrink when the
        slowest machine is idle, grow when every machine is saturated.
        """
        if self._state is None:
            return None
        J = self.num_machines
        totals = np.zeros(J)
        for metrics in self._state.result.batches[-last_n:]:
            seconds = metrics.per_machine_join_seconds
            if seconds is not None and len(seconds) == J:
                totals += np.asarray(seconds, dtype=np.float64)
        busy = totals > 0
        if not busy.any():
            return None
        speeds = np.zeros(J)
        speeds[busy] = 1.0 / totals[busy]
        if (~busy).any():
            speeds[~busy] = speeds[busy].mean()
        return speeds * (J / speeds.sum())


def compare_streaming_schemes(
    source: StreamSource,
    num_machines: int,
    condition: JoinCondition,
    weight_fn: WeightFunction,
    policies: dict[str, RepartitioningPolicy] | None = None,
    backend_factory=None,
    window: WindowPolicy | str | None = None,
    counting: str = "incremental",
    repartition_mode: str = "partial",
    compact_history: bool = True,
    ewh_config: EWHConfig | None = None,
    sample_capacity: int = 2048,
    sample_decay: float = 0.8,
    migration_cost_factor: float = 1.0,
    seed: int = 0,
    tracer: "Tracer | NullTracer | None" = None,
    metrics_factory=None,
) -> dict[str, StreamRunResult]:
    """Run the same stream under several policies and collect the results.

    The default line-up is the benchmark's: static 1-Bucket, static CSIO and
    drift-adaptive CSIO.  Every engine consumes an independent replay of the
    source (sources are deterministic and re-iterable), so the comparisons
    see identical input.

    ``backend_factory`` builds one fresh
    :class:`~repro.streaming.backends.ExecutionBackend` per engine (e.g.
    ``lambda: MultiprocessBackend(max_workers=4)``); each backend is closed
    after its run.  The default runs every engine on the in-process
    simulated backend.  ``window``, ``counting`` and ``compact_history``
    apply to every engine (window policies are stateless, so one instance
    is safely shared).

    ``tracer`` is shared by every engine -- all runs land in one trace,
    each under its own ``run`` span tagged with its scheme, so a single
    Perfetto load shows the schemes side by side.  ``metrics_factory``
    builds one fresh :class:`~repro.obs.metrics.MetricsRegistry` per scheme
    (called with the scheme name); registries are mutable run state and
    must not be shared the way the tracer is, or the schemes' counters
    would sum together.
    """
    if policies is None:
        policies = {
            "CI-static": StaticOneBucketPolicy(num_machines),
            "CSIO-static": StaticEWHPolicy(),
            "CSIO-adaptive": DriftAdaptiveEWHPolicy(),
        }
    window = make_window(window)
    results: dict[str, StreamRunResult] = {}
    for name, policy in policies.items():
        backend = backend_factory() if backend_factory is not None else None
        engine = StreamingJoinEngine(
            num_machines,
            condition,
            weight_fn,
            policy=policy,
            backend=backend,
            window=window,
            counting=counting,
            repartition_mode=repartition_mode,
            compact_history=compact_history,
            sample_capacity=sample_capacity,
            sample_decay=sample_decay,
            ewh_config=ewh_config,
            migration_cost_factor=migration_cost_factor,
            seed=seed,
            tracer=tracer,
            metrics=metrics_factory(name) if metrics_factory is not None else None,
        )
        try:
            results[name] = engine.run(source)
        finally:
            if backend is not None:
                backend.close()
    return results
