"""The micro-batch streaming join engine.

:class:`StreamingJoinEngine` consumes a :class:`~repro.streaming.source.StreamSource`
and runs a stateful partitioned join over it:

* every machine retains the tuples routed to its region so far (new arrivals
  on one side must join the other side's full history);
* each micro-batch is routed by the current partitioning, the per-machine
  incremental output is counted exactly by a pluggable
  :class:`~repro.streaming.backends.ExecutionBackend` (in-process simulation
  or a persistent multiprocess worker pool), and the batch's cost-model load
  is charged per machine (arrivals at the input cost, produced output at the
  output cost);
* after each batch the :class:`~repro.streaming.policies.RepartitioningPolicy`
  may swap in a new partitioning, in which case the retained state is
  migrated (:mod:`repro.streaming.migration`) and the moved tuples are
  charged into the same cost model -- rebalancing is never free.  Under the
  default ``repartition_mode="partial"`` the engine diffs the old and new
  region-to-machine mappings and migrates only the regions whose assignment
  changed; ``"full"`` reproduces the naive positional rebuild that re-routes
  the whole history.

The adopted region-to-machine mapping is remembered between rebuilds: later
arrivals routed to new region ``r`` are shipped to the machine that actually
holds ``r``'s state, so partial repartitioning never degrades correctness.

Correctness mirrors the batch simulator: grid-routed partitionings cover
every candidate cell exactly once, so summing each machine's incremental
output over the run reproduces the exact join cardinality of the full
history, which :meth:`StreamingJoinEngine.run` verifies at end of stream.
All of this is backend-independent -- every backend counts with the same
exact kernel -- which ``tests/test_backends.py`` pins down.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from repro.core.histogram import EWHConfig
from repro.core.weights import WeightFunction
from repro.joins.conditions import JoinCondition
from repro.joins.local import count_join_output
from repro.partitioning.base import Partitioning
from repro.streaming.backends import (
    ExecutionBackend,
    RegionJoinResult,
    SimulatedBackend,
)
from repro.streaming.incremental import IncrementalHistogram
from repro.streaming.metrics import BatchMetrics, StreamRunResult
from repro.streaming.migration import (
    MIGRATION_MODES,
    pad_assignments,
    plan_migration,
)
from repro.streaming.policies import (
    DriftAdaptiveEWHPolicy,
    RepartitioningPolicy,
    StaticEWHPolicy,
    StaticOneBucketPolicy,
)
from repro.streaming.source import StreamSource

__all__ = ["StreamingJoinEngine", "compare_streaming_schemes"]


class StreamingJoinEngine:
    """Run a stateful partitioned join over a micro-batched stream.

    Parameters
    ----------
    num_machines:
        Cluster size ``J``.
    condition:
        The monotonic join condition.
    weight_fn:
        Cost model charging arrivals and output per machine.
    policy:
        The repartitioning policy (defaults to drift-adaptive EWH).
    backend:
        The :class:`~repro.streaming.backends.ExecutionBackend` running the
        per-batch, per-region joins.  Defaults to a fresh
        :class:`~repro.streaming.backends.SimulatedBackend`; a backend the
        engine creates itself is closed at end of run, a caller-provided one
        (e.g. a shared multiprocess pool) is left open.
    repartition_mode:
        ``"partial"`` (default) migrates only the regions whose
        region-to-machine assignment changed on a rebuild; ``"full"``
        re-routes the whole history positionally.
    histogram:
        Optional pre-configured :class:`IncrementalHistogram`; built from
        ``sample_capacity`` / ``sample_decay`` / ``ewh_config`` when omitted.
    sample_capacity, sample_decay:
        Per-side reservoir capacity and per-batch decay of the maintained
        sample state.
    ewh_config:
        Histogram configuration used by (re)builds.
    migration_cost_factor:
        Input-cost multiplier for migrated tuples (1.0 charges a migrated
        tuple like any other network arrival).
    rebuild_scan_factor:
        Per-tuple cost of scanning the sample state during a rebuild, as a
        fraction of the join input cost (mirrors the batch operators'
        statistics scan factor).
    seed:
        Seed of the engine's internal generator (routing and sampling).
    """

    def __init__(
        self,
        num_machines: int,
        condition: JoinCondition,
        weight_fn: WeightFunction,
        policy: RepartitioningPolicy | None = None,
        backend: ExecutionBackend | None = None,
        repartition_mode: str = "partial",
        histogram: IncrementalHistogram | None = None,
        sample_capacity: int = 2048,
        sample_decay: float = 0.8,
        ewh_config: EWHConfig | None = None,
        migration_cost_factor: float = 1.0,
        rebuild_scan_factor: float = 0.5,
        seed: int = 0,
    ) -> None:
        if num_machines <= 0:
            raise ValueError("num_machines must be positive")
        if migration_cost_factor < 0:
            raise ValueError("migration_cost_factor must be non-negative")
        if repartition_mode not in MIGRATION_MODES:
            raise ValueError(
                f"unknown repartition_mode {repartition_mode!r} "
                f"(expected one of {MIGRATION_MODES})"
            )
        self.num_machines = num_machines
        self.condition = condition
        self.weight_fn = weight_fn
        self.policy = policy or DriftAdaptiveEWHPolicy()
        self._owns_backend = backend is None
        self.backend = backend or SimulatedBackend()
        self.repartition_mode = repartition_mode
        self.histogram = histogram or IncrementalHistogram(
            num_machines,
            weight_fn,
            capacity=sample_capacity,
            decay=sample_decay,
            config=ewh_config,
        )
        self.migration_cost_factor = migration_cost_factor
        self.rebuild_scan_factor = rebuild_scan_factor
        self.seed = seed
        self._consumed = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _rebuild_charge(self) -> float:
        """Cost of one histogram (re)build, spread over the cluster."""
        return (
            self.rebuild_scan_factor
            * self.weight_fn.input_cost
            * self.histogram.sample_tuples
            / self.num_machines
        )

    def _execute_regions(
        self,
        assignments1: list[np.ndarray],
        assignments2: list[np.ndarray],
        keys1: np.ndarray,
        keys2: np.ndarray,
    ) -> RegionJoinResult:
        """Run the held state's per-region joins on the execution backend."""
        region_keys = [
            (keys1[idx1], keys2[idx2])
            for idx1, idx2 in zip(assignments1, assignments2)
        ]
        return self.backend.join_regions(region_keys, self.condition)

    @staticmethod
    def _globalise(
        local_assignments: list[np.ndarray],
        offset: int,
        region_to_machine: np.ndarray,
        num_machines: int,
    ) -> list[np.ndarray]:
        """Convert per-region batch-local indices to per-machine global indices.

        Region ``r``'s arrivals are shipped to ``region_to_machine[r]`` --
        the machine actually holding that region's state after any partial
        repartitioning remap.
        """
        empty = np.empty(0, dtype=np.int64)
        per_machine: list[np.ndarray] = [empty] * num_machines
        for region, local in enumerate(local_assignments):
            machine = int(region_to_machine[region])
            per_machine[machine] = np.asarray(local, dtype=np.int64) + offset
        return per_machine

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, source: StreamSource, verify: bool = True) -> StreamRunResult:
        """Consume the stream and return the per-batch and end-to-end metrics.

        ``verify`` checks, at end of stream, that the summed incremental
        output equals the exact join cardinality of the full history.

        An engine can only consume one stream: the maintained sample state
        and the policy's drift bookkeeping are not reset between runs, so a
        second call raises instead of silently mixing streams.
        """
        if self._consumed:
            raise RuntimeError(
                "this engine has already consumed a stream; create a fresh "
                "StreamingJoinEngine (and policy) per run"
            )
        self._consumed = True
        try:
            return self._run(source, verify)
        finally:
            if self._owns_backend:
                self.backend.close()

    def _run(self, source: StreamSource, verify: bool) -> StreamRunResult:
        rng = np.random.default_rng(self.seed)
        J = self.num_machines
        weight = self.weight_fn

        history1 = np.empty(0, dtype=np.float64)
        history2 = np.empty(0, dtype=np.float64)
        state1: list[np.ndarray] = [np.empty(0, dtype=np.int64) for _ in range(J)]
        state2: list[np.ndarray] = [np.empty(0, dtype=np.int64) for _ in range(J)]
        prev_outputs = np.zeros(J, dtype=np.int64)
        partitioning: Partitioning | None = None
        # Where each region's state lives; partial repartitioning may remap.
        region_to_machine = np.arange(J, dtype=np.int64)

        result = StreamRunResult(
            scheme=self.policy.scheme_name,
            num_machines=J,
            backend=self.backend.name,
        )
        cumulative = np.zeros(J, dtype=np.float64)

        for batch in source.batches():
            start = time.perf_counter()
            if self.policy.needs_statistics(partitioning is not None):
                self.histogram.observe(batch, rng)

            rebuild_cost = 0.0
            initial_build = False
            if partitioning is None and self.policy.ready(self.histogram):
                builds_before = self.histogram.rebuilds
                partitioning = self.policy.initial_partitioning(
                    self.histogram, self.condition, rng
                )
                if self.histogram.rebuilds > builds_before:
                    rebuild_cost = self._rebuild_charge()
                initial_build = True

            offset1, offset2 = len(history1), len(history2)
            history1 = np.concatenate([history1, batch.keys1])
            history2 = np.concatenate([history2, batch.keys2])

            join_seconds = 0.0
            per_machine_join_seconds = np.zeros(J)
            if partitioning is None:
                # One side is still entirely unseen, so no partitioning can
                # be built and no output is possible yet; the arrivals just
                # accumulate in the (unrouted) history.
                arrivals = np.zeros(J, dtype=np.int64)
                deltas = np.zeros(J, dtype=np.int64)
            else:
                if initial_build:
                    # Tuples that arrived before the first build were never
                    # shipped anywhere: route the entire retained history.
                    new1 = pad_assignments(
                        partitioning.assign_r1(history1, rng), J
                    )
                    new2 = pad_assignments(
                        partitioning.assign_r2(history2, rng), J
                    )
                    state1, state2 = new1, new2
                    region_to_machine = np.arange(J, dtype=np.int64)
                else:
                    # Route only the batch's arrivals and fold them into the
                    # held state of the machine owning each region.
                    new1 = self._globalise(
                        partitioning.assign_r1(batch.keys1, rng),
                        offset1,
                        region_to_machine,
                        J,
                    )
                    new2 = self._globalise(
                        partitioning.assign_r2(batch.keys2, rng),
                        offset2,
                        region_to_machine,
                        J,
                    )
                    state1 = [np.concatenate([s, n]) for s, n in zip(state1, new1)]
                    state2 = [np.concatenate([s, n]) for s, n in zip(state2, new2)]
                arrivals = np.array(
                    [len(a) + len(b) for a, b in zip(new1, new2)], dtype=np.int64
                )

                # Exact incremental output: recount each region's held state
                # on the backend and difference against the previous
                # cumulative count.
                execution = self._execute_regions(
                    state1, state2, history1, history2
                )
                join_seconds += execution.wall_seconds
                per_machine_join_seconds += execution.per_machine_seconds
                totals = execution.per_machine_output
                deltas = totals - prev_outputs
                prev_outputs = totals

            loads = (
                weight.input_cost * arrivals.astype(np.float64)
                + weight.output_cost * deltas.astype(np.float64)
                + rebuild_cost
            )
            mean_load = float(loads.mean()) if J else 0.0
            live_imbalance = (
                float(loads.max()) / mean_load if mean_load > 0 else 1.0
            )
            metrics = BatchMetrics(
                batch_index=batch.index,
                new_tuples=batch.num_tuples,
                per_machine_load=loads,
                output_delta=int(deltas.sum()),
                rebuild_cost=rebuild_cost,
                live_imbalance=live_imbalance,
                predicted_imbalance=self.policy.predicted_imbalance(
                    self.histogram
                ),
                per_machine_output_delta=deltas
                if partitioning is not None
                else None,
            )

            # Give the policy a chance to swap partitionings; migration and
            # rebuild charges land on this batch.  Before the initial build
            # there is nothing to replace.
            builds_before = self.histogram.rebuilds
            replacement = (
                self.policy.maybe_repartition(
                    self.histogram, metrics, self.condition, rng
                )
                if partitioning is not None
                else None
            )
            if replacement is not None:
                plan = plan_migration(
                    state1,
                    state2,
                    replacement,
                    history1,
                    history2,
                    J,
                    rng,
                    mode=self.repartition_mode,
                )
                partitioning = replacement
                state1 = plan.new_assignments1
                state2 = plan.new_assignments2
                region_to_machine = plan.region_to_machine
                execution = self._execute_regions(
                    state1, state2, history1, history2
                )
                join_seconds += execution.wall_seconds
                per_machine_join_seconds += execution.per_machine_seconds
                prev_outputs = execution.per_machine_output
                migration_load = (
                    self.migration_cost_factor
                    * weight.input_cost
                    * plan.per_machine_arrivals.astype(np.float64)
                )
                if self.histogram.rebuilds > builds_before:
                    charge = self._rebuild_charge()
                    migration_load = migration_load + charge
                    metrics.rebuild_cost += charge
                metrics.per_machine_load = metrics.per_machine_load + migration_load
                metrics.migrated_tuples = plan.total_moved
                metrics.repartitioned = True
                # Keep the plan's accounting for reports and equivalence
                # tests, but drop the O(history) state index arrays -- the
                # engine's own state already holds them, and a result object
                # must not pin full-history snapshots per rebuild.
                metrics.migration_plan = replace(
                    plan, new_assignments1=[], new_assignments2=[]
                )

            metrics.join_seconds = join_seconds
            metrics.per_machine_join_seconds = per_machine_join_seconds
            metrics.wall_seconds = time.perf_counter() - start
            cumulative += metrics.per_machine_load
            result.batches.append(metrics)

        result.cumulative_load = cumulative
        result.total_output = int(
            sum(batch.output_delta for batch in result.batches)
        )
        if verify:
            result.expected_output = count_join_output(
                history1, history2, self.condition
            )
            result.output_correct = result.total_output == result.expected_output
        return result


def compare_streaming_schemes(
    source: StreamSource,
    num_machines: int,
    condition: JoinCondition,
    weight_fn: WeightFunction,
    policies: dict[str, RepartitioningPolicy] | None = None,
    backend_factory=None,
    repartition_mode: str = "partial",
    ewh_config: EWHConfig | None = None,
    sample_capacity: int = 2048,
    sample_decay: float = 0.8,
    migration_cost_factor: float = 1.0,
    seed: int = 0,
) -> dict[str, StreamRunResult]:
    """Run the same stream under several policies and collect the results.

    The default line-up is the benchmark's: static 1-Bucket, static CSIO and
    drift-adaptive CSIO.  Every engine consumes an independent replay of the
    source (sources are deterministic and re-iterable), so the comparisons
    see identical input.

    ``backend_factory`` builds one fresh
    :class:`~repro.streaming.backends.ExecutionBackend` per engine (e.g.
    ``lambda: MultiprocessBackend(max_workers=4)``); each backend is closed
    after its run.  The default runs every engine on the in-process
    simulated backend.
    """
    if policies is None:
        policies = {
            "CI-static": StaticOneBucketPolicy(num_machines),
            "CSIO-static": StaticEWHPolicy(),
            "CSIO-adaptive": DriftAdaptiveEWHPolicy(),
        }
    results: dict[str, StreamRunResult] = {}
    for name, policy in policies.items():
        backend = backend_factory() if backend_factory is not None else None
        engine = StreamingJoinEngine(
            num_machines,
            condition,
            weight_fn,
            policy=policy,
            backend=backend,
            repartition_mode=repartition_mode,
            sample_capacity=sample_capacity,
            sample_decay=sample_decay,
            ewh_config=ewh_config,
            migration_cost_factor=migration_cost_factor,
            seed=seed,
        )
        try:
            results[name] = engine.run(source)
        finally:
            if backend is not None:
                backend.close()
    return results
