"""Online streaming join subsystem.

Runs partitioned joins over micro-batched, unbounded input: the equi-weight
histogram's sample state is maintained incrementally across batches, a drift
detector compares the live load imbalance against the histogram's own
prediction, and the engine rebuilds the partitioning online -- charging the
state-migration cost explicitly -- when the prediction goes stale.  Rebuilds
default to *partial repartitioning* (only the regions whose region-to-machine
assignment changed migrate state), and the per-batch region joins execute on
a pluggable :class:`~repro.streaming.backends.ExecutionBackend` (in-process
simulation, a persistent multiprocess worker pool with real wall-clock
timings, or zero-copy sticky workers that keep each machine's join state
resident in its worker process and receive per-batch deltas over a
:mod:`~repro.streaming.shm` shared-memory arena).

Retained state is bounded by a pluggable
:class:`~repro.streaming.window.WindowPolicy` (unbounded, sliding
count-or-batch window, or exponential decay): expired tuples are evicted from
every machine after each batch, the freed memory is charged into the metrics,
and repartitioning migrates live state only.  Each side's region state is
kept sorted by join key, so the per-batch output delta is counted
incrementally in ``O(new log state)`` instead of re-counting whole regions
(see ``docs/streaming.md`` for the full narrative).

A :class:`~repro.streaming.pipeline.StreamingPipeline` decouples the source
from the engine with a bounded queue and a pluggable backpressure policy
(``block`` -- lossless, bit-identical to the synchronous engine; ``shed`` --
drop whole batches at the full queue; ``coalesce`` -- merge the queue into
one super-batch), so a slow batch no longer stalls the producer and the
arrivals-outpace-joining regime is measurable: queue depth, shed volume,
producer stall and consumer idle time all land in the metrics.

The engine is elastic and crash-survivable:
:meth:`~repro.streaming.engine.StreamingJoinEngine.checkpoint` captures the
complete resumable state at any batch boundary
(:class:`~repro.streaming.checkpoint.StreamCheckpoint`, with a versioned
integrity-checked on-disk format),
:meth:`~repro.streaming.engine.StreamingJoinEngine.resize` re-plans the join
onto a different machine set mid-stream through the same migration machinery
a drift rebuild uses, and :func:`~repro.streaming.checkpoint.run_resilient`
drives a run to completion across backend worker crashes
(:class:`~repro.streaming.backends.WorkerCrashError`) by restoring from the
last checkpoint and replaying the source (see ``docs/fault_tolerance.md``).
"""

from repro.streaming.backends import (
    ExecutionBackend,
    MultiprocessBackend,
    RegionJoinResult,
    SimulatedBackend,
    SlowConsumerBackend,
    StickyWorkerBackend,
    WorkerCrashError,
    default_mp_context,
    make_backend,
)
from repro.streaming.checkpoint import (
    CHECKPOINT_VERSION,
    StreamCheckpoint,
    run_resilient,
)
from repro.streaming.shm import ShmArena, ShmReader
from repro.streaming.drift import DriftDetector, DriftObservation
from repro.streaming.engine import (
    COUNTING_MODES,
    StreamingJoinEngine,
    compare_streaming_schemes,
)
from repro.streaming.incremental import (
    DecayedReservoir,
    IncrementalHistogram,
    SortedRegionState,
)
from repro.streaming.metrics import BatchMetrics, StreamRunResult
from repro.streaming.migration import MigrationPlan, plan_migration
from repro.streaming.pipeline import (
    BACKPRESSURE_MODES,
    BackpressurePolicy,
    BlockPolicy,
    CoalescePolicy,
    ShedPolicy,
    StreamingPipeline,
    make_backpressure,
    merge_batches,
)
from repro.streaming.window import (
    ExponentialDecayWindow,
    SlidingWindow,
    UnboundedWindow,
    WindowPolicy,
    make_window,
)
from repro.streaming.policies import (
    DriftAdaptiveEWHPolicy,
    RepartitioningPolicy,
    StaticEWHPolicy,
    StaticOneBucketPolicy,
)
from repro.streaming.source import (
    ArrayStreamSource,
    DriftingZipfSource,
    MicroBatch,
    RateLimitedSource,
    StreamSource,
)

__all__ = [
    "ExecutionBackend",
    "SimulatedBackend",
    "MultiprocessBackend",
    "StickyWorkerBackend",
    "SlowConsumerBackend",
    "RegionJoinResult",
    "ShmArena",
    "ShmReader",
    "default_mp_context",
    "make_backend",
    "MicroBatch",
    "StreamSource",
    "ArrayStreamSource",
    "DriftingZipfSource",
    "RateLimitedSource",
    "BACKPRESSURE_MODES",
    "BackpressurePolicy",
    "BlockPolicy",
    "ShedPolicy",
    "CoalescePolicy",
    "make_backpressure",
    "merge_batches",
    "StreamingPipeline",
    "DecayedReservoir",
    "IncrementalHistogram",
    "SortedRegionState",
    "DriftDetector",
    "DriftObservation",
    "MigrationPlan",
    "plan_migration",
    "WindowPolicy",
    "UnboundedWindow",
    "SlidingWindow",
    "ExponentialDecayWindow",
    "make_window",
    "COUNTING_MODES",
    "BatchMetrics",
    "StreamRunResult",
    "RepartitioningPolicy",
    "StaticOneBucketPolicy",
    "StaticEWHPolicy",
    "DriftAdaptiveEWHPolicy",
    "StreamingJoinEngine",
    "compare_streaming_schemes",
    "WorkerCrashError",
    "CHECKPOINT_VERSION",
    "StreamCheckpoint",
    "run_resilient",
]
