"""Online streaming join subsystem.

Runs partitioned joins over micro-batched, unbounded input: the equi-weight
histogram's sample state is maintained incrementally across batches, a drift
detector compares the live load imbalance against the histogram's own
prediction, and the engine rebuilds the partitioning online -- charging the
state-migration cost explicitly -- when the prediction goes stale.  Rebuilds
default to *partial repartitioning* (only the regions whose region-to-machine
assignment changed migrate state), and the per-batch region joins execute on
a pluggable :class:`~repro.streaming.backends.ExecutionBackend` (in-process
simulation, or a persistent multiprocess worker pool with real wall-clock
timings).
"""

from repro.streaming.backends import (
    ExecutionBackend,
    MultiprocessBackend,
    RegionJoinResult,
    SimulatedBackend,
    make_backend,
)
from repro.streaming.drift import DriftDetector, DriftObservation
from repro.streaming.engine import StreamingJoinEngine, compare_streaming_schemes
from repro.streaming.incremental import DecayedReservoir, IncrementalHistogram
from repro.streaming.metrics import BatchMetrics, StreamRunResult
from repro.streaming.migration import MigrationPlan, plan_migration
from repro.streaming.policies import (
    DriftAdaptiveEWHPolicy,
    RepartitioningPolicy,
    StaticEWHPolicy,
    StaticOneBucketPolicy,
)
from repro.streaming.source import (
    ArrayStreamSource,
    DriftingZipfSource,
    MicroBatch,
    StreamSource,
)

__all__ = [
    "ExecutionBackend",
    "SimulatedBackend",
    "MultiprocessBackend",
    "RegionJoinResult",
    "make_backend",
    "MicroBatch",
    "StreamSource",
    "ArrayStreamSource",
    "DriftingZipfSource",
    "DecayedReservoir",
    "IncrementalHistogram",
    "DriftDetector",
    "DriftObservation",
    "MigrationPlan",
    "plan_migration",
    "BatchMetrics",
    "StreamRunResult",
    "RepartitioningPolicy",
    "StaticOneBucketPolicy",
    "StaticEWHPolicy",
    "DriftAdaptiveEWHPolicy",
    "StreamingJoinEngine",
    "compare_streaming_schemes",
]
