"""Pluggable execution backends for the streaming join engine.

The engine decides *what* to join each micro-batch — the per-machine region
state under the current partitioning — and an :class:`ExecutionBackend`
decides *how* those per-region joins actually run:

* :class:`SimulatedBackend` counts each region's join output in the engine's
  own process (the original simulator loop, extracted).  Cost-model load is
  the quantity of interest; wall timings are recorded but reflect a single
  core.
* :class:`MultiprocessBackend` ships the busy regions to a persistent
  ``ProcessPoolExecutor`` — the same worker-pool machinery as the batch
  :func:`~repro.engine.executor.run_join_multiprocess` — so the incremental
  joins of one batch run in parallel OS processes and the metrics carry
  *real* per-region wall-clock timings.  The pool is created once and reused
  across every batch of the stream, amortising process start-up.
* :class:`StickyWorkerBackend` goes one step further: each worker process
  *owns* its machines' :class:`~repro.streaming.incremental.SortedRegionState`
  resident across batches, and the engine ships only the per-batch delta —
  new-arrival index/key arrays over a :class:`~repro.streaming.shm.ShmArena`
  shared-memory segment plus tiny pickled control messages for evictions,
  trim points and migration moves.  Steady-state ``bytes_pickled`` collapses
  to the control messages alone (the ``shm KB`` column meters the
  shared-memory payload instead).

Every backend receives identical per-region key arrays and counts output with
the same exact kernel, so the cost-model numbers, incremental output deltas
and migration plans of a run are backend-independent; only the measured
timings differ.  ``tests/test_backends.py`` locks that equivalence down.

Process-spawning backends pin an explicit multiprocessing start method
(forkserver where available, else spawn) instead of the platform default:
``fork`` — the Linux default up to Python 3.11 — forks whatever threads the
parent has already started, which can deadlock a
``StreamingPipeline(mode="thread")`` whose producer thread holds a lock at
fork time.

Select a backend by passing it to :class:`StreamingJoinEngine` (default:
simulated) or by name through :func:`make_backend`::

    with make_backend("multiprocess", max_workers=4) as backend:
        engine = StreamingJoinEngine(8, condition, weights, backend=backend)
        result = engine.run(source)
"""

from __future__ import annotations

import abc
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np

from repro.engine.executor import (
    broadcast_conditions,
    join_assigned_regions,
    pickled_nbytes,
)
from repro.joins.conditions import JoinCondition
from repro.joins.local import count_join_output
from repro.obs.clock import perf_counter
from repro.streaming.incremental import SortedRegionState
from repro.streaming.shm import ShmArena, ShmReader

__all__ = [
    "RegionJoinResult",
    "ExecutionBackend",
    "SimulatedBackend",
    "MultiprocessBackend",
    "StickyWorkerBackend",
    "SlowConsumerBackend",
    "WorkerCrashError",
    "default_mp_context",
    "make_backend",
]


class WorkerCrashError(RuntimeError):
    """A backend worker process died (or its channel broke) mid-command.

    Raised promptly -- the engine never hangs on a dead worker's pipe --
    with the worker identity and exit code in the message where known.
    The run that hit it is unrecoverable in place (the dead worker's
    resident state is gone); restore from the last
    :class:`~repro.streaming.checkpoint.StreamCheckpoint` onto a fresh
    backend instead, which is exactly what
    :func:`~repro.streaming.checkpoint.run_resilient` automates.
    """


def default_mp_context() -> multiprocessing.context.BaseContext:
    """The start method process-spawning backends pin: forkserver, else spawn.

    Never ``fork``: forking a process that already runs threads (a
    ``StreamingPipeline(mode="thread")`` producer, a tracing exporter)
    duplicates whatever locks those threads hold and can deadlock the child
    — the classic Linux ≤3.11 default-start-method bug this choice fixes.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "forkserver" if "forkserver" in methods else "spawn"
    )


def _resolve_mp_context(
    mp_context: "multiprocessing.context.BaseContext | str | None",
) -> multiprocessing.context.BaseContext:
    """Normalise an ``mp_context`` argument (name, context or ``None``)."""
    if mp_context is None:
        return default_mp_context()
    if isinstance(mp_context, str):
        return multiprocessing.get_context(mp_context)
    return mp_context


@dataclass
class RegionJoinResult:
    """Output counts and timings of executing one batch's per-region joins.

    Attributes
    ----------
    per_machine_output:
        Exact join output counted for each machine's region state.
    per_machine_seconds:
        Wall-clock seconds spent joining each region (worker time under the
        multiprocess backend, in-process time under the simulated one).
    wall_seconds:
        End-to-end time of the whole execution, including scheduling.
    bytes_pickled, bytes_unpickled:
        Bytes the execution shipped through a serialization channel --
        tasks out, results back over the multiprocess backend's
        ``ProcessPoolExecutor`` pickle channel.  ``None`` (not ``0``) for
        backends with no such channel: the in-process simulated backend
        moves no bytes at all, and reporting renders the column as ``-``
        rather than claiming a measured zero.
    bytes_shm:
        Array payload bytes the execution moved through a shared-memory
        segment instead of the pickle channel (the sticky backend's
        :class:`~repro.streaming.shm.ShmArena` transport).  ``None`` for
        backends without a shared-memory channel.
    worker_pids:
        OS pid of the process that joined each machine's region (``-1``
        for machines that were never dispatched), or ``None`` for
        in-process backends.  A tracer uses these to stitch per-worker
        child spans under the dispatching batch's span.
    """

    per_machine_output: np.ndarray
    per_machine_seconds: np.ndarray
    wall_seconds: float
    bytes_pickled: "int | None" = None
    bytes_unpickled: "int | None" = None
    bytes_shm: "int | None" = None
    worker_pids: "np.ndarray | None" = None

    @property
    def total_output(self) -> int:
        """Total output tuples across machines."""
        return int(self.per_machine_output.sum())


class ExecutionBackend(abc.ABC):
    """How the per-region joins of a micro-batch are executed.

    Backends are resources: :class:`MultiprocessBackend` owns a worker pool,
    so every backend supports ``close()`` and the context-manager protocol.
    A backend may be shared by several engines (e.g. to reuse one pool across
    the schemes of a comparison); an engine only closes a backend it created
    itself.

    ``close()`` is idempotent and final: calling :meth:`join_regions` on a
    closed backend raises ``RuntimeError`` instead of silently resurrecting
    whatever resource the backend owned (a resurrected worker pool has no
    remaining owner to shut it down -- a leak, not a convenience).
    """

    #: Reporting name recorded on the run result.
    name: str = "backend"

    #: Which clock domain the backend's reported timings live in:
    #: ``"real"`` for measured wall-clock seconds, ``"simulated"`` for
    #: modeled ones (see ``docs/observability.md`` on clock domains).
    clock_domain: str = "real"

    #: Whether the backend keeps the per-machine join state resident on its
    #: side (sticky workers).  The engine then drives the state-ownership
    #: protocol -- ``bind`` / ``count_batch`` / ``evict_state`` /
    #: ``rebase_state`` / ``install_state`` -- instead of shipping full
    #: region state through :meth:`join_regions` every batch.
    owns_state: bool = False

    #: Set by :meth:`close`; class-level default so subclasses need no
    #: ``__init__`` chaining.
    _closed: bool = False

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called on this backend."""
        return self._closed

    def _ensure_open(self) -> None:
        """Raise ``RuntimeError`` if the backend has been closed."""
        if self._closed:
            raise RuntimeError(
                f"{type(self).__name__} has been closed; create a fresh "
                "backend instead of reusing a closed one"
            )

    @abc.abstractmethod
    def join_regions(
        self,
        region_keys: list[tuple[np.ndarray, np.ndarray]],
        condition: "JoinCondition | list[JoinCondition]",
        keys2_sorted: bool = False,
    ) -> RegionJoinResult:
        """Join each machine's (R1, R2) region state; count exact output.

        ``region_keys[m]`` is machine ``m``'s currently held key arrays.
        Regions with an empty side produce no output and must not be charged
        any work.  ``condition`` is shared by every region, or a list with
        one condition per region (the engine's incremental counting mixes
        the original and transposed orientations in one dispatch).
        ``keys2_sorted`` promises every pair's second array is already
        sorted ascending so the per-task sort can be skipped -- the engine's
        incremental counting relies on this to stay ``O(new log state)`` per
        batch.
        """

    def close(self) -> None:
        """Release any resources held by the backend (idempotent, final)."""
        self._closed = True

    def __enter__(self) -> "ExecutionBackend":
        """Enter a with-block; the backend closes itself on exit."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Close the backend when the with-block ends."""
        self.close()


class SimulatedBackend(ExecutionBackend):
    """Count every region's join in-process (the simulator's original loop)."""

    name = "simulated"

    def join_regions(
        self,
        region_keys: list[tuple[np.ndarray, np.ndarray]],
        condition: "JoinCondition | list[JoinCondition]",
        keys2_sorted: bool = False,
    ) -> RegionJoinResult:
        """Count each non-empty region's join output in the calling process."""
        self._ensure_open()
        conditions = broadcast_conditions(condition, len(region_keys))
        outputs = np.zeros(len(region_keys), dtype=np.int64)
        seconds = np.zeros(len(region_keys))
        start = perf_counter()
        for machine, (keys1, keys2) in enumerate(region_keys):
            if len(keys1) == 0 or len(keys2) == 0:
                continue
            region_start = perf_counter()
            outputs[machine] = count_join_output(
                keys1, keys2, conditions[machine], keys2_sorted=keys2_sorted
            )
            seconds[machine] = perf_counter() - region_start
        return RegionJoinResult(
            per_machine_output=outputs,
            per_machine_seconds=seconds,
            wall_seconds=perf_counter() - start,
        )


class MultiprocessBackend(ExecutionBackend):
    """Run each batch's busy regions on a persistent OS-process worker pool.

    Parameters
    ----------
    max_workers:
        Upper bound on concurrent worker processes (defaults to the pool's
        own default, usually the CPU count).
    profile_serialization:
        Measure, per execution, the bytes the task payloads ship through
        the pool's pickle channel and the bytes the results ship back
        (``True`` by default).  This is the ``bytes_pickled`` /
        ``bytes_unpickled`` metric on
        :class:`~repro.streaming.metrics.BatchMetrics` -- the quantity the
        :class:`StickyWorkerBackend` drives to ~0.  The measurement costs
        one extra serialization pass over each payload; disable it for
        timing-critical sweeps.
    mp_context:
        Multiprocessing context (or start-method name) for the worker pool.
        Defaults to :func:`default_mp_context` -- forkserver where
        available, else spawn -- never the platform default: ``fork``
        inherits the parent's threads mid-flight and can deadlock under a
        threaded :class:`~repro.streaming.pipeline.StreamingPipeline`.

    The pool is created lazily on the first batch and kept alive for the
    lifetime of the backend, so a stream of many small batches pays process
    start-up once, not per batch.  ``close()`` shuts the pool down for good:
    a later ``join_regions`` call raises ``RuntimeError`` rather than
    silently starting a fresh pool that no caller would ever shut down.
    """

    name = "multiprocess"

    def __init__(
        self,
        max_workers: int | None = None,
        profile_serialization: bool = True,
        mp_context: "multiprocessing.context.BaseContext | str | None" = None,
    ) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self.profile_serialization = profile_serialization
        self._mp_context = _resolve_mp_context(mp_context)
        self._pool: ProcessPoolExecutor | None = None

    @property
    def start_method(self) -> str:
        """Start method of the pinned multiprocessing context."""
        return self._mp_context.get_start_method()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=self._mp_context
            )
        return self._pool

    def join_regions(
        self,
        region_keys: list[tuple[np.ndarray, np.ndarray]],
        condition: "JoinCondition | list[JoinCondition]",
        keys2_sorted: bool = False,
    ) -> RegionJoinResult:
        """Ship each non-empty region to the worker pool and count there.

        A worker process dying mid-batch breaks the whole pool; the broken
        executor is discarded (a later call lazily starts a fresh one) and
        the failure surfaces as :class:`WorkerCrashError` so callers can
        restore from a checkpoint instead of unpicking executor internals.
        """
        self._ensure_open()
        try:
            execution = join_assigned_regions(
                self._ensure_pool(),
                region_keys,
                condition,
                keys2_sorted=keys2_sorted,
                profile_serialization=self.profile_serialization,
            )
        except BrokenProcessPool as error:
            self._pool.shutdown(wait=False)
            self._pool = None
            raise WorkerCrashError(
                "multiprocess worker pool broke mid-batch (a worker process "
                f"died: {error}); the pool was discarded -- restore the run "
                "from its last checkpoint"
            ) from error
        return RegionJoinResult(
            per_machine_output=execution.per_machine_output,
            per_machine_seconds=execution.per_machine_seconds,
            wall_seconds=execution.wall_seconds,
            bytes_pickled=(
                execution.bytes_pickled if self.profile_serialization else None
            ),
            bytes_unpickled=(
                execution.bytes_unpickled if self.profile_serialization else None
            ),
            worker_pids=execution.worker_pids,
        )

    def close(self) -> None:
        """Shut the worker pool down; idempotent, and final (see the base)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        super().close()


class _StickyWorkerState:
    """One sticky worker's resident state and command handlers.

    The worker process owns the :class:`SortedRegionState` pair of every
    machine assigned to it and mutates it in place batch after batch --
    exactly the folds the engine's in-process incremental counter performs,
    in the same order, so the counted deltas are bit-identical to the
    simulated backend's.  The handlers live on this (in-process testable)
    class; :func:`_sticky_worker_main` is only the recv/dispatch/send loop
    around it.

    Every array handler input is a zero-copy view into the engine's shared
    segment; :class:`SortedRegionState` copies on insert/rebuild, so no view
    survives past its command.
    """

    def __init__(self, machines: "tuple[int, ...]") -> None:
        self.machines = machines
        self.state1 = {machine: SortedRegionState() for machine in machines}
        self.state2 = {machine: SortedRegionState() for machine in machines}
        self.condition: "JoinCondition | None" = None
        self.transposed: "JoinCondition | None" = None

    def init(self, condition: JoinCondition, transposed: JoinCondition):
        """Adopt the stream's conditions; reply with this worker's pid."""
        self.condition = condition
        self.transposed = transposed
        return ("ok", os.getpid())

    def count(self, arrays: "list[np.ndarray]"):
        """Fold one batch's deltas into the resident state and count.

        ``arrays`` is the batch's machine-major layout -- four arrays per
        machine: R1 arrival indices, R1 keys, R2 arrival indices, R2 keys.
        Per owned machine this replays the engine's exact delta
        decomposition ``C(new1, state2 + new2) + C(state1, new2)``: insert
        the R2 arrivals, search the updated sorted R2 state per new R1 key,
        search the *pre-insert* sorted R1 state per new R2 key under the
        transposed condition, then insert the R1 arrivals.  Empty sides are
        skipped (and not timed), mirroring :class:`SimulatedBackend`.
        """
        counted = []
        for machine in self.machines:
            idx1, keys1, idx2, keys2 = arrays[4 * machine : 4 * machine + 4]
            state1 = self.state1[machine]
            state2 = self.state2[machine]
            old_keys1 = state1.keys
            state2.insert(idx2, keys2)
            out_a = out_b = 0
            sec_a = sec_b = 0.0
            if len(keys1) and len(state2.keys):
                started = perf_counter()
                out_a = count_join_output(
                    keys1, state2.keys, self.condition, keys2_sorted=True
                )
                sec_a = perf_counter() - started
            if len(keys2) and len(old_keys1):
                started = perf_counter()
                out_b = count_join_output(
                    keys2, old_keys1, self.transposed, keys2_sorted=True
                )
                sec_b = perf_counter() - started
            state1.insert(idx1, keys1)
            counted.append((machine, int(out_a), int(out_b), sec_a, sec_b))
        return ("counted", counted)

    def evict(self, arrays: "list[np.ndarray]"):
        """Drop expired arrival indices from every owned machine's state.

        ``arrays`` is the per-side expired index pair; the reply carries
        how many state entries this worker actually held and dropped, so
        the engine can check its ownership mirror against reality.
        """
        expired1, expired2 = arrays
        dropped = 0
        for machine in self.machines:
            dropped += self.state1[machine].evict(expired1)
            dropped += self.state2[machine].evict(expired2)
        return ("evicted", dropped)

    def rebase(self, trim1: int, trim2: int):
        """Shift every resident arrival index below the engine's trim points."""
        for machine in self.machines:
            self.state1[machine].rebase(trim1)
            self.state2[machine].rebase(trim2)
        return ("rebased",)

    def resize(self, machines: "tuple[int, ...]"):
        """Adopt a new owned-machine set, discarding all resident state.

        A fleet resize reassigns machine ownership wholesale, so the worker
        starts from empty state for its new machines; the engine follows up
        with an :meth:`install` carrying every machine's complete
        post-resize state (the migration plan's new assignments).  The
        reply repeats the worker's pid so the engine can rebuild its
        machine-to-pid map for the new fleet.
        """
        self.machines = tuple(machines)
        self.state1 = {machine: SortedRegionState() for machine in self.machines}
        self.state2 = {machine: SortedRegionState() for machine in self.machines}
        return ("resized", os.getpid())

    def install(self, arrays: "list[np.ndarray]"):
        """Replace every owned machine's state with migrated assignments.

        Same machine-major layout as :meth:`count`, but the index/key pairs
        are each machine's *complete* post-migration state (the migration
        plan's new assignments, keys gathered engine-side).  The rebuild is
        the same stable key-sort :meth:`SortedRegionState.from_indices`
        performs, so post-migration worker state is bit-identical to the
        in-process engine's.
        """
        for machine in self.machines:
            idx1, keys1, idx2, keys2 = arrays[4 * machine : 4 * machine + 4]
            self.state1[machine] = SortedRegionState.from_pairs(idx1, keys1)
            self.state2[machine] = SortedRegionState.from_pairs(idx2, keys2)
        return ("installed",)

    def handle(self, command: tuple, reader: ShmReader):
        """Dispatch one control-channel command tuple to its handler."""
        op = command[0]
        if op == "count":
            return self.count(reader.arrays(command[1]))
        if op == "evict":
            return self.evict(reader.arrays(command[1]))
        if op == "rebase":
            return self.rebase(command[1], command[2])
        if op == "install":
            return self.install(reader.arrays(command[1]))
        if op == "resize":
            return self.resize(command[1])
        if op == "init":
            return self.init(command[1], command[2])
        raise ValueError(f"unknown sticky-worker command {op!r}")


def _sticky_worker_main(channel, machines: "tuple[int, ...]") -> None:
    """Entry point of one sticky worker process: recv, handle, reply.

    Runs until a ``close`` command or the engine's end of the pipe
    disappears.  Failures inside a handler are shipped back as an
    ``("error", message)`` reply instead of killing the worker silently --
    the backend raises them engine-side.  The shared-memory reader only
    ever unmaps; the engine's arena owns every segment.
    """
    worker = _StickyWorkerState(machines)
    reader = ShmReader()
    try:
        while True:
            try:
                command = channel.recv()
            except EOFError:
                break
            if command[0] == "close":
                channel.send(("closed",))
                break
            try:
                reply = worker.handle(command, reader)
            except Exception as error:
                channel.send(("error", f"{type(error).__name__}: {error}"))
            else:
                channel.send(reply)
    finally:
        reader.close()
        channel.close()


class StickyWorkerBackend(ExecutionBackend):
    """Resident per-worker join state over shared memory (zero-copy deltas).

    The multiprocess pool backend re-pickles every region's *full* key
    arrays through its executor channel on every batch; for a persistent
    streaming join that serialization tax dominates the join itself.  This
    backend keeps the state where the work is: each of ``max_workers``
    long-lived processes owns the :class:`SortedRegionState` pair of the
    machines assigned to it (machine ``m`` lives on worker ``m % W``),
    resident across batches.  Per batch the engine ships only the *delta*
    -- each machine's new-arrival index/key arrays, written once into a
    :class:`~repro.streaming.shm.ShmArena` shared-memory segment -- plus a
    tiny pickled control message per worker.  Evictions, history-compaction
    trim points and migration moves travel the same way: control messages
    with any array payload in shared memory, never through pickle.

    The engine drives the backend through the state-ownership protocol
    (``bind`` → per-batch ``count_batch`` / ``evict_state`` /
    ``rebase_state`` / ``install_state`` → ``close``) and keeps a
    per-machine arrival-index mirror so migration planning and resident
    accounting need no state readback.  Counted outputs are bit-identical
    to :class:`SimulatedBackend` -- the workers replay the exact same
    incremental fold on the exact same arrays.

    Parameters
    ----------
    max_workers:
        Worker process count (capped at the machine count on ``bind``);
        defaults to the CPU count.
    profile_serialization:
        Meter the control channel's pickled bytes per command
        (``bytes_pickled`` / ``bytes_unpickled``).  The shared-memory
        payload (``bytes_shm``) is always metered -- it is known exactly
        from the arena write, costing nothing.
    mp_context:
        Multiprocessing context or start-method name; defaults to
        :func:`default_mp_context` (forkserver/spawn, never fork).

    A sticky backend is bound to *one* stream: its workers' state survives
    across batches, so re-binding (a second engine run) or any use after
    ``close()`` raises ``RuntimeError`` instead of silently mixing two
    streams' state.  ``close()`` shuts the workers down and unlinks the
    shared segment -- the test suite asserts nothing is left in
    ``/dev/shm``.
    """

    name = "sticky"
    owns_state = True

    def __init__(
        self,
        max_workers: int | None = None,
        profile_serialization: bool = True,
        mp_context: "multiprocessing.context.BaseContext | str | None" = None,
    ) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self.profile_serialization = profile_serialization
        self._mp_context = _resolve_mp_context(mp_context)
        self._arena: "ShmArena | None" = None
        self._channels: list = []
        self._processes: list = []
        self._num_machines: "int | None" = None
        self._machine_pids: "np.ndarray | None" = None
        self._bytes_pickled = 0
        self._bytes_unpickled = 0
        self._bytes_shm = 0
        self._commands_since_drain = False

    @property
    def start_method(self) -> str:
        """Start method of the pinned multiprocessing context."""
        return self._mp_context.get_start_method()

    @property
    def bound(self) -> bool:
        """Whether :meth:`bind` has attached this backend to a stream."""
        return self._num_machines is not None

    def _ensure_bound(self) -> None:
        """Raise unless the backend is open and bound to a stream."""
        self._ensure_open()
        if not self.bound:
            raise RuntimeError(
                "StickyWorkerBackend is not bound to a stream yet; the "
                "engine calls bind() at the start of its run"
            )

    def bind(
        self,
        num_machines: int,
        condition: JoinCondition,
        transposed: JoinCondition,
    ) -> None:
        """Start the workers and assign machine ownership for one stream.

        Machine ``m`` is owned by worker ``m % W`` for the whole run.  A
        sticky backend binds exactly once: the workers' resident state *is*
        the stream's state, so a second ``bind`` (an engine restart onto
        the same backend) raises ``RuntimeError`` -- restarting a stream
        needs a fresh backend, never a silent adoption of stale state.
        """
        self._ensure_open()
        if self.bound:
            raise RuntimeError(
                "StickyWorkerBackend is already bound to a stream and its "
                "workers hold that stream's resident state; create a fresh "
                "backend per run instead of re-binding this one"
            )
        if num_machines <= 0:
            raise ValueError("num_machines must be positive")
        workers = min(
            self.max_workers or os.cpu_count() or 1, num_machines
        )
        self._num_machines = num_machines
        self._arena = ShmArena()
        for worker in range(workers):
            engine_end, worker_end = self._mp_context.Pipe()
            machines = tuple(range(worker, num_machines, workers))
            process = self._mp_context.Process(
                target=_sticky_worker_main,
                args=(worker_end, machines),
                daemon=True,
                name=f"sticky-worker-{worker}",
            )
            process.start()
            worker_end.close()
            self._channels.append(engine_end)
            self._processes.append(process)
        pids = np.zeros(num_machines, dtype=np.int64)
        replies = self._broadcast(("init", condition, transposed))
        for worker, reply in enumerate(replies):
            pids[worker::workers] = reply[1]
        self._machine_pids = pids

    def _crashed(self, worker: int, cause: "BaseException | None" = None):
        """Build the :class:`WorkerCrashError` for a dead worker's channel."""
        process = self._processes[worker]
        error = WorkerCrashError(
            f"sticky worker {worker} (pid {process.pid}) died with exit code "
            f"{process.exitcode} before replying; its resident join state is "
            "lost -- restore the run from its last checkpoint onto a fresh "
            "backend"
        )
        if cause is not None:
            error.__cause__ = cause
        return error

    def _send(self, worker: int, command: tuple) -> None:
        """Send one command to one worker; a broken pipe means it crashed."""
        try:
            self._channels[worker].send(command)
        except (BrokenPipeError, OSError) as error:
            raise self._crashed(worker, error) from error

    def _recv(self, worker: int):
        """Receive one reply, polling so a dead worker can never hang us.

        The engine's copy of the worker end of each pipe is closed right
        after the worker starts, so a worker death *eventually* surfaces as
        ``EOFError`` on ``recv`` -- but a blocking ``recv`` still hangs if
        the pipe breaks in ways that never deliver the EOF.  Polling with a
        liveness check bounds the wait: once the process is dead, one grace
        poll collects any reply it managed to send before exiting, then the
        crash is raised.
        """
        channel = self._channels[worker]
        process = self._processes[worker]
        while True:
            try:
                if channel.poll(0.05):
                    reply = channel.recv()
                    break
            except (EOFError, BrokenPipeError, OSError) as error:
                raise self._crashed(worker, error) from error
            if not process.is_alive():
                try:
                    if channel.poll(0.2):
                        reply = channel.recv()
                        break
                except (EOFError, BrokenPipeError, OSError):
                    pass
                raise self._crashed(worker)
        if self.profile_serialization:
            self._bytes_unpickled += pickled_nbytes(reply)
        if reply[0] == "error":
            raise RuntimeError(f"sticky worker failed: {reply[1]}")
        return reply

    def _broadcast(self, command: tuple) -> list:
        """Send one command to every worker; gather (and check) the replies.

        The command is pickled per worker by the pipe itself; profiling
        measures the payload once and charges it per worker.  Replies are
        collected synchronously -- the arena's segment is only reused after
        every worker has consumed the previous message, which this barrier
        guarantees.  A worker dying mid-command surfaces as
        :class:`WorkerCrashError`, never a hang (see :meth:`_recv`).
        """
        self._commands_since_drain = True
        if self.profile_serialization:
            self._bytes_pickled += pickled_nbytes(command) * len(self._channels)
        for worker in range(len(self._channels)):
            self._send(worker, command)
        return [self._recv(worker) for worker in range(len(self._channels))]

    def _write(self, arrays: "list[np.ndarray]"):
        """Write an array payload into the shared arena; meter its bytes."""
        message = self._arena.write(arrays)
        self._bytes_shm += message.payload_bytes
        return message

    @staticmethod
    def _state_layout(
        indices1: "list[np.ndarray]",
        indices2: "list[np.ndarray]",
        history1: np.ndarray,
        history2: np.ndarray,
    ) -> "list[np.ndarray]":
        """Machine-major array layout: (idx1, keys1, idx2, keys2) per machine."""
        arrays: "list[np.ndarray]" = []
        for idx1, idx2 in zip(indices1, indices2):
            idx1 = np.asarray(idx1, dtype=np.int64)
            idx2 = np.asarray(idx2, dtype=np.int64)
            arrays += [idx1, history1[idx1], idx2, history2[idx2]]
        return arrays

    def count_batch(
        self,
        new1: "list[np.ndarray]",
        new2: "list[np.ndarray]",
        history1: np.ndarray,
        history2: np.ndarray,
    ) -> RegionJoinResult:
        """Ship one batch's per-machine deltas; fold and count worker-side.

        ``new1`` / ``new2`` are the engine's per-machine arrival-index
        arrays; the keys are gathered here and written with the indices to
        the shared arena as one machine-major message.  Workers reply with
        per-machine output counts and join timings; the byte accounting
        accrues on the backend and is drained per batch by the engine
        (:meth:`drain_channel_bytes`), covering every command of the batch,
        not just the count.
        """
        self._ensure_bound()
        start = perf_counter()
        message = self._write(
            self._state_layout(new1, new2, history1, history2)
        )
        outputs = np.zeros(self._num_machines, dtype=np.int64)
        seconds = np.zeros(self._num_machines)
        for reply in self._broadcast(("count", message)):
            for machine, out_a, out_b, sec_a, sec_b in reply[1]:
                outputs[machine] = out_a + out_b
                seconds[machine] = sec_a + sec_b
        return RegionJoinResult(
            per_machine_output=outputs,
            per_machine_seconds=seconds,
            wall_seconds=perf_counter() - start,
            worker_pids=self._machine_pids.copy(),
        )

    def evict_state(
        self, expired1: np.ndarray, expired2: np.ndarray
    ) -> int:
        """Drop expired arrival indices worker-side; return entries dropped."""
        self._ensure_bound()
        message = self._write(
            [
                np.asarray(expired1, dtype=np.int64),
                np.asarray(expired2, dtype=np.int64),
            ]
        )
        return sum(reply[1] for reply in self._broadcast(("evict", message)))

    def rebase_state(self, trim1: int, trim2: int) -> None:
        """Rebase every worker's arrival indices after history compaction."""
        self._ensure_bound()
        self._broadcast(("rebase", int(trim1), int(trim2)))

    def install_state(
        self,
        assignments1: "list[np.ndarray]",
        assignments2: "list[np.ndarray]",
        history1: np.ndarray,
        history2: np.ndarray,
    ) -> None:
        """Move migrated state between workers through shared memory.

        ``assignments*`` are the migration plan's complete per-machine
        arrival-index arrays; each worker rebuilds its owned machines'
        state from the shared message, so state never crosses the pickle
        channel even when it changes owners.
        """
        self._ensure_bound()
        message = self._write(
            self._state_layout(assignments1, assignments2, history1, history2)
        )
        self._broadcast(("install", message))

    def resize(self, num_machines: int) -> None:
        """Reassign machine ownership across the workers for a new fleet size.

        The worker process count is fixed at :meth:`bind`; a resize only
        redistributes machine ownership (machine ``m`` moves to worker
        ``m % W`` of the *new* numbering) and resets every worker to empty
        state for its new machines.  The engine must follow up with
        :meth:`install_state` carrying the complete post-resize state from
        its migration plan -- a resize without a reinstall would silently
        drop all resident state.
        """
        self._ensure_bound()
        if num_machines <= 0:
            raise ValueError("num_machines must be positive")
        workers = len(self._channels)
        self._commands_since_drain = True
        for worker in range(workers):
            command = ("resize", tuple(range(worker, num_machines, workers)))
            if self.profile_serialization:
                self._bytes_pickled += pickled_nbytes(command)
            self._send(worker, command)
        pids = np.zeros(num_machines, dtype=np.int64)
        for worker in range(workers):
            reply = self._recv(worker)
            pids[worker::workers] = reply[1]
        self._num_machines = num_machines
        self._machine_pids = pids

    def drain_channel_bytes(
        self,
    ) -> "tuple[int | None, int | None, int | None]":
        """Byte accounting since the last drain: (pickled, unpickled, shm).

        The engine calls this once per batch; the totals cover every
        command the batch issued (count, evict, rebase, install).  All
        three are ``None`` when no command ran since the last drain, and
        the pickle totals are ``None`` when profiling is disabled -- the
        shared-memory payload is always measured.
        """
        if not self._commands_since_drain:
            return (None, None, None)
        self._commands_since_drain = False
        pickled, unpickled, shm = (
            self._bytes_pickled,
            self._bytes_unpickled,
            self._bytes_shm,
        )
        self._bytes_pickled = self._bytes_unpickled = self._bytes_shm = 0
        if not self.profile_serialization:
            return (None, None, shm)
        return (pickled, unpickled, shm)

    def join_regions(
        self,
        region_keys: list[tuple[np.ndarray, np.ndarray]],
        condition: "JoinCondition | list[JoinCondition]",
        keys2_sorted: bool = False,
    ) -> RegionJoinResult:
        """Refuse stateless dispatch: sticky workers own their state.

        Shipping full region arrays through this entry point is exactly the
        serialization tax this backend exists to remove, so it raises
        instead -- the engine recognises ``owns_state`` and drives the
        stateful protocol (``bind`` / ``count_batch`` / ...); a decorator
        that hides that flag (e.g. ``SlowConsumerBackend``) cannot be used
        around a sticky backend.
        """
        self._ensure_open()
        raise RuntimeError(
            "StickyWorkerBackend owns its workers' join state and does not "
            "accept stateless join_regions dispatch; the engine must drive "
            "the state-ownership protocol (bind/count_batch/...)"
        )

    def close(self) -> None:
        """Stop the workers and unlink the shared segment (idempotent, final)."""
        for channel in self._channels:
            try:
                channel.send(("close",))
                channel.recv()
            except (OSError, EOFError, BrokenPipeError):
                pass
            channel.close()
        self._channels = []
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - hung-worker backstop
                process.terminate()
                process.join(timeout=10)
        self._processes = []
        if self._arena is not None:
            self._arena.close()
            self._arena = None
        super().close()


class SlowConsumerBackend(ExecutionBackend):
    """Decorate a backend with a deterministic per-batch slowdown.

    Backpressure only matters when the consumer cannot keep up, so the
    pipeline tests and benchmarks need a consumer whose slowness is a
    *parameter*, not an accident of the host machine.  This wrapper adds
    ``seconds_per_call + seconds_per_tuple * probe_tuples`` to every
    execution (``probe_tuples`` counts each task's first-side keys -- the
    batch's new arrivals under the engine's incremental counting).

    By default the delay is **virtual**: it is added to the reported
    ``wall_seconds`` without stalling anything, so simulated-clock tests
    stay instant and exact.  Pass ``sleep=time.sleep`` to really stall the
    calling thread, which is what the real-thread pipeline smoke test uses
    to provoke genuine queue growth.

    Counting results are the inner backend's, untouched: the decorator
    slows the consumer down, it never changes what the consumer computes.
    """

    def __init__(
        self,
        inner: ExecutionBackend,
        seconds_per_call: float = 0.0,
        seconds_per_tuple: float = 0.0,
        sleep=None,
    ) -> None:
        if seconds_per_call < 0 or seconds_per_tuple < 0:
            raise ValueError("slowdown seconds must be non-negative")
        self.inner = inner
        self.seconds_per_call = seconds_per_call
        self.seconds_per_tuple = seconds_per_tuple
        self._sleep = sleep
        self.name = f"slow({inner.name})"
        # A virtual delay makes the reported wall time a *model*, not a
        # measurement; a real sleep keeps the inner backend's domain.
        self.clock_domain = (
            inner.clock_domain if sleep is not None else "simulated"
        )

    def join_regions(
        self,
        region_keys: list[tuple[np.ndarray, np.ndarray]],
        condition: "JoinCondition | list[JoinCondition]",
        keys2_sorted: bool = False,
    ) -> RegionJoinResult:
        """Run the inner backend, slowed by the configured delay."""
        self._ensure_open()
        delay = self.seconds_per_call + self.seconds_per_tuple * sum(
            len(keys1) for keys1, _ in region_keys
        )
        if self._sleep is not None and delay > 0:
            self._sleep(delay)
        result = self.inner.join_regions(
            region_keys, condition, keys2_sorted=keys2_sorted
        )
        return RegionJoinResult(
            per_machine_output=result.per_machine_output,
            per_machine_seconds=result.per_machine_seconds,
            wall_seconds=result.wall_seconds + delay,
            bytes_pickled=result.bytes_pickled,
            bytes_unpickled=result.bytes_unpickled,
            worker_pids=result.worker_pids,
        )

    def close(self) -> None:
        """Close the wrapped backend along with the decorator."""
        self.inner.close()
        super().close()


_BACKENDS: dict[str, type[ExecutionBackend]] = {
    SimulatedBackend.name: SimulatedBackend,
    MultiprocessBackend.name: MultiprocessBackend,
    StickyWorkerBackend.name: StickyWorkerBackend,
}


def make_backend(name: str, **kwargs: object) -> ExecutionBackend:
    """Instantiate an execution backend by its reporting name.

    ``make_backend("simulated")`` or ``make_backend("multiprocess",
    max_workers=4)``; unknown names raise ``ValueError`` listing the
    available backends.
    """
    try:
        backend_cls = _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise ValueError(f"unknown backend {name!r} (available: {known})") from None
    return backend_cls(**kwargs)  # type: ignore[arg-type]
