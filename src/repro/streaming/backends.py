"""Pluggable execution backends for the streaming join engine.

The engine decides *what* to join each micro-batch — the per-machine region
state under the current partitioning — and an :class:`ExecutionBackend`
decides *how* those per-region joins actually run:

* :class:`SimulatedBackend` counts each region's join output in the engine's
  own process (the original simulator loop, extracted).  Cost-model load is
  the quantity of interest; wall timings are recorded but reflect a single
  core.
* :class:`MultiprocessBackend` ships the busy regions to a persistent
  ``ProcessPoolExecutor`` — the same worker-pool machinery as the batch
  :func:`~repro.engine.executor.run_join_multiprocess` — so the incremental
  joins of one batch run in parallel OS processes and the metrics carry
  *real* per-region wall-clock timings.  The pool is created once and reused
  across every batch of the stream, amortising process start-up.

Every backend receives identical per-region key arrays and counts output with
the same exact kernel, so the cost-model numbers, incremental output deltas
and migration plans of a run are backend-independent; only the measured
timings differ.  ``tests/test_backends.py`` locks that equivalence down.

Select a backend by passing it to :class:`StreamingJoinEngine` (default:
simulated) or by name through :func:`make_backend`::

    with make_backend("multiprocess", max_workers=4) as backend:
        engine = StreamingJoinEngine(8, condition, weights, backend=backend)
        result = engine.run(source)
"""

from __future__ import annotations

import abc
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.engine.executor import broadcast_conditions, join_assigned_regions
from repro.joins.conditions import JoinCondition
from repro.joins.local import count_join_output

__all__ = [
    "RegionJoinResult",
    "ExecutionBackend",
    "SimulatedBackend",
    "MultiprocessBackend",
    "SlowConsumerBackend",
    "make_backend",
]


@dataclass
class RegionJoinResult:
    """Output counts and timings of executing one batch's per-region joins.

    Attributes
    ----------
    per_machine_output:
        Exact join output counted for each machine's region state.
    per_machine_seconds:
        Wall-clock seconds spent joining each region (worker time under the
        multiprocess backend, in-process time under the simulated one).
    wall_seconds:
        End-to-end time of the whole execution, including scheduling.
    bytes_pickled, bytes_unpickled:
        Bytes the execution shipped through a serialization channel --
        tasks out, results back over the multiprocess backend's
        ``ProcessPoolExecutor`` pickle channel.  ``None`` (not ``0``) for
        backends with no such channel: the in-process simulated backend
        moves no bytes at all, and reporting renders the column as ``-``
        rather than claiming a measured zero.
    worker_pids:
        OS pid of the process that joined each machine's region (``-1``
        for machines that were never dispatched), or ``None`` for
        in-process backends.  A tracer uses these to stitch per-worker
        child spans under the dispatching batch's span.
    """

    per_machine_output: np.ndarray
    per_machine_seconds: np.ndarray
    wall_seconds: float
    bytes_pickled: "int | None" = None
    bytes_unpickled: "int | None" = None
    worker_pids: "np.ndarray | None" = None

    @property
    def total_output(self) -> int:
        """Total output tuples across machines."""
        return int(self.per_machine_output.sum())


class ExecutionBackend(abc.ABC):
    """How the per-region joins of a micro-batch are executed.

    Backends are resources: :class:`MultiprocessBackend` owns a worker pool,
    so every backend supports ``close()`` and the context-manager protocol.
    A backend may be shared by several engines (e.g. to reuse one pool across
    the schemes of a comparison); an engine only closes a backend it created
    itself.

    ``close()`` is idempotent and final: calling :meth:`join_regions` on a
    closed backend raises ``RuntimeError`` instead of silently resurrecting
    whatever resource the backend owned (a resurrected worker pool has no
    remaining owner to shut it down -- a leak, not a convenience).
    """

    #: Reporting name recorded on the run result.
    name: str = "backend"

    #: Which clock domain the backend's reported timings live in:
    #: ``"real"`` for measured wall-clock seconds, ``"simulated"`` for
    #: modeled ones (see ``docs/observability.md`` on clock domains).
    clock_domain: str = "real"

    #: Set by :meth:`close`; class-level default so subclasses need no
    #: ``__init__`` chaining.
    _closed: bool = False

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called on this backend."""
        return self._closed

    def _ensure_open(self) -> None:
        """Raise ``RuntimeError`` if the backend has been closed."""
        if self._closed:
            raise RuntimeError(
                f"{type(self).__name__} has been closed; create a fresh "
                "backend instead of reusing a closed one"
            )

    @abc.abstractmethod
    def join_regions(
        self,
        region_keys: list[tuple[np.ndarray, np.ndarray]],
        condition: "JoinCondition | list[JoinCondition]",
        keys2_sorted: bool = False,
    ) -> RegionJoinResult:
        """Join each machine's (R1, R2) region state; count exact output.

        ``region_keys[m]`` is machine ``m``'s currently held key arrays.
        Regions with an empty side produce no output and must not be charged
        any work.  ``condition`` is shared by every region, or a list with
        one condition per region (the engine's incremental counting mixes
        the original and transposed orientations in one dispatch).
        ``keys2_sorted`` promises every pair's second array is already
        sorted ascending so the per-task sort can be skipped -- the engine's
        incremental counting relies on this to stay ``O(new log state)`` per
        batch.
        """

    def close(self) -> None:
        """Release any resources held by the backend (idempotent, final)."""
        self._closed = True

    def __enter__(self) -> "ExecutionBackend":
        """Enter a with-block; the backend closes itself on exit."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Close the backend when the with-block ends."""
        self.close()


class SimulatedBackend(ExecutionBackend):
    """Count every region's join in-process (the simulator's original loop)."""

    name = "simulated"

    def join_regions(
        self,
        region_keys: list[tuple[np.ndarray, np.ndarray]],
        condition: "JoinCondition | list[JoinCondition]",
        keys2_sorted: bool = False,
    ) -> RegionJoinResult:
        """Count each non-empty region's join output in the calling process."""
        self._ensure_open()
        conditions = broadcast_conditions(condition, len(region_keys))
        outputs = np.zeros(len(region_keys), dtype=np.int64)
        seconds = np.zeros(len(region_keys))
        start = time.perf_counter()
        for machine, (keys1, keys2) in enumerate(region_keys):
            if len(keys1) == 0 or len(keys2) == 0:
                continue
            region_start = time.perf_counter()
            outputs[machine] = count_join_output(
                keys1, keys2, conditions[machine], keys2_sorted=keys2_sorted
            )
            seconds[machine] = time.perf_counter() - region_start
        return RegionJoinResult(
            per_machine_output=outputs,
            per_machine_seconds=seconds,
            wall_seconds=time.perf_counter() - start,
        )


class MultiprocessBackend(ExecutionBackend):
    """Run each batch's busy regions on a persistent OS-process worker pool.

    Parameters
    ----------
    max_workers:
        Upper bound on concurrent worker processes (defaults to the pool's
        own default, usually the CPU count).
    profile_serialization:
        Measure, per execution, the bytes the task payloads ship through
        the pool's pickle channel and the bytes the results ship back
        (``True`` by default).  This is the ``bytes_pickled`` /
        ``bytes_unpickled`` metric on
        :class:`~repro.streaming.metrics.BatchMetrics` -- the quantity the
        ROADMAP's zero-copy sticky-worker refactor must drive to ~0.  The
        measurement costs one extra serialization pass over each payload;
        disable it for timing-critical sweeps.

    The pool is created lazily on the first batch and kept alive for the
    lifetime of the backend, so a stream of many small batches pays process
    start-up once, not per batch.  ``close()`` shuts the pool down for good:
    a later ``join_regions`` call raises ``RuntimeError`` rather than
    silently starting a fresh pool that no caller would ever shut down.
    """

    name = "multiprocess"

    def __init__(
        self,
        max_workers: int | None = None,
        profile_serialization: bool = True,
    ) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self.profile_serialization = profile_serialization
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def join_regions(
        self,
        region_keys: list[tuple[np.ndarray, np.ndarray]],
        condition: "JoinCondition | list[JoinCondition]",
        keys2_sorted: bool = False,
    ) -> RegionJoinResult:
        """Ship each non-empty region to the worker pool and count there."""
        self._ensure_open()
        execution = join_assigned_regions(
            self._ensure_pool(),
            region_keys,
            condition,
            keys2_sorted=keys2_sorted,
            profile_serialization=self.profile_serialization,
        )
        return RegionJoinResult(
            per_machine_output=execution.per_machine_output,
            per_machine_seconds=execution.per_machine_seconds,
            wall_seconds=execution.wall_seconds,
            bytes_pickled=(
                execution.bytes_pickled if self.profile_serialization else None
            ),
            bytes_unpickled=(
                execution.bytes_unpickled if self.profile_serialization else None
            ),
            worker_pids=execution.worker_pids,
        )

    def close(self) -> None:
        """Shut the worker pool down; idempotent, and final (see the base)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        super().close()


class SlowConsumerBackend(ExecutionBackend):
    """Decorate a backend with a deterministic per-batch slowdown.

    Backpressure only matters when the consumer cannot keep up, so the
    pipeline tests and benchmarks need a consumer whose slowness is a
    *parameter*, not an accident of the host machine.  This wrapper adds
    ``seconds_per_call + seconds_per_tuple * probe_tuples`` to every
    execution (``probe_tuples`` counts each task's first-side keys -- the
    batch's new arrivals under the engine's incremental counting).

    By default the delay is **virtual**: it is added to the reported
    ``wall_seconds`` without stalling anything, so simulated-clock tests
    stay instant and exact.  Pass ``sleep=time.sleep`` to really stall the
    calling thread, which is what the real-thread pipeline smoke test uses
    to provoke genuine queue growth.

    Counting results are the inner backend's, untouched: the decorator
    slows the consumer down, it never changes what the consumer computes.
    """

    def __init__(
        self,
        inner: ExecutionBackend,
        seconds_per_call: float = 0.0,
        seconds_per_tuple: float = 0.0,
        sleep=None,
    ) -> None:
        if seconds_per_call < 0 or seconds_per_tuple < 0:
            raise ValueError("slowdown seconds must be non-negative")
        self.inner = inner
        self.seconds_per_call = seconds_per_call
        self.seconds_per_tuple = seconds_per_tuple
        self._sleep = sleep
        self.name = f"slow({inner.name})"
        # A virtual delay makes the reported wall time a *model*, not a
        # measurement; a real sleep keeps the inner backend's domain.
        self.clock_domain = (
            inner.clock_domain if sleep is not None else "simulated"
        )

    def join_regions(
        self,
        region_keys: list[tuple[np.ndarray, np.ndarray]],
        condition: "JoinCondition | list[JoinCondition]",
        keys2_sorted: bool = False,
    ) -> RegionJoinResult:
        """Run the inner backend, slowed by the configured delay."""
        self._ensure_open()
        delay = self.seconds_per_call + self.seconds_per_tuple * sum(
            len(keys1) for keys1, _ in region_keys
        )
        if self._sleep is not None and delay > 0:
            self._sleep(delay)
        result = self.inner.join_regions(
            region_keys, condition, keys2_sorted=keys2_sorted
        )
        return RegionJoinResult(
            per_machine_output=result.per_machine_output,
            per_machine_seconds=result.per_machine_seconds,
            wall_seconds=result.wall_seconds + delay,
            bytes_pickled=result.bytes_pickled,
            bytes_unpickled=result.bytes_unpickled,
            worker_pids=result.worker_pids,
        )

    def close(self) -> None:
        """Close the wrapped backend along with the decorator."""
        self.inner.close()
        super().close()


_BACKENDS: dict[str, type[ExecutionBackend]] = {
    SimulatedBackend.name: SimulatedBackend,
    MultiprocessBackend.name: MultiprocessBackend,
}


def make_backend(name: str, **kwargs: object) -> ExecutionBackend:
    """Instantiate an execution backend by its reporting name.

    ``make_backend("simulated")`` or ``make_backend("multiprocess",
    max_workers=4)``; unknown names raise ``ValueError`` listing the
    available backends.
    """
    try:
        backend_cls = _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise ValueError(f"unknown backend {name!r} (available: {known})") from None
    return backend_cls(**kwargs)  # type: ignore[arg-type]
