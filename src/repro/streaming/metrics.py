"""Per-batch and end-to-end metrics of a streaming join run.

The quantities mirror the batch pipeline's cost accounting (everything is in
cost-model units, ``w_i * input + w_o * output``) extended with the streaming
specifics: migration volume, rebuild charges and per-batch throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.streaming.incremental import SortedRegionState

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.streaming.migration import MigrationPlan

__all__ = ["BatchMetrics", "StreamRunResult"]


@dataclass
class BatchMetrics:
    """Everything measured while processing one micro-batch.

    Attributes
    ----------
    batch_index:
        The source's ``MicroBatch.index`` for this batch (reporting only;
        any strictly increasing numbering is accepted).
    stream_position:
        The engine's own zero-based processed-batch counter.  All
        batch-counted behaviour -- window liveness, drift warm-up and
        cool-down -- keys off this, so it is independent of the source's
        numbering; for a contiguous zero-based source the two coincide.
    new_tuples:
        Arrivals in the batch (both sides, before replication).
    per_machine_load:
        Cost-model load charged to each machine for this batch: routed
        arrivals (with replication) and migrated tuples at the input cost,
        plus produced output at the output cost, plus the rebuild's
        statistics charge.
    output_delta:
        Output tuples produced cluster-wide by this batch.
    migrated_tuples:
        Tuples shipped between machines by a repartitioning in this batch.
    tuples_evicted:
        Retained state entries dropped by the window policy after this batch
        (summed over machines and sides; a tuple replicated on two machines
        counts twice, because two state slots were freed).
    bytes_freed:
        Resident bytes released by those evictions (16 bytes per state
        entry: float64 key + int64 arrival index).
    resident_tuples:
        State entries held across all machines and both sides at the end of
        the batch (after eviction and any migration) -- the quantity a
        window policy bounds.
    resident_history_tuples:
        Entries of the engine's flat per-side key histories still resident
        at the end of the batch (both sides, after compaction).  Under a
        bounded window with history compaction this stays O(window); an
        unbounded run retains the whole stream here (it is the
        verification ground truth).
    resident_live_entries:
        Entries of the per-side live arrival-index sets at the end of the
        batch (zero for unbounded runs, which skip liveness bookkeeping).
    history_tuples_trimmed:
        Key-history entries discarded by history compaction after this
        batch (both sides) -- the dead prefix below the window's safe trim
        point.
    rebuild_cost:
        Statistics charge of rebuilding the histogram in this batch (zero
        when no rebuild happened).
    repartitioned:
        Whether a new partitioning was adopted during this batch.
    live_imbalance, predicted_imbalance:
        Measured max/mean load ratio of the batch versus the histogram's
        scale-free prediction.
    wall_seconds:
        Real time spent processing the batch (including any rebuild).
    join_seconds:
        Time the execution backend spent running this batch's per-region
        joins (worker wall clock under the multiprocess backend; in-process
        time under the simulated one; partly *modeled* under a
        virtual-delay :class:`~repro.streaming.backends.SlowConsumerBackend`
        -- see ``join_clock``).
    wall_clock, join_clock, queue_clock:
        The clock domain each duration group was measured in: ``"real"``
        (a wall clock actually ticked) or ``"simulated"`` (a modeled or
        discrete-event clock).  ``wall_clock`` covers ``wall_seconds``,
        ``join_clock`` covers ``join_seconds`` /
        ``per_machine_join_seconds`` (it is the backend's
        ``clock_domain``), and ``queue_clock`` covers
        ``producer_stall_seconds`` / ``consumer_idle_seconds`` (tagged by
        the pipeline; ``"simulated"`` under ``mode="simulated"``).
        Summing or comparing seconds across different domains is a
        category error -- the streaming tables render the domains
        explicitly so the mix is visible.
    bytes_pickled, bytes_unpickled:
        Bytes this batch shipped through the execution backend's
        serialization channel: task payloads out (``bytes_pickled``) and
        result payloads back (``bytes_unpickled``) over the multiprocess
        backend's ``ProcessPoolExecutor`` pickle channel.  ``None`` when
        the backend has no such channel (the in-process simulated backend)
        or profiling was disabled -- reporting renders ``-`` rather than a
        measured zero.  This is the per-batch serialization tax the
        zero-copy sticky-worker backend drives to ~0.
    bytes_shm:
        Bytes this batch shipped through a shared-memory arena instead of
        the pickle channel -- the sticky backend's per-batch delta payload
        (new-arrival index/key arrays, eviction sets, migrated state).
        ``None`` for backends without a shared-memory transport.  Together
        with ``bytes_pickled`` this shows *where* the batch's data moved:
        sticky steady-state batches report near-zero pickled bytes and the
        whole delta here.
    per_machine_join_seconds:
        The backend's per-region join timings, summed over the batch's
        executions (the incremental count, plus the post-migration recount
        on repartitioning batches).
    per_machine_output_delta:
        Exact incremental output produced by each machine in this batch
        (``output_delta`` is its sum); ``None`` before the first build.
    migration_plan:
        The :class:`~repro.streaming.migration.MigrationPlan` adopted in
        this batch, or ``None`` when no repartitioning happened.  Kept so
        cross-backend equivalence tests can compare plans exactly; the
        plan's per-machine state index arrays are dropped (emptied) before
        storing so a run result never pins full-history snapshots.
    queue_depth:
        Pipelined runs only: batches sitting in the bounded queue at the
        moment this batch was popped, including itself (so a consumer that
        keeps up reads 1).  Zero for synchronous runs.
    batches_shed, tuples_shed:
        Pipelined runs under the ``shed`` policy: whole batches (and their
        tuples) dropped at the full queue since the previous consumed
        batch.  Shed input never reaches the engine -- these count what the
        run's output is missing relative to a lossless run.
    producer_stall_seconds:
        Pipelined runs under the ``block`` policy: how long the producer
        was blocked on the full queue since the previous consumed batch.
    consumer_idle_seconds:
        Pipelined runs: how long the consumer waited on an empty queue
        before this batch arrived (a fast consumer's idle time mirrors a
        slow consumer's stall/shed).
    resized_from:
        The previous fleet size when a mid-stream
        :meth:`~repro.streaming.engine.StreamingJoinEngine.resize` was
        folded into this batch (its migration volume and rebuild charge are
        accounted here); ``None`` for ordinary batches.
    """

    batch_index: int
    new_tuples: int
    per_machine_load: np.ndarray
    output_delta: int
    stream_position: int = 0
    migrated_tuples: int = 0
    tuples_evicted: int = 0
    bytes_freed: int = 0
    resident_tuples: int = 0
    resident_history_tuples: int = 0
    resident_live_entries: int = 0
    history_tuples_trimmed: int = 0
    rebuild_cost: float = 0.0
    repartitioned: bool = False
    live_imbalance: float = 1.0
    predicted_imbalance: float = 1.0
    wall_seconds: float = 0.0
    join_seconds: float = 0.0
    wall_clock: str = "real"
    join_clock: str = "real"
    queue_clock: str = "real"
    bytes_pickled: int | None = None
    bytes_unpickled: int | None = None
    bytes_shm: int | None = None
    per_machine_join_seconds: np.ndarray | None = None
    per_machine_output_delta: np.ndarray | None = None
    migration_plan: "MigrationPlan | None" = None
    queue_depth: int = 0
    batches_shed: int = 0
    tuples_shed: int = 0
    producer_stall_seconds: float = 0.0
    consumer_idle_seconds: float = 0.0
    resized_from: int | None = None

    #: Bytes per retained state entry (float64 key + int64 arrival index)
    #: and per history / live-set entry (one float64 key, one int64 index
    #: respectively).
    STATE_BYTES = SortedRegionState.BYTES_PER_TUPLE
    KEY_BYTES = 8
    INDEX_BYTES = 8

    @property
    def resident_bytes(self) -> int:
        """Total resident engine footprint at the end of the batch, in bytes.

        Counts the per-machine join state (16 bytes per entry), the flat
        per-side key histories (8 bytes per key) and the live arrival-index
        sets (8 bytes per index).  This is the quantity history compaction
        bounds: under a bounded window every term is O(window), while
        without compaction the history and live-set terms grow with the
        stream even though the join state is bounded.
        """
        return (
            self.resident_tuples * self.STATE_BYTES
            + self.resident_history_tuples * self.KEY_BYTES
            + self.resident_live_entries * self.INDEX_BYTES
        )

    @property
    def max_load(self) -> float:
        """Load of the busiest machine in this batch."""
        return float(self.per_machine_load.max()) if len(self.per_machine_load) else 0.0

    @property
    def mean_load(self) -> float:
        """Mean machine load in this batch."""
        return float(self.per_machine_load.mean()) if len(self.per_machine_load) else 0.0

    @property
    def throughput(self) -> float:
        """Modelled throughput: arrivals per unit of busiest-machine work.

        ``nan`` when the batch charged no load at all (e.g. arrivals
        buffered before the initial build, or an empty batch) -- the ratio
        is undefined there, and reporting renders it as ``-`` instead of
        the misleading ``inf`` it used to propagate.
        """
        max_load = self.max_load
        return self.new_tuples / max_load if max_load > 0 else float("nan")


@dataclass
class StreamRunResult:
    """End-to-end accounting of one engine run over one stream.

    Attributes
    ----------
    scheme:
        Reporting name of the policy that drove the run.
    num_machines:
        Cluster size ``J``.
    backend:
        Reporting name of the execution backend that ran the per-region
        joins (``"simulated"`` or ``"multiprocess"``).
    window:
        Reporting name of the window policy that bounded the retained state
        (``"unbounded"``, ``"batches:8"``, ``"tuples:5000"``, ...).
    counting:
        How per-batch output deltas were computed: ``"incremental"``
        (maintained sorted state, ``O(new log state)`` per batch) or
        ``"recount"`` (the legacy full per-region recount).
    batches:
        Per-batch metrics in stream order.
    cumulative_load:
        Total cost-model load charged to each machine over the whole run
        (including migration and rebuild charges).
    total_output:
        Output tuples produced over the run.
    expected_output:
        Exact output of joining the full history (when verification ran).
        Only computed for unbounded runs: under a window the retained
        history is no longer the ground truth, so windowed runs leave this
        ``None`` (the window property tests pin windowed semantics against
        an independent reference instead).
    output_correct:
        Whether ``total_output`` matched the exact count; ``None`` when the
        run skipped (or could not run) verification.
    backpressure:
        Reporting name of the backpressure policy when the run went through
        a :class:`~repro.streaming.pipeline.StreamingPipeline` (``"block"``,
        ``"shed"``, ``"coalesce"``); ``None`` for synchronous runs.
    queue_batches:
        The pipeline's queue bound in batches (``None`` for synchronous
        runs *and* for pipelined runs with an unbounded queue -- check
        ``backpressure`` to distinguish them).
    wall_clock, join_clock:
        Clock domains of the run's wall and join timings (``"real"`` or
        ``"simulated"``; the batch-level tags, hoisted) -- see
        :class:`BatchMetrics`.
    queue_clock:
        Clock domain of the queue timings (stall/idle); ``None`` for
        synchronous runs, which have no queue.
    checkpoints_taken:
        How many :class:`~repro.streaming.checkpoint.StreamCheckpoint`
        snapshots the engine captured during the run.
    restores:
        How many times this run was resumed from a checkpoint (a crash
        recovery increments it; an uninterrupted run reports 0).
    """

    scheme: str
    num_machines: int
    backend: str = "simulated"
    window: str = "unbounded"
    counting: str = "incremental"
    batches: list[BatchMetrics] = field(default_factory=list)
    cumulative_load: np.ndarray | None = None
    total_output: int = 0
    expected_output: int | None = None
    output_correct: bool | None = None
    backpressure: str | None = None
    queue_batches: int | None = None
    wall_clock: str = "real"
    join_clock: str = "real"
    queue_clock: str | None = None
    checkpoints_taken: int = 0
    restores: int = 0

    @property
    def num_batches(self) -> int:
        """Batches processed over the run."""
        return len(self.batches)

    @property
    def total_tuples(self) -> int:
        """Stream arrivals processed (both sides, before replication)."""
        return sum(batch.new_tuples for batch in self.batches)

    @property
    def max_machine_load(self) -> float:
        """Cumulative load of the busiest machine -- what balancing minimises."""
        if self.cumulative_load is None or len(self.cumulative_load) == 0:
            return 0.0
        return float(self.cumulative_load.max())

    @property
    def mean_machine_load(self) -> float:
        """Mean cumulative machine load."""
        if self.cumulative_load is None or len(self.cumulative_load) == 0:
            return 0.0
        return float(self.cumulative_load.mean())

    @property
    def load_imbalance(self) -> float:
        """Cumulative max/mean load ratio (1.0 is perfectly balanced)."""
        mean = self.mean_machine_load
        return self.max_machine_load / mean if mean > 0 else 1.0

    @property
    def latency_cost(self) -> float:
        """Sum over batches of the busiest machine's load.

        Models end-to-end latency when batches are barriers: every batch
        waits for its slowest machine.
        """
        return float(sum(batch.max_load for batch in self.batches))

    @property
    def total_migrated(self) -> int:
        """Tuples moved between machines by repartitionings."""
        return sum(batch.migrated_tuples for batch in self.batches)

    @property
    def total_evicted(self) -> int:
        """State entries dropped by the window policy over the run."""
        return sum(batch.tuples_evicted for batch in self.batches)

    @property
    def total_bytes_freed(self) -> int:
        """Resident bytes released by window evictions over the run."""
        return sum(batch.bytes_freed for batch in self.batches)

    @property
    def peak_resident_tuples(self) -> int:
        """Largest end-of-batch resident state seen during the run.

        This is what a window policy bounds: under a sliding window it
        plateaus at roughly the window's tuple capacity (times the
        replication factor), while an unbounded run grows linearly with the
        stream.
        """
        if not self.batches:
            return 0
        return max(batch.resident_tuples for batch in self.batches)

    @property
    def peak_resident_bytes(self) -> int:
        """Largest end-of-batch total footprint (state + history + live sets).

        This is what history compaction bounds: a windowed compacted run
        plateaus, while both the unbounded run and an uncompacted windowed
        run keep growing (the latter in its history and live sets only).
        """
        if not self.batches:
            return 0
        return max(batch.resident_bytes for batch in self.batches)

    @property
    def total_history_trimmed(self) -> int:
        """Key-history entries discarded by compaction over the run."""
        return sum(batch.history_tuples_trimmed for batch in self.batches)

    @property
    def num_repartitions(self) -> int:
        """Repartitionings adopted during the run."""
        return sum(1 for batch in self.batches if batch.repartitioned)

    @property
    def num_resizes(self) -> int:
        """Mid-stream fleet resizes folded into this run's batches."""
        return sum(1 for batch in self.batches if batch.resized_from is not None)

    @property
    def wall_seconds(self) -> float:
        """Real time spent processing the whole stream."""
        return float(sum(batch.wall_seconds for batch in self.batches))

    @property
    def join_seconds(self) -> float:
        """Real time the backend spent on per-region joins over the run."""
        return float(sum(batch.join_seconds for batch in self.batches))

    @property
    def mean_throughput(self) -> float:
        """Modelled stream throughput: arrivals per unit of latency cost.

        ``nan`` for degenerate runs that charged no load (zero batches, or
        an empty stream) -- previously this emitted ``inf``, which crept
        into reports as a claim of infinite throughput.
        """
        latency = self.latency_cost
        return self.total_tuples / latency if latency > 0 else float("nan")

    @property
    def total_bytes_pickled(self) -> int | None:
        """Bytes shipped to workers over the run's serialization channel.

        ``None`` when no batch measured the channel (in-process backends,
        or profiling disabled) -- distinct from a measured total of zero.
        """
        measured = [
            batch.bytes_pickled
            for batch in self.batches
            if batch.bytes_pickled is not None
        ]
        return sum(measured) if measured else None

    @property
    def total_bytes_unpickled(self) -> int | None:
        """Bytes shipped back from workers over the run (``None``: unmeasured)."""
        measured = [
            batch.bytes_unpickled
            for batch in self.batches
            if batch.bytes_unpickled is not None
        ]
        return sum(measured) if measured else None

    @property
    def total_bytes_shm(self) -> int | None:
        """Bytes shipped through shared memory over the run (``None``: none).

        The sticky backend's zero-copy payload total; ``None`` for
        backends without a shared-memory transport, so the ``shm KB``
        column renders ``-`` exactly like the pickle columns do.
        """
        measured = [
            batch.bytes_shm
            for batch in self.batches
            if batch.bytes_shm is not None
        ]
        return sum(measured) if measured else None

    @property
    def clock_domains(self) -> str:
        """Compact clock-domain label: ``"real"`` or the simulated parts.

        ``"real"`` when every duration group was measured on a real clock;
        otherwise the simulated groups are named explicitly (e.g.
        ``"queue:sim"`` for a simulated-clock pipeline whose wall and join
        times are real) so no table can pass a modeled second off as a
        measured one.
        """
        parts = []
        if self.wall_clock != "real":
            parts.append("wall:sim")
        if self.join_clock != "real":
            parts.append("join:sim")
        if self.queue_clock is not None and self.queue_clock != "real":
            parts.append("queue:sim")
        return " ".join(parts) if parts else "real"

    @property
    def peak_queue_depth(self) -> int:
        """Deepest the pipeline queue got at any pop (0 when not pipelined)."""
        if not self.batches:
            return 0
        return max(batch.queue_depth for batch in self.batches)

    @property
    def total_batches_shed(self) -> int:
        """Whole batches dropped by the backpressure policy over the run."""
        return sum(batch.batches_shed for batch in self.batches)

    @property
    def total_tuples_shed(self) -> int:
        """Tuples dropped with those shed batches over the run."""
        return sum(batch.tuples_shed for batch in self.batches)

    @property
    def producer_stall_seconds(self) -> float:
        """Total time the producer spent blocked on the full queue."""
        return float(
            sum(batch.producer_stall_seconds for batch in self.batches)
        )

    @property
    def consumer_idle_seconds(self) -> float:
        """Total time the consumer spent waiting on the empty queue."""
        return float(
            sum(batch.consumer_idle_seconds for batch in self.batches)
        )
