"""The synthetic X dataset of the paper's evaluation (section VI-A).

Each of the two relations R1 and R2 has two independently generated segments
whose sizes are in 20/80 proportion:

* the *first* (small) segment has ``x`` tuples with keys uniform in
  ``[0, x/6]``;
* the *second* (large) segment has ``y = 4x`` tuples with keys uniform in
  ``[2y, 6y]``.

Because both small segments live in a narrow low-key range while the large
segments are spread over a wide high-key range, joining the small segments
produces the majority of the output: a textbook case of join product skew
with only moderate redistribution skew.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.zipf import uniform_keys
from repro.joins.relations import Relation

__all__ = ["XDatasetConfig", "generate_x_dataset"]


@dataclass(frozen=True)
class XDatasetConfig:
    """Configuration of the X dataset generator.

    Parameters
    ----------
    small_segment_size:
        The paper's ``x``: number of tuples in the first (small) segment of
        each relation.  The second segment has ``4 * x`` tuples, so each
        relation has ``5 * x`` tuples in total.
    seed:
        Seed of the deterministic random generator.
    """

    small_segment_size: int
    seed: int = 11

    def __post_init__(self) -> None:
        if self.small_segment_size < 6:
            raise ValueError("small_segment_size must be at least 6")

    @property
    def relation_size(self) -> int:
        """Total tuples per relation (``5 * x``)."""
        return 5 * self.small_segment_size

    @property
    def large_segment_size(self) -> int:
        """Tuples in the second segment (``4 * x``)."""
        return 4 * self.small_segment_size


def _generate_relation(name: str, config: XDatasetConfig,
                       rng: np.random.Generator) -> Relation:
    x = config.small_segment_size
    y = config.large_segment_size
    small = uniform_keys(x, 0, x // 6, rng)
    large = uniform_keys(y, 2 * y, 6 * y, rng)
    keys = np.concatenate([small, large])
    rng.shuffle(keys)
    return Relation.from_keys(name, keys)


def generate_x_dataset(config: XDatasetConfig) -> tuple[Relation, Relation]:
    """Generate the two independently generated relations (R1, R2)."""
    rng = np.random.default_rng(config.seed)
    r1 = _generate_relation("x_r1", config, rng)
    r2 = _generate_relation("x_r2", config, rng)
    return r1, r2
