"""A scaled-down TPC-H-like ORDERS generator with Zipf skew.

The paper's TPC-H joins (B_ICD and BE_OCD, Appendix B) touch only a handful
of ORDERS columns: ``orderkey``, ``custkey``, ``ship_priority``,
``order_priority`` and ``totalprice``.  This generator reproduces those
columns with the skew structure of the Chaudhuri--Narasayya skewed TPC-H
generator: attribute values receive Zipf(z)-distributed multiplicities.

The paper runs scale factor 160 (160 GB, hundreds of millions of tuples);
this reproduction is laptop-scale, so :class:`TPCHConfig` exposes the number
of orders directly and EXPERIMENTS.md records the scale used per experiment.
TPC-H proper has 1.5M orders per scale factor; the helper
:meth:`TPCHConfig.for_scale_factor` keeps that ratio at a reduced base so
relative sizes between scale factors match the paper's scalability setup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.zipf import zipf_keys
from repro.joins.relations import Relation

__all__ = ["TPCHConfig", "generate_orders", "ORDER_PRIORITIES"]

#: TPC-H order priority categories (column O_ORDERPRIORITY).
ORDER_PRIORITIES = (
    "1-URGENT",
    "2-HIGH",
    "3-MEDIUM",
    "4-NOT SPECIFIED",
    "5-LOW",
)


@dataclass(frozen=True)
class TPCHConfig:
    """Configuration of the ORDERS generator.

    Parameters
    ----------
    num_orders:
        Number of tuples to generate.
    zipf_z:
        Skew parameter applied to ``custkey`` and ``ship_priority``
        multiplicities (the paper uses 0.25).
    customers_per_order:
        Ratio of orders to distinct customers; TPC-H has 10 orders per
        customer on average, which we keep.
    ship_priority_levels:
        Number of distinct ship priorities.  TPC-H proper fixes the column
        to 0; the paper's BE_OCD band of width 2 over it only makes sense
        with a populated domain, so we default to 8 levels.
    price_min, price_max:
        Range of ``totalprice`` values (TPC-H orders span roughly
        900 .. 600000).
    seed:
        Seed of the deterministic random generator.
    """

    num_orders: int
    zipf_z: float = 0.25
    customers_per_order: float = 0.1
    ship_priority_levels: int = 8
    price_min: float = 900.0
    price_max: float = 600000.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_orders <= 0:
            raise ValueError("num_orders must be positive")
        if not 0 < self.customers_per_order <= 1:
            raise ValueError("customers_per_order must be in (0, 1]")
        if self.ship_priority_levels <= 0:
            raise ValueError("ship_priority_levels must be positive")
        if self.price_max <= self.price_min:
            raise ValueError("price_max must exceed price_min")

    @property
    def num_customers(self) -> int:
        """Number of distinct customers implied by the configuration."""
        return max(1, int(round(self.num_orders * self.customers_per_order)))

    @classmethod
    def for_scale_factor(
        cls, scale_factor: float, orders_per_sf: int = 15_000, **kwargs
    ) -> "TPCHConfig":
        """Build a configuration proportional to a TPC-H scale factor.

        The paper uses scale factors 80/160/320; ``orders_per_sf`` rescales
        the 1.5M-orders-per-SF ratio of real TPC-H down to laptop scale
        while preserving proportions between scale factors.
        """
        if scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        return cls(num_orders=int(scale_factor * orders_per_sf), **kwargs)


def generate_orders(config: TPCHConfig) -> Relation:
    """Generate the ORDERS relation described by ``config``.

    Columns: ``orderkey`` (unique, shuffled), ``custkey`` (Zipf-skewed),
    ``ship_priority`` (Zipf-skewed small domain), ``order_priority``
    (categorical index into :data:`ORDER_PRIORITIES`), ``totalprice``
    (uniform float).  The join key column defaults to ``orderkey``.
    """
    rng = np.random.default_rng(config.seed)
    n = config.num_orders

    orderkey = rng.permutation(np.arange(1, n + 1, dtype=np.int64))
    custkey = zipf_keys(
        num_tuples=n,
        num_values=config.num_customers,
        z=config.zipf_z,
        rng=rng,
    )
    ship_priority = zipf_keys(
        num_tuples=n,
        num_values=config.ship_priority_levels,
        z=config.zipf_z,
        rng=rng,
        domain_min=0,
    )
    order_priority = rng.integers(0, len(ORDER_PRIORITIES), size=n, dtype=np.int64)
    totalprice = rng.uniform(config.price_min, config.price_max, size=n)

    return Relation(
        name="orders",
        columns={
            "orderkey": orderkey,
            "custkey": custkey,
            "ship_priority": ship_priority,
            "order_priority": order_priority,
            "totalprice": totalprice,
        },
        key_column="orderkey",
    )
