"""Zipf-skewed and uniform key generators.

The paper uses the TPC-H skew generator of Chaudhuri and Narasayya, which
assigns Zipf-distributed multiplicities to attribute values: with skew
parameter ``z``, the i-th most frequent value receives a frequency
proportional to ``1 / i**z``.  ``z = 0`` is uniform; the paper's experiments
use ``z = 0.25`` (moderate redistribution skew).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "zipf_multiplicities",
    "sample_zipf_multiplicities",
    "zipf_keys",
    "uniform_keys",
]


def _zipf_weights(num_values: int, total: int, z: float) -> np.ndarray:
    """Validate the Zipf parameters and return the normalised rank weights.

    Shared by the deterministic and the sampled multiplicity generators so
    both draw from the identical distribution: entry i is proportional to
    ``1 / (i + 1)**z`` and the weights sum to 1.
    """
    if num_values <= 0:
        raise ValueError("num_values must be positive")
    if total < 0:
        raise ValueError("total must be non-negative")
    if z < 0:
        raise ValueError("zipf parameter z must be non-negative")
    ranks = np.arange(1, num_values + 1, dtype=np.float64)
    weights = ranks ** (-z)
    return weights / weights.sum()


def zipf_multiplicities(num_values: int, total: int, z: float) -> np.ndarray:
    """Distribute ``total`` tuples over ``num_values`` distinct values Zipf(z)-style.

    Returns an integer array of length ``num_values`` summing exactly to
    ``total`` where entry i is proportional to ``1 / (i + 1)**z``.

    Parameters
    ----------
    num_values:
        Number of distinct attribute values.
    total:
        Total number of tuples to distribute.
    z:
        Zipf skew parameter; ``z = 0`` yields an (almost) uniform spread.
    """
    weights = _zipf_weights(num_values, total, z)
    counts = np.floor(weights * total).astype(np.int64)
    # Distribute the rounding remainder to the most frequent values so the
    # counts sum exactly to ``total``.
    remainder = int(total - counts.sum())
    if remainder > 0:
        counts[:remainder] += 1
    return counts


def sample_zipf_multiplicities(
    num_values: int, total: int, z: float, rng: np.random.Generator
) -> np.ndarray:
    """Draw Zipf(z)-distributed multiplicities for ``total`` tuples at random.

    Where :func:`zipf_multiplicities` rounds the expected frequencies to a
    single deterministic multiset, this draws the counts from a
    ``Multinomial(total, p_i)`` with ``p_i`` proportional to
    ``1 / (i + 1)**z`` -- every call produces a fresh realisation whose
    counts sum exactly to ``total`` and match the deterministic counts in
    expectation.  Streaming sources use it so independent draws (per batch,
    per side) share a skew *distribution* without sharing the exact
    multiset.
    """
    weights = _zipf_weights(num_values, total, z)
    return rng.multinomial(total, weights).astype(np.int64)


def zipf_keys(
    num_tuples: int,
    num_values: int,
    z: float,
    rng: np.random.Generator,
    domain_min: int = 1,
    shuffle_values: bool = True,
) -> np.ndarray:
    """Generate ``num_tuples`` join keys with Zipf(z)-distributed multiplicities.

    The distinct values are ``domain_min .. domain_min + num_values - 1``.
    When ``shuffle_values`` is true (the default, matching the TPC-H skew
    generator), the rank-to-value mapping is a random permutation so the
    heavy hitters are spread over the domain rather than clustered at its
    low end.
    """
    counts = zipf_multiplicities(num_values, num_tuples, z)
    values = np.arange(domain_min, domain_min + num_values, dtype=np.int64)
    if shuffle_values:
        values = rng.permutation(values)
    keys = np.repeat(values, counts)
    rng.shuffle(keys)
    return keys


def uniform_keys(
    num_tuples: int,
    domain_min: int,
    domain_max: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate ``num_tuples`` integer keys uniformly from ``[domain_min, domain_max]``."""
    if domain_max < domain_min:
        raise ValueError("domain_max must be >= domain_min")
    return rng.integers(domain_min, domain_max + 1, size=num_tuples, dtype=np.int64)
