"""Dataset generators used by the paper's evaluation.

* :mod:`repro.data.zipf` -- generic Zipf-skewed and uniform key generators.
  The TPC-H skew generator of Chaudhuri & Narasayya draws attribute values
  with Zipf(z) multiplicities; the ``z`` knob here matches the paper's
  ``z = 0.25`` setting.
* :mod:`repro.data.tpch` -- a scaled-down TPC-H-like ORDERS table containing
  exactly the columns the evaluation joins touch.
* :mod:`repro.data.xdataset` -- the synthetic X dataset (two segments in
  80/20 proportion whose small segments produce most of the output).
"""

from repro.data.tpch import TPCHConfig, generate_orders
from repro.data.xdataset import XDatasetConfig, generate_x_dataset
from repro.data.zipf import uniform_keys, zipf_keys, zipf_multiplicities

__all__ = [
    "zipf_keys",
    "zipf_multiplicities",
    "uniform_keys",
    "TPCHConfig",
    "generate_orders",
    "XDatasetConfig",
    "generate_x_dataset",
]
