"""The visitor-based rule engine behind ``python -m repro.analysis``.

Every headline property of this reproduction — bit-identical replays,
kill-and-restore equivalence, exact int64 join keys, the sticky-worker
state-ownership protocol — is a *discipline*: a way code must be written,
not just a behaviour tests can observe.  This module provides the machinery
to enforce those disciplines statically, before any test runs:

* :class:`Rule` — one check, in the ``target_node_types`` idiom: a rule
  declares which node types it wants to see and yields
  :class:`Violation` records from :meth:`Rule.check`;
* :class:`Analyzer` — parses each file once, walks the tree once, and
  dispatches every node to the rules registered for its type (with the
  ancestor stack available for context-sensitive checks);
* :class:`Finding` — a rule hit pinned to ``path:line:col``, carrying the
  rule id, the message, and whether an inline suppression absolved it;
* suppression comments — ``# repro: ignore[RULE1,RULE2]  # why`` on the
  offending line waives exactly the listed rules there (a bare
  ``# repro: ignore`` waives every rule on the line);
* reporters — :func:`format_findings` for humans, :func:`report_to_json`
  for CI artifacts and golden-adjacent diffs.

The engine is **AST-kind-agnostic**: dispatch, the ancestor stack, findings,
suppressions and both reporters know nothing about Python's :mod:`ast`.  A
:class:`Walker` tells the engine how to enumerate a dialect's children and
locate its nodes, and a :class:`BaseContext` carries the per-file facts
rules consult; the Python specialisation (:class:`AstWalker`,
:class:`SourceContext`) lives here because ``python -m repro.analysis`` uses
it, while :mod:`repro.query` plugs sqlglot-style SQL expression trees into
the *same* engine for query-admission checks (``-- repro: ignore[...]``
comments included).  The rule batteries live in :mod:`repro.analysis.rules`
and :mod:`repro.query.rules`.  See ``docs/static_analysis.md`` for the rule
catalogue and how to add one.
"""

from __future__ import annotations

import ast
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, ClassVar, Iterable, Iterator, Mapping, Sequence

__all__ = [
    "Violation",
    "Finding",
    "FileReport",
    "AnalysisReport",
    "BaseContext",
    "SourceContext",
    "SuppressionComment",
    "Rule",
    "Walker",
    "AstWalker",
    "AST_WALKER",
    "Analyzer",
    "check_tree",
    "python_comments",
    "scan_suppressions",
    "format_findings",
    "report_to_json",
]

#: Matches a suppression comment, bare or with a bracketed rule-id list.
#: Both comment leaders are accepted — ``#`` (Python) and ``--`` (SQL join
#: specs) — so every dialect the engine checks shares one suppression
#: syntax.  (Lives in a string literal, so the scan — which reads real
#: comment tokens only — never matches this file's own source.)
_SUPPRESSION = re.compile(
    r"(?:#|--)\s*repro:\s*ignore(?:\[(?P<ids>[A-Z0-9_,\s]+)\])?"
)


@dataclass(frozen=True)
class Violation:
    """One rule hit, still anchored to its AST node (engine-internal).

    Node-dispatched rules anchor the violation to the offending node;
    file-level rules (:meth:`Rule.check_file`) have no node and pass
    ``node=None`` with an explicit ``line``/``col`` instead.
    """

    node: Any
    message: str
    line: "int | None" = None
    col: int = 0


@dataclass(frozen=True)
class SuppressionComment:
    """One inline ``repro: ignore`` comment, as scanned from real tokens.

    Attributes
    ----------
    line, col:
        1-based line and 0-based column of the comment token.
    ids:
        The cited rule ids, or ``None`` for the bare form (which waives
        every rule on the line).
    text:
        The raw comment text, for diagnostics.
    """

    line: int
    col: int
    ids: "tuple[str, ...] | None"
    text: str


@dataclass(frozen=True)
class Finding:
    """One rule hit pinned to a source location.

    Attributes
    ----------
    rule_id:
        Id of the rule that fired (``"DET001"``, ...).
    path:
        Posix-style path of the offending file, as given to the analyzer.
    line, col:
        1-based line and 0-based column of the offending node.
    message:
        The rule's explanation of this specific hit.
    snippet:
        The offending source line, stripped, for human reports.
    suppressed:
        Whether an inline ``# repro: ignore[...]`` comment on the line
        waives this finding.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    snippet: str
    suppressed: bool = False

    def location(self) -> str:
        """The clickable ``path:line:col`` prefix of a human report row."""
        return f"{self.path}:{self.line}:{self.col}"


@dataclass
class FileReport:
    """Everything the analyzer learned about one file."""

    path: str
    findings: list[Finding] = field(default_factory=list)
    #: Lines carrying a suppression comment (whether or not any rule
    #: fired there) — the suppression inventory CI reports as an
    #: artifact so drift stays visible.
    suppression_lines: list[int] = field(default_factory=list)
    #: Parse failure, if the file was not analyzable.
    error: "str | None" = None


@dataclass
class AnalysisReport:
    """The aggregate result of one analyzer run over a set of paths."""

    files: list[FileReport] = field(default_factory=list)

    @property
    def findings(self) -> list[Finding]:
        """Every finding, suppressed or not, in file order."""
        return [f for report in self.files for f in report.findings]

    @property
    def unsuppressed(self) -> list[Finding]:
        """The findings that fail the build."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        """Findings absolved by an inline suppression comment."""
        return [f for f in self.findings if f.suppressed]

    @property
    def suppression_count(self) -> int:
        """Inline suppression comments present across the scanned files."""
        return sum(len(report.suppression_lines) for report in self.files)

    @property
    def errors(self) -> list[tuple[str, str]]:
        """``(path, error)`` pairs for files that failed to parse."""
        return [
            (report.path, report.error)
            for report in self.files
            if report.error is not None
        ]

    @property
    def ok(self) -> bool:
        """Whether the run is clean: no unsuppressed findings, no errors."""
        return not self.unsuppressed and not self.errors


class BaseContext:
    """Per-file facts rules consult, independent of the AST dialect.

    Exposes the file's path and raw source lines, the scanned suppression
    comments, the id universe of the running analyzer (for suppression
    hygiene rules), and — during a walk — the ancestor stack of the node
    currently being checked.  Dialect specialisations add what their rules
    need: :class:`SourceContext` adds Python import resolution,
    :class:`repro.query.nodes.QueryContext` adds the parsed statement.
    """

    def __init__(self, path: str, source: str) -> None:
        self.path = Path(path).as_posix()
        self.source = source
        self.lines = source.splitlines()
        #: Ancestors of the node under check, outermost first (the root
        #: node itself is index 0).  Maintained by :func:`check_tree`.
        self.parents: list[Any] = []
        #: The file's inline suppression comments, in line order.
        self.suppression_comments: list[SuppressionComment] = []
        #: Rule ids registered with the analyzer running this check —
        #: the id universe suppression-hygiene rules validate against.
        self.known_rule_ids: frozenset[str] = frozenset()

    def line_of(self, lineno: int) -> str:
        """The 1-based source line, stripped, or ``""`` out of range."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def enclosing(self, *types: "type[Any]") -> "Any | None":
        """The nearest ancestor of the current node matching ``types``."""
        for parent in reversed(self.parents):
            if isinstance(parent, types):
                return parent
        return None


class SourceContext(BaseContext):
    """Python-file context: adds the parsed tree and import resolution."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        super().__init__(path, source)
        self.tree = tree
        #: ``alias -> module`` for ``import x`` / ``import x.y as z``.
        self.module_aliases: dict[str, str] = {}
        #: ``local name -> "module.name"`` for ``from x import y [as z]``.
        self.imported_names: dict[str, str] = {}
        self._collect_imports(tree)

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.imported_names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def resolve(self, node: ast.AST) -> "str | None":
        """Resolve a Name/Attribute chain to its imported dotted name.

        ``time.perf_counter`` (with ``import time``) resolves to
        ``"time.perf_counter"``; ``np.random.shuffle`` (with ``import numpy
        as np``) to ``"numpy.random.shuffle"``; a bare ``perf_counter``
        bound by ``from time import perf_counter`` to
        ``"time.perf_counter"``.  Chains not rooted in an import resolve to
        ``None`` — a local variable that happens to be called ``time``
        never trips a rule.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in self.module_aliases:
            parts.append(self.module_aliases[root])
        elif root in self.imported_names:
            parts.append(self.imported_names[root])
        else:
            return None
        return ".".join(reversed(parts))

    def source_of(self, node: ast.AST) -> str:
        """The exact source text of ``node`` (empty when unavailable)."""
        return ast.get_source_segment(self.source, node) or ""


class Rule:
    """One static check, dispatched on declared node types.

    Subclasses set the class attributes and implement :meth:`check`; the
    analyzer instantiates each rule once per run and calls ``check`` for
    every node whose type appears in ``target_node_types`` (in files the
    rule's path scope admits).  ``target_node_types`` may name *any* node
    classes — Python :mod:`ast` nodes, :mod:`repro.query.nodes` expression
    nodes — as long as the analyzer's :class:`Walker` knows the dialect.
    A rule may additionally (or instead) implement :meth:`check_file`,
    which runs once per file after the walk — the hook file-scoped checks
    like suppression hygiene use.

    Attributes
    ----------
    rule_id:
        Stable id used in reports and suppression comments (``DET001``).
    name:
        Short human label.
    description:
        One-line statement of the discipline the rule enforces.
    target_node_types:
        The node classes the rule wants to see.
    include:
        Path fragments the rule is restricted to (empty = every file).
    exclude:
        Path fragments the rule never applies to (wins over ``include``).
    """

    rule_id: ClassVar[str] = "RULE000"
    name: ClassVar[str] = "unnamed rule"
    description: ClassVar[str] = ""
    target_node_types: ClassVar["tuple[type[Any], ...]"] = ()
    include: ClassVar[tuple[str, ...]] = ()
    exclude: ClassVar[tuple[str, ...]] = ()

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on ``path`` (posix fragment matching)."""
        posix = Path(path).as_posix()
        if any(fragment in posix for fragment in self.exclude):
            return False
        if not self.include:
            return True
        return any(fragment in posix for fragment in self.include)

    def check(self, node: Any, context: Any) -> Iterator[Violation]:
        """Yield a :class:`Violation` per defect found at ``node``."""
        raise NotImplementedError
        yield  # pragma: no cover - makes the abstract method a generator

    def check_file(self, context: Any) -> Iterator[Violation]:
        """File-level hook: yield violations not tied to any one node.

        Called once per analyzed file, after the tree walk, with the
        context's ``suppression_comments`` and ``known_rule_ids``
        populated.  The default checks nothing.
        """
        return iter(())


class Walker:
    """How the engine traverses and locates nodes of one AST dialect.

    The engine's walk, dispatch and finding machinery use only these two
    methods, so any tree — Python :mod:`ast`, a sqlglot-style SQL
    expression tree — plugs in by providing a walker.
    """

    def children(self, node: Any) -> Iterable[Any]:
        """The node's direct children, in source order."""
        raise NotImplementedError

    def location(self, node: Any) -> tuple[int, int, int]:
        """``(line, col, end_line)``: 1-based lines, 0-based column."""
        raise NotImplementedError


class AstWalker(Walker):
    """The Python :mod:`ast` dialect."""

    def children(self, node: Any) -> Iterable[Any]:
        """Direct children via :func:`ast.iter_child_nodes`."""
        return ast.iter_child_nodes(node)

    def location(self, node: Any) -> tuple[int, int, int]:
        """Positions from the node's ``lineno``/``col_offset`` attributes."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        end = getattr(node, "end_lineno", line) or line
        return line, col, end


#: The shared Python-ast walker (walkers are stateless).
AST_WALKER = AstWalker()


def python_comments(source: str) -> "Iterator[tuple[int, int, str]]":
    """Yield ``(line, col, text)`` for every real comment token.

    Reading COMMENT tokens (not grepping) means a string literal containing
    ``# repro: ignore`` never waives anything.
    """
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except tokenize.TokenError:  # pragma: no cover - unparsable tail
        return


def scan_suppressions(
    comments: "Iterable[tuple[int, int, str]]",
) -> "tuple[list[SuppressionComment], dict[int, frozenset[str] | None]]":
    """Scan comment tokens for suppressions; return records and line table.

    The table maps line number -> suppressed rule ids (``None`` = every
    rule); a comment listing no ids (``# repro: ignore``) suppresses every
    rule on its line.  The records keep the cited ids and positions for
    suppression-hygiene rules (SUP001).
    """
    records: list[SuppressionComment] = []
    table: "dict[int, frozenset[str] | None]" = {}
    for line, col, text in comments:
        match = _SUPPRESSION.search(text)
        if match is None:
            continue
        ids = match.group("ids")
        if ids is None:
            records.append(SuppressionComment(line, col, None, text))
            table[line] = None
        else:
            cited = tuple(part.strip() for part in ids.split(",") if part.strip())
            records.append(SuppressionComment(line, col, cited, text))
            table[line] = frozenset(cited)
    return records, table


def _pin_finding(
    rule: Rule,
    violation: Violation,
    context: BaseContext,
    suppressed: "Mapping[int, frozenset[str] | None]",
    walker: Walker,
) -> Finding:
    """Pin a violation to its location and apply line suppressions."""
    if violation.node is not None:
        line, col, end = walker.location(violation.node)
    else:
        line = violation.line or 1
        col = violation.col
        end = line
    waived = False
    for candidate in range(line, end + 1):
        ids = suppressed.get(candidate, frozenset())
        if ids is None or rule.rule_id in (ids or frozenset()):
            waived = True
            break
    return Finding(
        rule_id=rule.rule_id,
        path=context.path,
        line=line,
        col=col,
        message=violation.message,
        snippet=context.line_of(line),
        suppressed=waived,
    )


def check_tree(
    tree: Any,
    rules: "Sequence[Rule]",
    context: BaseContext,
    walker: Walker,
    suppressed: "Mapping[int, frozenset[str] | None]",
) -> list[Finding]:
    """Run a rule battery over one parsed tree: one walk, typed dispatch.

    The dialect-agnostic core shared by :class:`Analyzer` (Python) and
    :class:`repro.query.rules.QueryAnalyzer` (SQL join specs): dispatches
    every node to the rules registered for its exact type, maintains the
    ancestor stack on ``context.parents``, runs every rule's
    :meth:`Rule.check_file` hook after the walk, and returns the findings
    sorted by position.
    """
    context.known_rule_ids = frozenset(rule.rule_id for rule in rules)
    dispatch: "dict[type[Any], list[Rule]]" = {}
    for rule in rules:
        for node_type in rule.target_node_types:
            dispatch.setdefault(node_type, []).append(rule)
    findings: list[Finding] = []

    def visit(node: Any) -> None:
        for rule in dispatch.get(type(node), ()):
            for violation in rule.check(node, context):
                findings.append(
                    _pin_finding(rule, violation, context, suppressed, walker)
                )
        context.parents.append(node)
        for child in walker.children(node):
            visit(child)
        context.parents.pop()

    if dispatch:
        visit(tree)
    for rule in rules:
        for violation in rule.check_file(context):
            findings.append(
                _pin_finding(rule, violation, context, suppressed, walker)
            )
    return sorted(findings, key=lambda f: (f.line, f.col, f.rule_id))


class Analyzer:
    """Run a rule battery over Python files: one parse and one walk each.

    Parameters
    ----------
    rules:
        The rule instances to run; defaults to the full battery from
        :func:`repro.analysis.rules.default_rules`.
    """

    def __init__(self, rules: "Sequence[Rule] | None" = None) -> None:
        if rules is None:
            from repro.analysis.rules import default_rules

            rules = default_rules()
        self.rules: list[Rule] = list(rules)

    # ------------------------------------------------------------------
    # Single-file analysis
    # ------------------------------------------------------------------
    def analyze_source(self, source: str, path: str = "<string>") -> FileReport:
        """Analyze one file's source text; never raises on bad input."""
        posix = Path(path).as_posix()
        report = FileReport(path=posix)
        try:
            tree = ast.parse(source, filename=posix)
        except SyntaxError as error:
            report.error = f"{type(error).__name__}: {error.msg} (line {error.lineno})"
            return report
        context = SourceContext(posix, source, tree)
        comments, suppressed = scan_suppressions(python_comments(source))
        context.suppression_comments = comments
        report.suppression_lines = sorted(suppressed)
        active = [rule for rule in self.rules if rule.applies_to(posix)]
        if not active:
            return report
        report.findings = check_tree(tree, active, context, AST_WALKER, suppressed)
        return report

    # ------------------------------------------------------------------
    # Tree analysis
    # ------------------------------------------------------------------
    def analyze_file(self, path: "str | Path") -> FileReport:
        """Analyze one file on disk."""
        text = Path(path).read_text(encoding="utf-8")
        return self.analyze_source(text, str(path))

    def analyze_paths(self, paths: "Iterable[str | Path]") -> AnalysisReport:
        """Analyze files and directories (directories recurse over ``*.py``)."""
        report = AnalysisReport()
        for path in paths:
            path = Path(path)
            if path.is_dir():
                for file in sorted(path.rglob("*.py")):
                    report.files.append(self.analyze_file(file))
            else:
                report.files.append(self.analyze_file(path))
        return report


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def format_findings(report: AnalysisReport, show_suppressed: bool = False) -> str:
    """The human report: one ``path:line:col rule message`` row per finding.

    Ends with a one-line summary (findings, suppressions, files scanned) so
    a clean run still says what it checked.
    """
    rows: list[str] = []
    for finding in report.unsuppressed:
        rows.append(
            f"{finding.location()}: {finding.rule_id} {finding.message}"
        )
        if finding.snippet:
            rows.append(f"    {finding.snippet}")
    if show_suppressed:
        for finding in report.suppressed:
            rows.append(
                f"{finding.location()}: {finding.rule_id} "
                f"[suppressed] {finding.message}"
            )
    for path, error in report.errors:
        rows.append(f"{path}: PARSE error {error}")
    rows.append(
        f"{len(report.unsuppressed)} finding(s), "
        f"{len(report.suppressed)} suppressed, "
        f"{report.suppression_count} suppression comment(s), "
        f"{len(report.files)} file(s) scanned"
    )
    return "\n".join(rows)


def report_to_json(report: AnalysisReport, rules: "Sequence[Rule]") -> str:
    """The machine report: deterministic JSON for CI artifacts.

    Carries every finding (suppressed ones marked), the suppression
    inventory per file, and the rule catalogue that produced the run, so a
    rule addition shows its src-wide impact as a plain artifact diff.
    """
    payload = {
        "ok": report.ok,
        "summary": {
            "files_scanned": len(report.files),
            "findings": len(report.unsuppressed),
            "suppressed_findings": len(report.suppressed),
            "suppression_comments": report.suppression_count,
            "parse_errors": len(report.errors),
        },
        "rules": [
            {
                "id": rule.rule_id,
                "name": rule.name,
                "description": rule.description,
            }
            for rule in sorted(rules, key=lambda r: r.rule_id)
        ],
        "findings": [
            {
                "rule": finding.rule_id,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
                "suppressed": finding.suppressed,
            }
            for finding in report.findings
        ],
        "suppressions": {
            file.path: file.suppression_lines
            for file in report.files
            if file.suppression_lines
        },
        "errors": [
            {"path": path, "error": error} for path, error in report.errors
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


#: Callable alias rules may use for clock/predicate injection in tests.
Reporter = Callable[[AnalysisReport], str]
