"""`repro.analysis` — static enforcement of the repository's disciplines.

An AST-based rule engine (:mod:`repro.analysis.engine`) plus a battery of
domain rules (:mod:`repro.analysis.rules`) that reject, at review time, the
code patterns whose bugs the test suite can only catch dynamically:
ambient wall-clock reads, global-RNG draws, float coercions on exact int64
join keys, multiprocessing footguns, and incomplete backend protocol
surfaces.

Run it as a module::

    python -m repro.analysis src/repro            # human report, exit 1 on findings
    python -m repro.analysis src/repro --format json --output report.json

Deliberate exceptions carry ``# repro: ignore[RULE]  # why`` inline; the
analyzer reports the suppression inventory so drift stays visible.  The CI
``analysis`` job runs the analyzer and mypy over ``src/`` on every push;
``tests/test_analysis.py`` pins each rule on violating/clean/suppressed
fixtures and asserts the tree itself stays clean.  Full catalogue and
how-to-add-a-rule guide: ``docs/static_analysis.md``.
"""

from repro.analysis.engine import (
    AnalysisReport,
    Analyzer,
    AstWalker,
    BaseContext,
    FileReport,
    Finding,
    Rule,
    SourceContext,
    SuppressionComment,
    Violation,
    Walker,
    check_tree,
    format_findings,
    report_to_json,
    scan_suppressions,
)
from repro.analysis.rules import ALL_RULES, default_rules

__all__ = [
    "AnalysisReport",
    "Analyzer",
    "AstWalker",
    "BaseContext",
    "FileReport",
    "Finding",
    "Rule",
    "SourceContext",
    "SuppressionComment",
    "Violation",
    "Walker",
    "check_tree",
    "format_findings",
    "report_to_json",
    "scan_suppressions",
    "ALL_RULES",
    "default_rules",
]
