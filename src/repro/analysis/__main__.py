"""Module entry point: ``python -m repro.analysis [paths...]``."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
