"""Command line front end: ``python -m repro.analysis [paths]``.

Exit status is the contract CI builds on: ``0`` for a clean run (every
finding suppressed with an inline justification), ``1`` when unsuppressed
findings or parse errors remain, ``2`` for usage errors.  ``--format json``
emits the machine report (:func:`repro.analysis.engine.report_to_json`),
which the full CI job stores as a golden-adjacent artifact so a rule
addition shows its src-wide impact in the artifact diff.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.engine import Analyzer, format_findings, report_to_json
from repro.analysis.rules import default_rules

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (separate for help/usage tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static invariant checker: determinism, clock-domain, RNG, "
            "join-key exactness, concurrency and backend-protocol rules "
            "over the repro source tree."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in the human report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    """Run the analyzer; return the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    rules = default_rules()
    if args.list_rules:
        for rule in sorted(rules, key=lambda r: r.rule_id):
            print(f"{rule.rule_id}  {rule.name}: {rule.description}")
        return 0
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")
    analyzer = Analyzer(rules)
    report = analyzer.analyze_paths(args.paths)
    if args.format == "json":
        rendered = report_to_json(report, rules)
    else:
        rendered = format_findings(report, show_suppressed=args.show_suppressed)
        if not rendered.endswith("\n"):
            rendered += "\n"
    if args.output:
        Path(args.output).write_text(rendered, encoding="utf-8")
    else:
        sys.stdout.write(rendered)
    return 0 if report.ok else 1
