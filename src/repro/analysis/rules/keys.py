"""KEY001: the exact-int64 join-key discipline (no float coercion on keys).

PR 5 made integer join keys exact end-to-end: int64 keys above 2**53 must
round-trip through sources, histories, sorted region state and the counting
kernels without value change, because a float64 detour silently collapses
neighbouring keys (the pinned regressions: equi on ``2**53 + 1`` vs
``2**53`` wrongly matched; a band count of 313 vs the exact 237).  This
rule statically rejects the coercions that caused those bugs anywhere on
join-key dataflow in ``repro/joins`` and ``repro/streaming``:

* ``float(<key expression>)`` calls;
* ``<key expression>.astype(float | np.float16/32/64 | "float...")``;
* ``np.asarray(<key expression>, dtype=<float...>)`` (and ``np.array``);
* ``==`` / ``!=`` comparisons between a key expression and a float literal
  or an explicit ``float(...)`` coercion.

Key dataflow is approximated lexically: an expression participates when its
source text — or the assignment target it feeds — contains ``key`` (case
insensitive).  One structural exemption is built in: the sanctioned
*exact-first* idiom — try ``exact_integer_keys`` / ``normalise_keys``, fall
back to float64 only for genuinely inexact keys — is recognised by the
guard's presence in the enclosing function, so its fallback arm never
flags.  Beyond that the heuristic is deliberately aggressive; genuinely
real-valued key uses (band-condition boundary arithmetic, the histogram's
sample reservoirs, the float-keyed reference joins) carry an inline
``# repro: ignore[KEY001]`` with a justification, which keeps every
deliberate exception enumerable in one ``grep``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Rule, SourceContext, Violation

__all__ = ["FloatKeyCoercionRule"]

_FLOAT_NAMES = frozenset({"float", "float16", "float32", "float64", "double"})


def _is_float_dtype(node: ast.AST) -> bool:
    """Whether an expression names a float type/dtype statically."""
    if isinstance(node, ast.Name):
        return node.id in _FLOAT_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _FLOAT_NAMES
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.startswith("float")
    return False


class FloatKeyCoercionRule(Rule):
    """KEY001: no float-coercing operation on join-key dataflow."""

    rule_id = "KEY001"
    name = "float coercion on join keys"
    description = (
        "float()/astype(float)/dtype=float on join-key dataflow collapses "
        "exact int64 keys above 2**53; keep keys in their exact dtype"
    )
    target_node_types = (ast.Call, ast.Compare)
    include = ("repro/joins/", "repro/streaming/")

    #: Names whose presence in the enclosing function marks the sanctioned
    #: exact-first idiom: try :func:`repro.joins.conditions.exact_integer_keys`
    #: (or its total companion ``normalise_keys``), fall back to float64 for
    #: genuinely inexact keys.  The fallback arm is then not a violation.
    exact_guards = frozenset({"exact_integer_keys", "normalise_keys"})

    def _guarded(self, context: SourceContext) -> bool:
        """Whether the enclosing function tries the exact int64 path first."""
        function = context.enclosing(ast.FunctionDef, ast.AsyncFunctionDef)
        if function is None:
            return False
        return any(
            isinstance(child, ast.Name) and child.id in self.exact_guards
            for child in ast.walk(function)
        )

    def _mentions_key(self, node: ast.AST, context: SourceContext) -> bool:
        """Whether the coerced expression is on key dataflow (lexically)."""
        if "key" in context.source_of(node).lower():
            return True
        assign = context.enclosing(ast.Assign, ast.AnnAssign, ast.AugAssign)
        if assign is None:
            return False
        if isinstance(assign, ast.Assign):
            targets = assign.targets
        else:
            targets = [assign.target]
        return any(
            "key" in context.source_of(target).lower() for target in targets
        )

    def check(self, node: ast.AST, context: SourceContext) -> Iterator[Violation]:
        """Flag float coercions and float/key equality comparisons."""
        if self._guarded(context):
            return
        if isinstance(node, ast.Call):
            yield from self._check_call(node, context)
        elif isinstance(node, ast.Compare):
            yield from self._check_compare(node, context)

    def _check_call(self, node: ast.Call, context: SourceContext) -> Iterator[Violation]:
        func = node.func
        # float(<key expr>)
        if (
            isinstance(func, ast.Name)
            and func.id == "float"
            and len(node.args) == 1
            and self._mentions_key(node.args[0], context)
        ):
            yield Violation(
                node,
                "float() on a join-key expression loses int64 exactness "
                "above 2**53",
            )
            return
        # <key expr>.astype(<float dtype>)
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "astype"
            and node.args
            and _is_float_dtype(node.args[0])
            and self._mentions_key(func.value, context)
        ):
            yield Violation(
                node,
                "astype(float) on a join-key array loses int64 exactness "
                "above 2**53",
            )
            return
        # np.asarray(<key expr>, dtype=<float>) / np.array(...)
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("asarray", "array", "full", "zeros", "ones")
            and node.args
        ):
            dtype = next(
                (kw.value for kw in node.keywords if kw.arg == "dtype"), None
            )
            if (
                dtype is not None
                and _is_float_dtype(dtype)
                and self._mentions_key(node.args[0], context)
            ):
                yield Violation(
                    node,
                    f"{func.attr}(..., dtype=float) on a join-key expression "
                    "loses int64 exactness above 2**53",
                )

    def _check_compare(
        self, node: ast.Compare, context: SourceContext
    ) -> Iterator[Violation]:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left, *node.comparators]
        floats = [operand for operand in operands if self._is_floaty(operand)]
        keys = [
            operand
            for operand in operands
            if "key" in context.source_of(operand).lower()
        ]
        if floats and keys and set(map(id, floats)) != set(map(id, keys)):
            yield Violation(
                node,
                "equality between a join-key expression and a float value "
                "is inexact for int64 keys above 2**53; compare in the "
                "keys' exact dtype",
            )

    @staticmethod
    def _is_floaty(node: ast.AST) -> bool:
        """A float literal or an explicit ``float(...)`` coercion."""
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
        )
