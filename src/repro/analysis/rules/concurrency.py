"""CONC001: multiprocessing hygiene for the worker-backed backends.

The process-spawning backends pin forkserver/spawn and ship work to
long-lived workers; three well-known footguns break them in ways that only
surface as deadlocks or unpicklable-task errors on some platforms:

* the ``fork`` start method duplicates the parent's threads' held locks
  into the child — the classic deadlock under a threaded
  ``StreamingPipeline`` (see ``default_mp_context``);
* lambdas (and other unpicklable callables) submitted to executors or used
  as ``Process`` targets fail to pickle under spawn/forkserver — often only
  on the platform that CI doesn't run;
* module-level *mutable* state in worker-imported modules silently forks
  into per-process copies: each worker mutates its own, nothing is shared,
  and the bug looks like "sometimes the count is wrong".

One rule id covers all three because the discipline is one sentence: worker
processes share nothing implicitly — state is owned (the sticky protocol),
shipped (the shm arena), or constant.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Rule, SourceContext, Violation

__all__ = ["MultiprocessingHygieneRule"]

#: Executor/pool methods whose callable argument crosses a pickle boundary.
_SUBMIT_METHODS = frozenset({"submit", "map", "map_async", "apply", "apply_async"})

#: Packages whose modules are imported inside worker processes.
_WORKER_PACKAGES = ("repro/streaming/", "repro/engine/", "repro/joins/")

#: Module-level calls producing mutable containers.
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "defaultdict", "OrderedDict", "deque", "Counter"}
)


class MultiprocessingHygieneRule(Rule):
    """CONC001: no fork, no lambdas across pickle boundaries, no module globals."""

    rule_id = "CONC001"
    name = "multiprocessing hygiene"
    description = (
        "no 'fork' start method, no lambdas submitted to executors or "
        "Process targets, no module-level mutable state in worker-imported "
        "modules"
    )
    target_node_types = (ast.Call, ast.Assign, ast.AnnAssign)

    def check(self, node: ast.AST, context: SourceContext) -> Iterator[Violation]:
        """Dispatch to the three prongs by node type."""
        if isinstance(node, ast.Call):
            yield from self._check_call(node, context)
        else:
            yield from self._check_module_state(node, context)

    # ------------------------------------------------------------------
    # Prong 1+2: fork start method, lambda across pickle boundaries
    # ------------------------------------------------------------------
    def _check_call(self, node: ast.Call, context: SourceContext) -> Iterator[Violation]:
        func = node.func
        attr = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if attr in ("get_context", "set_start_method"):
            first = node.args[0] if node.args else None
            if (
                isinstance(first, ast.Constant)
                and first.value == "fork"
            ):
                yield Violation(
                    node,
                    "'fork' start method inherits the parent's threads' "
                    "held locks and can deadlock a threaded pipeline; pin "
                    "forkserver or spawn (see default_mp_context)",
                )
            return
        if attr in _SUBMIT_METHODS and isinstance(func, ast.Attribute):
            for arg in node.args:
                if isinstance(arg, ast.Lambda):
                    yield Violation(
                        arg,
                        f"lambda passed to .{attr}() cannot be pickled to "
                        "a spawn/forkserver worker; use a module-level "
                        "function",
                    )
            return
        if attr is not None and attr.endswith("Process"):
            for keyword in node.keywords:
                if keyword.arg == "target" and isinstance(
                    keyword.value, ast.Lambda
                ):
                    yield Violation(
                        keyword.value,
                        "lambda as a Process target cannot be pickled to a "
                        "spawn/forkserver child; use a module-level function",
                    )

    # ------------------------------------------------------------------
    # Prong 3: module-level mutable state in worker-imported modules
    # ------------------------------------------------------------------
    def _check_module_state(
        self, node: ast.AST, context: SourceContext
    ) -> Iterator[Violation]:
        if not any(pkg in context.path for pkg in _WORKER_PACKAGES):
            return
        if not context.parents or not isinstance(context.parents[-1], ast.Module):
            return
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        else:
            assert isinstance(node, ast.AnnAssign)
            targets = [node.target]
            value = node.value
        if value is None or not self._is_mutable_literal(value):
            return
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            # ALL_CAPS module attributes are constants by convention
            # (registries filled at import time and read-only after), and
            # dunders (__all__, ...) are interpreter-facing metadata;
            # anything else is worker-divergent mutable state.
            if name.strip("_").isupper():
                continue
            if name.startswith("__") and name.endswith("__"):
                continue
            yield Violation(
                node,
                f"module-level mutable state {name!r} in a worker-imported "
                "module diverges per process; own it (sticky protocol), "
                "ship it (shm arena), or make it an ALL_CAPS constant",
            )

    @staticmethod
    def _is_mutable_literal(node: ast.AST) -> bool:
        """Literal/comprehension/factory-call mutable containers."""
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
        ):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            return name in _MUTABLE_FACTORIES
        return False
