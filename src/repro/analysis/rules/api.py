"""API001: the ExecutionBackend protocol surface and sticky-call ordering.

The engine drives execution backends through two protocols: stateless
dispatch (``join_regions``) and — when a backend declares
``owns_state = True`` — the sticky state-ownership protocol
(``bind`` → per-batch ``count_batch`` / ``evict_state`` /
``rebase_state`` / ``install_state``, plus ``resize`` and
``drain_channel_bytes``).  Forgetting one method in a new backend only
surfaces at run time, on the first stream that happens to exercise it
(evictions need a window, installs need a migration); calling the per-batch
operations before ``bind`` is a latent ordering bug of exactly the kind the
backend can only report once it is too late.  This rule rejects both
statically:

* every class that directly subclasses ``ExecutionBackend`` must define
  ``join_regions`` in its own body (the abstract method made locally
  visible — intermediate bases like the test-double forwarding backend are
  subclassed by name, not re-checked);
* a class-level ``owns_state = True`` obliges the full sticky surface;
* within one function body, the first ``.bind(...)`` call must precede the
  first per-batch sticky call (``count_batch``/``evict_state``/
  ``rebase_state``/``install_state``) — functions using only one side of
  the protocol are exempt, since binding and driving legitimately live in
  different engine phases.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Rule, SourceContext, Violation

__all__ = ["BackendProtocolRule"]

#: The sticky state-ownership protocol surface, obliged by owns_state=True.
STICKY_SURFACE = (
    "bind",
    "count_batch",
    "evict_state",
    "rebase_state",
    "install_state",
    "resize",
    "drain_channel_bytes",
)

#: Per-batch sticky operations that must not precede bind in one body.
_AFTER_BIND = frozenset(
    {"count_batch", "evict_state", "rebase_state", "install_state"}
)


class BackendProtocolRule(Rule):
    """API001: complete backend surfaces; bind before per-batch sticky calls."""

    rule_id = "API001"
    name = "backend protocol surface"
    description = (
        "ExecutionBackend subclasses must statically define the full "
        "protocol surface, and sticky call sites must bind before "
        "count_batch/evict_state in a function body"
    )
    target_node_types = (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)

    def check(self, node: ast.AST, context: SourceContext) -> Iterator[Violation]:
        """Dispatch class-surface and call-ordering checks."""
        if isinstance(node, ast.ClassDef):
            yield from self._check_class(node)
        else:
            assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            yield from self._check_ordering(node)

    # ------------------------------------------------------------------
    # Class surface
    # ------------------------------------------------------------------
    @staticmethod
    def _base_names(node: ast.ClassDef) -> set[str]:
        names: set[str] = set()
        for base in node.bases:
            if isinstance(base, ast.Name):
                names.add(base.id)
            elif isinstance(base, ast.Attribute):
                names.add(base.attr)
        return names

    @staticmethod
    def _defined(node: ast.ClassDef) -> set[str]:
        """Methods and class attributes defined directly in the body."""
        defined: set[str] = set()
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defined.add(statement.name)
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        defined.add(target.id)
            elif isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                defined.add(statement.target.id)
        return defined

    @staticmethod
    def _owns_state(node: ast.ClassDef) -> bool:
        """Whether the class body sets ``owns_state = True`` literally."""
        for statement in node.body:
            if isinstance(statement, ast.Assign) and any(
                isinstance(target, ast.Name) and target.id == "owns_state"
                for target in statement.targets
            ):
                value = statement.value
                return isinstance(value, ast.Constant) and value.value is True
        return False

    def _check_class(self, node: ast.ClassDef) -> Iterator[Violation]:
        if "ExecutionBackend" not in self._base_names(node):
            return
        defined = self._defined(node)
        if "join_regions" not in defined:
            yield Violation(
                node,
                f"backend {node.name!r} subclasses ExecutionBackend but "
                "does not define join_regions; define it (raising for "
                "protocol-only backends is fine) so the surface is "
                "statically complete",
            )
        if self._owns_state(node):
            missing = [name for name in STICKY_SURFACE if name not in defined]
            if missing:
                yield Violation(
                    node,
                    f"backend {node.name!r} declares owns_state=True but "
                    f"is missing sticky protocol methods {missing}; the "
                    "engine will call them on the first stream that "
                    "evicts, migrates or resizes",
                )

    # ------------------------------------------------------------------
    # Call-site ordering
    # ------------------------------------------------------------------
    def _check_ordering(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> Iterator[Violation]:
        first_bind: "ast.Call | None" = None
        first_batch_op: "ast.Call | None" = None
        first_batch_attr = ""
        for child in ast.walk(node):
            if not (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
            ):
                continue
            attr = child.func.attr
            if attr == "bind" and first_bind is None:
                first_bind = child
            elif attr in _AFTER_BIND and first_batch_op is None:
                first_batch_op = child
                first_batch_attr = attr
        if (
            first_bind is not None
            and first_batch_op is not None
            and first_batch_op.lineno < first_bind.lineno
        ):
            yield Violation(
                first_batch_op,
                f".{first_batch_attr}() is called before .bind() "
                f"in {node.name!r}; the sticky protocol requires the "
                "stream binding first",
            )
