"""The domain rule battery for :mod:`repro.analysis`.

Six rule families, one per discipline the repository's tests pin
dynamically (see each module's docstring for the full rationale):

========  ==========================================================
DET001    no direct wall-clock reads outside ``repro.obs``
DET002    no global-RNG calls — thread a seeded ``Generator``
KEY001    no float coercion on join-key dataflow (exact int64 keys)
CONC001   no fork / pickled lambdas / module-level mutable state
API001    complete ``ExecutionBackend`` surfaces, bind-first ordering
SUP001    suppression comments must cite rule ids that exist
========  ==========================================================

To add a rule: subclass :class:`repro.analysis.engine.Rule` in a module
here, declare ``target_node_types``, implement ``check``, and append the
class to :data:`ALL_RULES`.  ``docs/static_analysis.md`` walks through an
example.
"""

from __future__ import annotations

from repro.analysis.engine import Rule
from repro.analysis.rules.api import BackendProtocolRule
from repro.analysis.rules.concurrency import MultiprocessingHygieneRule
from repro.analysis.rules.determinism import DirectClockRule, GlobalRngRule
from repro.analysis.rules.keys import FloatKeyCoercionRule
from repro.analysis.rules.suppressions import UnknownSuppressionRule

__all__ = [
    "ALL_RULES",
    "default_rules",
    "DirectClockRule",
    "GlobalRngRule",
    "FloatKeyCoercionRule",
    "MultiprocessingHygieneRule",
    "BackendProtocolRule",
    "UnknownSuppressionRule",
]

#: Every registered rule class, in catalogue order.
ALL_RULES: "tuple[type[Rule], ...]" = (
    DirectClockRule,
    GlobalRngRule,
    FloatKeyCoercionRule,
    MultiprocessingHygieneRule,
    BackendProtocolRule,
    UnknownSuppressionRule,
)


def default_rules() -> "list[Rule]":
    """One fresh instance of every registered rule."""
    return [rule_cls() for rule_cls in ALL_RULES]
