"""Determinism rules: clock-domain discipline and RNG threading.

Bit-identical replays (the ``repro.obs`` TickClock contract) and
hypothesis-pinned run equivalence only hold when wall-clock reads and
random draws are *injected*, never ambient:

* **DET001** — no direct ``time.time()`` / ``time.perf_counter()`` /
  ``datetime.now()`` (or their ``_ns``/``monotonic``/``process_time``
  siblings) outside ``repro/obs``, where the sanctioned clock entry points
  (:mod:`repro.obs.clock`) and the injectable-tracer machinery live.  A
  module that needs a wall-clock reading imports it from
  ``repro.obs.clock`` so every clock read in the tree shares one audited
  home (and one place to fake).
* **DET002** — no global-RNG draws: ``np.random.shuffle(...)``,
  ``np.random.seed(...)``, bare ``random.random()`` and friends mutate
  hidden process-wide state, so two call sites silently couple and replays
  stop being bit-identical.  A seeded ``np.random.Generator`` (or
  ``random.Random`` instance) must be threaded instead; constructors
  (``default_rng``, ``Generator``, ``SeedSequence``, ...) are allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Rule, SourceContext, Violation

__all__ = ["DirectClockRule", "GlobalRngRule"]


class DirectClockRule(Rule):
    """DET001: wall-clock reads must come from ``repro.obs.clock``."""

    rule_id = "DET001"
    name = "direct wall-clock read"
    description = (
        "time.time()/perf_counter()/datetime.now() outside repro.obs break "
        "the clock-domain discipline; import the sanctioned entry point "
        "from repro.obs.clock instead"
    )
    target_node_types = (ast.Attribute, ast.Name)
    #: The clock abstractions themselves (and their tests' fakes) live here.
    exclude = ("repro/obs/",)

    #: Dotted names whose *read* (call or reference) is a violation.
    banned = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.process_time",
            "time.process_time_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def check(self, node: ast.AST, context: SourceContext) -> Iterator[Violation]:
        """Flag loads (calls and bare references) of the banned clocks."""
        if not isinstance(getattr(node, "ctx", ast.Load()), ast.Load):
            return
        if isinstance(node, ast.Name) and node.id in context.module_aliases:
            # The bare module reference; the Attribute node carries the read.
            return
        if isinstance(node, ast.Attribute) and isinstance(
            context.enclosing(ast.Attribute), ast.Attribute
        ):
            # Only the full chain is resolved, not its prefixes.
            return
        resolved = context.resolve(node)
        if resolved in self.banned:
            yield Violation(
                node,
                f"direct wall-clock read {resolved!r}; use the sanctioned "
                "entry point in repro.obs.clock (or accept an injectable "
                "clock) so the clock domain stays auditable",
            )


class GlobalRngRule(Rule):
    """DET002: random draws must go through a threaded, seeded generator."""

    rule_id = "DET002"
    name = "global RNG draw"
    description = (
        "np.random.* / bare random.* calls mutate hidden process-global "
        "state; thread a seeded np.random.Generator (or random.Random) "
        "instead"
    )
    target_node_types = (ast.Call,)

    #: Constructors of *instance* generators, which are the fix — allowed.
    allowed_numpy = frozenset(
        {
            "default_rng",
            "Generator",
            "RandomState",
            "SeedSequence",
            "BitGenerator",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "SFC64",
            "MT19937",
        }
    )
    allowed_stdlib = frozenset({"Random", "SystemRandom", "getstate", "setstate"})

    def check(self, node: ast.AST, context: SourceContext) -> Iterator[Violation]:
        """Flag calls resolving into the global numpy/stdlib RNG namespaces."""
        assert isinstance(node, ast.Call)
        resolved = context.resolve(node.func)
        if resolved is None:
            return
        if resolved.startswith("numpy.random."):
            tail = resolved.split(".", 2)[2]
            if "." not in tail and tail not in self.allowed_numpy:
                yield Violation(
                    node,
                    f"global numpy RNG call {resolved!r}; draw from a "
                    "seeded np.random.Generator threaded through the call "
                    "chain instead",
                )
        elif resolved.startswith("random."):
            tail = resolved.split(".", 1)[1]
            if "." not in tail and tail not in self.allowed_stdlib:
                yield Violation(
                    node,
                    f"global stdlib RNG call {resolved!r}; use a seeded "
                    "random.Random instance threaded through the call "
                    "chain instead",
                )
