"""SUP001: suppression comments must cite rule ids that exist.

A suppression that cites a typo'd id -- ``# repro: ignore[TYPO999]`` --
waives nothing, fails no build, and rots silently: the reader believes an
exception was granted while the analyzer never honoured it.  Worse, the
rule it was *meant* to waive fires anyway, and the natural "fix" is to
widen the comment rather than correct the id.  SUP001 makes the typo
itself a finding, at the comment's own position, one finding per unknown
id so multi-rule comments report precisely.

The id universe is the union of the running analyzer's registered rules
(``context.known_rule_ids``, set by the engine) and the full Python
catalogue (:data:`repro.analysis.rules.ALL_RULES`) -- so an Analyzer built
with a rule subset, as the fixture tests do, does not flag citations of
catalogue rules it happens not to be running.  Bare-form comments
(``# repro: ignore``) cite nothing and never fire.

This is a file-level rule: it implements :meth:`Rule.check_file` over the
context's scanned :class:`~repro.analysis.engine.SuppressionComment`
records instead of dispatching on AST nodes, which also means it works
unchanged for any dialect the engine checks (the query analyzer registers
an instance over ``--``-commented SQL join specs).
"""

from __future__ import annotations

from typing import Any, ClassVar, Iterator

from repro.analysis.engine import Rule, Violation

__all__ = ["UnknownSuppressionRule"]


class UnknownSuppressionRule(Rule):
    """SUP001: a suppression citing an unknown rule id is itself a finding."""

    rule_id: ClassVar[str] = "SUP001"
    name: ClassVar[str] = "unknown suppression target"
    description: ClassVar[str] = (
        "suppression comments must cite registered rule ids -- a typo'd id "
        "waives nothing and rots silently"
    )
    target_node_types: ClassVar["tuple[type[Any], ...]"] = ()

    def check(self, node: Any, context: Any) -> Iterator[Violation]:
        """Never called: SUP001 dispatches on files, not nodes."""
        return iter(())

    def check_file(self, context: Any) -> Iterator[Violation]:
        """Flag every cited rule id the analyzer does not know."""
        known = set(context.known_rule_ids)
        try:
            from repro.analysis.rules import ALL_RULES

            known.update(rule_cls.rule_id for rule_cls in ALL_RULES)
        except ImportError:  # pragma: no cover - catalogue always importable
            pass
        for comment in context.suppression_comments:
            if comment.ids is None:
                continue
            for cited in comment.ids:
                if cited not in known:
                    yield Violation(
                        node=None,
                        message=(
                            f"suppression cites unknown rule id {cited!r}; "
                            "it waives nothing -- fix the id or drop it"
                        ),
                        line=comment.line,
                        col=comment.col,
                    )
