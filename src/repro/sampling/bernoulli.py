"""One-pass Bernoulli sampling of input relations.

The input statistics of the scheme are built from a uniform random sample of
each relation.  In the distributed setting every site scans its local
partition once and keeps each tuple independently with probability ``q``
(Bernoulli sampling, Gemulla et al.), which composes cleanly across sites.
"""

from __future__ import annotations

import numpy as np

__all__ = ["bernoulli_sample", "bernoulli_sample_rate"]


def bernoulli_sample_rate(target_size: int, num_tuples: int) -> float:
    """Sampling rate ``q = s_i / n`` that yields ``target_size`` tuples in expectation."""
    if num_tuples <= 0:
        raise ValueError("num_tuples must be positive")
    if target_size < 0:
        raise ValueError("target_size must be non-negative")
    return min(1.0, target_size / num_tuples)


def bernoulli_sample(
    values: np.ndarray, rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Keep each element of ``values`` independently with probability ``rate``.

    Returns the retained elements in their original order.  The sample size
    is binomial around ``rate * len(values)``, which is what the paper's
    analysis assumes; callers that need an exact size should use
    :meth:`repro.joins.relations.Relation.sample` instead.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"sampling rate must lie in [0, 1], got {rate}")
    values = np.asarray(values)
    if rate == 0.0 or len(values) == 0:
        return values[:0]
    if rate == 1.0:
        return values.copy()
    mask = rng.random(len(values)) < rate
    return values[mask]
