"""Parallel Stream-Sample (paper, section IV-A).

The sequential Stream-Sample scans R1 and R2 on one machine.  The paper
parallelises it as three MapReduce-style jobs running on the same J machines
as the join itself:

1. **Build d2equi.**  R2 tuples are routed to workers by join key using the
   approximate equi-depth histogram on R2; every worker computes the distinct
   keys and multiplicities of its slice, and the slices concatenate into the
   global ``d2equi`` (key ranges are disjoint, so no merging is needed).
2. **Build d2 and S1.**  R1 tuples are routed by the equi-depth histogram on
   R1; each worker also receives the ``d2equi`` entries that can fall inside
   the joinable interval of any of its R1 keys (its key range widened by the
   band).  The worker computes ``d2(t1)`` locally, feeds an
   Efraimidis--Spirakis reservoir of size ``s_o``, and reports its local sum
   of ``d2``.  Reservoirs merge by keeping the globally largest priorities;
   the local sums add up to the exact output size ``m``.
3. **Produce the output sample.**  A map-only pass turns every tuple of the
   merged (WOR → WR converted) sample S1 into one output key pair by picking
   a joinable R2 key with probability proportional to its multiplicity.

This module executes the three jobs faithfully (same routing, same local
computations, same merging) with the workers simulated as loop iterations; it
also records per-worker scan counts so the engine can charge the statistics
phase to the cost model.  The result is distributionally identical to
:func:`repro.sampling.stream_sample.stream_sample`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.joins.conditions import JoinCondition
from repro.sampling.equidepth import EquiDepthHistogram, build_equidepth_histogram
from repro.sampling.reservoir import merge_reservoirs, weighted_sample_wor, wor_to_wr
from repro.sampling.stream_sample import (
    D2Index,
    JoinOutputSample,
    _sample_joinable_keys,
    build_d2_index,
    compute_joinable_set_sizes,
)

__all__ = ["ParallelSampleStats", "parallel_stream_sample"]


@dataclass
class ParallelSampleStats:
    """Per-worker accounting of the parallel sampling jobs.

    Attributes
    ----------
    r2_tuples_scanned:
        Tuples of R2 processed per worker in job 1.
    r1_tuples_scanned:
        Tuples of R1 processed per worker in job 2.
    d2equi_entries_shipped:
        ``d2equi`` entries shipped to each worker in job 2 (network cost of
        the statistics phase).
    sample_pairs_produced:
        Output-sample pairs produced per worker in job 3.
    """

    r2_tuples_scanned: list[int] = field(default_factory=list)
    r1_tuples_scanned: list[int] = field(default_factory=list)
    d2equi_entries_shipped: list[int] = field(default_factory=list)
    sample_pairs_produced: list[int] = field(default_factory=list)

    @property
    def total_tuples_scanned(self) -> int:
        """Total input tuples scanned by the statistics phase."""
        return sum(self.r1_tuples_scanned) + sum(self.r2_tuples_scanned)

    @property
    def max_worker_scan(self) -> int:
        """Scan work of the busiest worker (drives the stats-phase latency)."""
        per_worker = [
            r1 + r2
            for r1, r2 in zip(
                self.r1_tuples_scanned or [0], self.r2_tuples_scanned or [0]
            )
        ]
        return max(per_worker) if per_worker else 0


def _partition_by_histogram(
    keys: np.ndarray, histogram: EquiDepthHistogram, num_workers: int
) -> list[np.ndarray]:
    """Route keys to workers by contiguous equi-depth bucket ranges."""
    buckets = histogram.buckets_of(keys)
    # Map each histogram bucket to a worker so that consecutive buckets go to
    # the same worker (range partitioning over bucket indexes).
    worker_of_bucket = (
        np.arange(histogram.num_buckets) * num_workers // histogram.num_buckets
    )
    workers = worker_of_bucket[buckets]
    return [keys[workers == w] for w in range(num_workers)]


def parallel_stream_sample(
    keys1: np.ndarray,
    keys2: np.ndarray,
    condition: JoinCondition,
    sample_size: int,
    num_workers: int,
    rng: np.random.Generator,
    histogram1: EquiDepthHistogram | None = None,
    histogram2: EquiDepthHistogram | None = None,
) -> tuple[JoinOutputSample, ParallelSampleStats]:
    """Run the 3-job parallel Stream-Sample and return the sample plus statistics.

    Parameters
    ----------
    keys1, keys2:
        Join keys of R1 and R2 (R2 conventionally the smaller relation).
    condition:
        Monotonic join condition.
    sample_size:
        Output sample size ``s_o``.
    num_workers:
        Number of simulated workers ``J``.
    rng:
        Random generator.
    histogram1, histogram2:
        Pre-built approximate equi-depth histograms on R1 and R2 (the join
        operator shares these with the sample-matrix construction).  When not
        given, exact histograms with ``num_workers`` buckets are built.
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    keys1 = np.asarray(keys1, dtype=np.float64)
    keys2 = np.asarray(keys2, dtype=np.float64)
    stats = ParallelSampleStats()

    if histogram2 is None and len(keys2):
        histogram2 = build_equidepth_histogram(keys2, num_workers, len(keys2))
    if histogram1 is None and len(keys1):
        histogram1 = build_equidepth_histogram(keys1, num_workers, len(keys1))

    if len(keys1) == 0 or len(keys2) == 0 or sample_size == 0:
        empty = JoinOutputSample(pairs=np.empty((0, 2)), total_output=0)
        return empty, stats

    # ------------------------------------------------------------------
    # Job 1: build d2equi, partitioned by R2's equi-depth histogram.
    # ------------------------------------------------------------------
    r2_parts = _partition_by_histogram(keys2, histogram2, num_workers)
    local_indexes: list[D2Index] = []
    for part in r2_parts:
        stats.r2_tuples_scanned.append(len(part))
        local_indexes.append(build_d2_index(part))
    # Key ranges are disjoint, so concatenating the sorted local indexes (in
    # worker order, which follows key order) yields the global index.
    all_keys = np.concatenate([idx.keys for idx in local_indexes])
    all_counts = np.concatenate([idx.multiplicities for idx in local_indexes])
    order = np.argsort(all_keys, kind="stable")
    d2_index = D2Index(
        keys=all_keys[order],
        multiplicities=all_counts[order],
        prefix=np.concatenate([[0], np.cumsum(all_counts[order])]),
    )

    # ------------------------------------------------------------------
    # Job 2: build d2 and the weighted sample S1, partitioned by R1's
    # histogram; each worker sees only the d2equi entries it can need.
    # ------------------------------------------------------------------
    r1_parts = _partition_by_histogram(keys1, histogram1, num_workers)
    reservoirs = []
    total_output = 0
    for part in r1_parts:
        stats.r1_tuples_scanned.append(len(part))
        if len(part) == 0:
            stats.d2equi_entries_shipped.append(0)
            continue
        lo_bound, hi_bound = condition.joinable_bounds(part)
        lo, hi = float(np.min(lo_bound)), float(np.max(hi_bound))
        left = int(np.searchsorted(d2_index.keys, lo, side="left"))
        right = int(np.searchsorted(d2_index.keys, hi, side="right"))
        local_d2equi = D2Index(
            keys=d2_index.keys[left:right],
            multiplicities=d2_index.multiplicities[left:right],
            prefix=np.concatenate(
                [[0], np.cumsum(d2_index.multiplicities[left:right])]
            ),
        )
        stats.d2equi_entries_shipped.append(local_d2equi.num_distinct)
        d2_local = compute_joinable_set_sizes(part, local_d2equi, condition)
        total_output += int(d2_local.sum())
        reservoirs.append(
            weighted_sample_wor(part, d2_local.astype(np.float64), sample_size, rng)
        )

    if total_output == 0:
        empty = JoinOutputSample(pairs=np.empty((0, 2)), total_output=0)
        return empty, stats

    merged = merge_reservoirs(reservoirs, capacity=sample_size)
    sampled_keys1 = np.asarray(wor_to_wr(merged, sample_size, rng), dtype=np.float64)

    # ------------------------------------------------------------------
    # Job 3: map-only production of output key pairs.
    # ------------------------------------------------------------------
    sample_parts = _partition_by_histogram(sampled_keys1, histogram1, num_workers)
    pair_chunks = []
    for part in sample_parts:
        stats.sample_pairs_produced.append(len(part))
        if len(part) == 0:
            continue
        sampled_keys2 = _sample_joinable_keys(part, d2_index, condition, rng)
        pair_chunks.append(np.column_stack([part, sampled_keys2]))
    pairs = np.concatenate(pair_chunks) if pair_chunks else np.empty((0, 2))
    return JoinOutputSample(pairs=pairs, total_output=total_output), stats
