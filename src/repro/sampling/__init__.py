"""Input and output sampling substrates.

The equi-weight histogram needs two kinds of statistics (paper, section IV):

* the *input* distribution of each relation, captured by approximate
  equi-depth histograms built from small Bernoulli samples
  (:mod:`repro.sampling.equidepth`, :mod:`repro.sampling.bernoulli`), and
* a uniform random sample of the *join output*, which cannot be obtained by
  joining input samples (Chaudhuri et al.); instead the Stream-Sample
  algorithm is used, extended to band/inequality joins and parallelised
  (:mod:`repro.sampling.stream_sample`,
  :mod:`repro.sampling.parallel_stream_sample`).  Weighted reservoir
  sampling (Efraimidis--Spirakis) underpins the parallel weighted sample
  (:mod:`repro.sampling.reservoir`).

:mod:`repro.sampling.sizes` centralises the sample-size formulas of the
paper (s_i = Theta(n_s log n), s_o = Theta(n_s), n_s = sqrt(2 n J)).
"""

from repro.sampling.bernoulli import bernoulli_sample
from repro.sampling.equidepth import EquiDepthHistogram, build_equidepth_histogram
from repro.sampling.parallel_stream_sample import parallel_stream_sample
from repro.sampling.reservoir import (
    WeightedReservoir,
    merge_reservoirs,
    weighted_sample_wor,
    wor_to_wr,
)
from repro.sampling.sizes import (
    input_sample_size,
    output_sample_size,
    sample_matrix_size,
)
from repro.sampling.stream_sample import (
    JoinOutputSample,
    compute_joinable_set_sizes,
    stream_sample,
)

__all__ = [
    "bernoulli_sample",
    "EquiDepthHistogram",
    "build_equidepth_histogram",
    "WeightedReservoir",
    "weighted_sample_wor",
    "wor_to_wr",
    "merge_reservoirs",
    "JoinOutputSample",
    "compute_joinable_set_sizes",
    "stream_sample",
    "parallel_stream_sample",
    "sample_matrix_size",
    "input_sample_size",
    "output_sample_size",
]
