"""Stream-Sample: uniform random sampling of the join output.

Chaudhuri, Motwani and Narasayya show that joining uniform samples of the
inputs does *not* yield a uniform sample of the join output, and give the
Stream-Sample algorithm for equi-joins.  The paper extends it to band and
inequality joins by generalising the *joinable set* of an R1 tuple to every
R2 tuple whose key lies inside the joinable interval of the condition.

The sequential algorithm implemented here:

1. Build ``d2equi``: the distinct R2 join keys with their multiplicities.
2. For every R1 tuple ``t1`` compute ``d2(t1) = |joinable set of t1|`` with
   two binary searches over the sorted distinct keys and a prefix sum of the
   multiplicities.  The exact join output size is ``m = sum_t1 d2(t1)``.
3. Draw a with-replacement sample S1 of R1 keys weighted by ``d2``.
4. For each sampled key, pick a joinable R2 key with probability proportional
   to its multiplicity; the pair of keys is one output-sample tuple.

Every output pair is produced with probability ``d2(t1)/m * 1/d2(t1) = 1/m``,
i.e. uniformly over the join output, without ever executing the join.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.joins.conditions import JoinCondition
from repro.sampling.reservoir import weighted_sample_wor, wor_to_wr

__all__ = [
    "D2Index",
    "JoinOutputSample",
    "build_d2_index",
    "compute_joinable_set_sizes",
    "stream_sample",
]


@dataclass(frozen=True)
class D2Index:
    """The ``d2equi`` structure: distinct R2 keys, multiplicities and prefix sums.

    ``prefix[i]`` is the number of R2 tuples whose key is among the first
    ``i`` distinct keys, so the number of R2 tuples with keys in the interval
    ``[lo, hi]`` is ``prefix[right] - prefix[left]`` for the binary-search
    positions of ``lo`` and ``hi``.
    """

    keys: np.ndarray
    multiplicities: np.ndarray
    prefix: np.ndarray

    @property
    def num_distinct(self) -> int:
        """Number of distinct R2 join keys."""
        return len(self.keys)

    @property
    def num_tuples(self) -> int:
        """Total number of R2 tuples."""
        return int(self.prefix[-1]) if len(self.prefix) else 0

    def count_in_interval(self, lo: float, hi: float) -> int:
        """Number of R2 tuples with keys in the closed interval ``[lo, hi]``."""
        left = int(np.searchsorted(self.keys, lo, side="left"))
        right = int(np.searchsorted(self.keys, hi, side="right"))
        return int(self.prefix[right] - self.prefix[left])


@dataclass(frozen=True)
class JoinOutputSample:
    """A uniform random sample of join-output key pairs.

    Attributes
    ----------
    pairs:
        Array of shape ``(s_o, 2)``; column 0 holds R1 join keys, column 1
        holds R2 join keys.  The pairs contain only keys (the sample feeds
        the sample matrix, never the downstream plan).
    total_output:
        The exact join output size ``m`` computed as a by-product.
    """

    pairs: np.ndarray
    total_output: int

    @property
    def size(self) -> int:
        """Number of sampled output tuples."""
        return len(self.pairs)

    @property
    def r1_keys(self) -> np.ndarray:
        """R1-side keys of the sampled pairs."""
        return self.pairs[:, 0]

    @property
    def r2_keys(self) -> np.ndarray:
        """R2-side keys of the sampled pairs."""
        return self.pairs[:, 1]


def build_d2_index(keys2: np.ndarray) -> D2Index:
    """Build the ``d2equi`` index (distinct keys + multiplicities) of R2."""
    keys2 = np.asarray(keys2, dtype=np.float64)
    if len(keys2) == 0:
        return D2Index(
            keys=np.empty(0), multiplicities=np.empty(0, dtype=np.int64),
            prefix=np.zeros(1, dtype=np.int64),
        )
    distinct, counts = np.unique(keys2, return_counts=True)
    prefix = np.concatenate([[0], np.cumsum(counts)])
    return D2Index(keys=distinct, multiplicities=counts, prefix=prefix)


def compute_joinable_set_sizes(
    keys1: np.ndarray, d2_index: D2Index, condition: JoinCondition
) -> np.ndarray:
    """Compute ``d2(t1)`` for every R1 key: the size of its joinable set in R2."""
    keys1 = np.asarray(keys1, dtype=np.float64)
    if len(keys1) == 0 or d2_index.num_distinct == 0:
        return np.zeros(len(keys1), dtype=np.int64)
    lows, highs = condition.joinable_bounds(keys1)
    left = np.searchsorted(d2_index.keys, lows, side="left")
    right = np.searchsorted(d2_index.keys, highs, side="right")
    return (d2_index.prefix[right] - d2_index.prefix[left]).astype(np.int64)


def _sample_joinable_keys(
    sampled_keys1: np.ndarray,
    d2_index: D2Index,
    condition: JoinCondition,
    rng: np.random.Generator,
) -> np.ndarray:
    """For each sampled R1 key pick a joinable R2 key ∝ its multiplicity."""
    result = np.empty(len(sampled_keys1), dtype=np.float64)
    lows, highs = condition.joinable_bounds(sampled_keys1)
    lefts = np.searchsorted(d2_index.keys, lows, side="left")
    rights = np.searchsorted(d2_index.keys, highs, side="right")
    for i, (left, right) in enumerate(zip(lefts, rights)):
        total = d2_index.prefix[right] - d2_index.prefix[left]
        # The key was sampled with weight d2 > 0, so its window is non-empty.
        target = d2_index.prefix[left] + rng.integers(0, total)
        idx = int(np.searchsorted(d2_index.prefix, target, side="right")) - 1
        result[i] = d2_index.keys[idx]
    return result


def stream_sample(
    keys1: np.ndarray,
    keys2: np.ndarray,
    condition: JoinCondition,
    sample_size: int,
    rng: np.random.Generator,
) -> JoinOutputSample:
    """Draw a uniform random sample of the join output (sequential Stream-Sample).

    Parameters
    ----------
    keys1, keys2:
        Join-key arrays of R1 and R2.  By convention R2 should be the smaller
        relation (the d2equi index is built over it), but correctness does
        not depend on it.
    condition:
        A monotonic join condition.
    sample_size:
        Number of output tuples to sample (``s_o``).
    rng:
        Random generator.

    Returns
    -------
    JoinOutputSample
        Sampled key pairs plus the exact output size ``m``.
    """
    if sample_size < 0:
        raise ValueError("sample_size must be non-negative")
    keys1 = np.asarray(keys1, dtype=np.float64)
    d2_index = build_d2_index(keys2)
    d2 = compute_joinable_set_sizes(keys1, d2_index, condition)
    total_output = int(d2.sum())
    if total_output == 0 or sample_size == 0:
        return JoinOutputSample(pairs=np.empty((0, 2)), total_output=total_output)

    reservoir = weighted_sample_wor(keys1, d2.astype(np.float64), sample_size, rng)
    sampled_keys1 = np.asarray(wor_to_wr(reservoir, sample_size, rng), dtype=np.float64)
    sampled_keys2 = _sample_joinable_keys(sampled_keys1, d2_index, condition, rng)
    pairs = np.column_stack([sampled_keys1, sampled_keys2])
    return JoinOutputSample(pairs=pairs, total_output=total_output)
