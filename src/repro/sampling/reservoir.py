"""Weighted reservoir sampling (Efraimidis--Spirakis).

The parallel Stream-Sample needs a weighted random sample S1 of R1 where the
weight of a tuple is its joinable-set size d2.  Efraimidis and Spirakis give
a one-pass algorithm for weighted sampling *without* replacement: assign each
item the priority ``r ** (1 / w)`` with ``r ~ U(0, 1)`` and keep the ``k``
items with the largest priorities in a min-heap.  Because priorities are
independent of how the input is split, per-worker reservoirs can be merged by
simply keeping the globally largest priorities, which is exactly what the
parallel sampler does.

The WOR sample is converted to a with-replacement (WR) sample by drawing
``k`` items from the reservoir with probabilities proportional to their
weights, following Chaudhuri et al.'s use in Stream-Sample.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "WeightedReservoir",
    "weighted_sample_wor",
    "merge_reservoirs",
    "wor_to_wr",
]


@dataclass
class WeightedReservoir:
    """A bounded min-heap of ``(priority, item, weight)`` entries.

    The reservoir keeps the ``capacity`` entries with the largest priorities
    seen so far.  Items may be arbitrary hashable or unhashable objects; they
    are carried through untouched.
    """

    capacity: int
    _heap: list[tuple[float, int, object, float]] = field(default_factory=list)
    _counter: int = 0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("reservoir capacity must be positive")

    def __len__(self) -> int:
        return len(self._heap)

    def add(self, item: object, weight: float, rng: np.random.Generator) -> None:
        """Offer ``item`` with ``weight`` to the reservoir."""
        if weight <= 0:
            return
        priority = float(rng.random()) ** (1.0 / weight)
        self.add_with_priority(item, weight, priority)

    def add_with_priority(self, item: object, weight: float, priority: float) -> None:
        """Offer an item whose priority has already been drawn (used by merging)."""
        entry = (priority, self._counter, item, weight)
        self._counter += 1
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
        elif priority > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)

    def items(self) -> list[object]:
        """The sampled items (unordered)."""
        return [entry[2] for entry in self._heap]

    def weights(self) -> np.ndarray:
        """Weights of the sampled items, aligned with :meth:`items`."""
        return np.array([entry[3] for entry in self._heap], dtype=np.float64)

    def entries(self) -> list[tuple[float, object, float]]:
        """``(priority, item, weight)`` triples (unordered)."""
        return [(entry[0], entry[2], entry[3]) for entry in self._heap]


def weighted_sample_wor(
    items: np.ndarray,
    weights: np.ndarray,
    size: int,
    rng: np.random.Generator,
) -> WeightedReservoir:
    """One-pass Efraimidis--Spirakis weighted sampling without replacement.

    Items with non-positive weight are never sampled (they cannot contribute
    an output tuple).
    """
    items = np.asarray(items)
    weights = np.asarray(weights, dtype=np.float64)
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    reservoir = WeightedReservoir(capacity=size)
    positive = weights > 0
    if not positive.any():
        return reservoir
    # Vectorised priority draw, then a single heap pass.
    priorities = np.full(len(items), -np.inf)
    priorities[positive] = rng.random(int(positive.sum())) ** (1.0 / weights[positive])
    for item, weight, priority in zip(items, weights, priorities):
        if weight > 0:
            reservoir.add_with_priority(item, float(weight), float(priority))
    return reservoir


def merge_reservoirs(
    reservoirs: list[WeightedReservoir], capacity: int | None = None
) -> WeightedReservoir:
    """Merge per-worker reservoirs into one by keeping the largest priorities."""
    if not reservoirs:
        raise ValueError("need at least one reservoir to merge")
    capacity = capacity or max(r.capacity for r in reservoirs)
    merged = WeightedReservoir(capacity=capacity)
    for reservoir in reservoirs:
        for priority, item, weight in reservoir.entries():
            merged.add_with_priority(item, weight, priority)
    return merged


def wor_to_wr(
    reservoir: WeightedReservoir, size: int, rng: np.random.Generator
) -> list[object]:
    """Convert a WOR reservoir to a with-replacement weighted sample of ``size``."""
    items = reservoir.items()
    if not items:
        return []
    weights = reservoir.weights()
    probabilities = weights / weights.sum()
    indexes = rng.choice(len(items), size=size, replace=True, p=probabilities)
    return [items[i] for i in indexes]
