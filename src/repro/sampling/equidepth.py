"""Approximate equi-depth histograms built from random samples.

Following Chaudhuri, Motwani and Narasayya ("Random sampling for histogram
construction: how much is enough?"), an approximate equi-depth histogram with
``b`` buckets over a relation of ``n`` tuples is built by sorting a uniform
sample of size ``Theta(b log n)`` and placing bucket boundaries at the sample
quantiles.  The histogram's bucket boundaries over both relations form the
grid that defines the sample matrix MS, and the same structure (with many
more buckets) is the whole of the statistics used by the M-Bucket (CSI)
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EquiDepthHistogram", "build_equidepth_histogram"]


@dataclass(frozen=True)
class EquiDepthHistogram:
    """An equi-depth histogram over a single join-key attribute.

    Attributes
    ----------
    boundaries:
        Array of ``num_buckets + 1`` ascending key values.  Bucket ``i``
        covers the half-open key range ``[boundaries[i], boundaries[i+1])``,
        except the last bucket which is closed on both sides.
    num_tuples:
        Size of the relation the histogram describes (not of the sample).
    """

    boundaries: np.ndarray
    num_tuples: int

    def __post_init__(self) -> None:
        b = np.asarray(self.boundaries, dtype=np.float64)
        if b.ndim != 1 or len(b) < 2:
            raise ValueError("boundaries must be a 1-D array of length >= 2")
        if np.any(np.diff(b) < 0):
            raise ValueError("boundaries must be non-decreasing")
        object.__setattr__(self, "boundaries", b)

    @property
    def num_buckets(self) -> int:
        """Number of buckets."""
        return len(self.boundaries) - 1

    @property
    def expected_bucket_size(self) -> float:
        """Expected number of tuples per bucket (``n / num_buckets``)."""
        return self.num_tuples / self.num_buckets

    def bucket_of(self, key: float) -> int:
        """Index of the bucket containing ``key`` (clamped to the domain)."""
        idx = int(np.searchsorted(self.boundaries, key, side="right")) - 1
        return min(max(idx, 0), self.num_buckets - 1)

    def buckets_of(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`bucket_of`."""
        keys = np.asarray(keys, dtype=np.float64)
        idx = np.searchsorted(self.boundaries, keys, side="right") - 1
        return np.clip(idx, 0, self.num_buckets - 1)

    def bucket_range(self, index: int) -> tuple[float, float]:
        """Closed key range ``[lo, hi]`` covered by bucket ``index``."""
        if not 0 <= index < self.num_buckets:
            raise IndexError(f"bucket index {index} out of range")
        return float(self.boundaries[index]), float(self.boundaries[index + 1])

    def buckets_overlapping(self, lo: float, hi: float) -> tuple[int, int]:
        """Inclusive range of bucket indexes intersecting the key range ``[lo, hi]``."""
        if hi < lo:
            raise ValueError("hi must be >= lo")
        first = self.bucket_of(lo)
        last = self.bucket_of(hi)
        return first, last


def build_equidepth_histogram(
    sample_keys: np.ndarray, num_buckets: int, num_tuples: int
) -> EquiDepthHistogram:
    """Build an approximate equi-depth histogram from a uniform key sample.

    Parameters
    ----------
    sample_keys:
        Uniform random sample of the relation's join keys (need not be
        sorted).
    num_buckets:
        Number of buckets; clamped to the number of distinct quantile points
        the sample can support.
    num_tuples:
        Size of the full relation (used for the expected bucket size).
    """
    sample_keys = np.sort(np.asarray(sample_keys, dtype=np.float64))
    if len(sample_keys) == 0:
        raise ValueError("cannot build a histogram from an empty sample")
    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    if num_tuples <= 0:
        raise ValueError("num_tuples must be positive")
    num_buckets = min(num_buckets, len(sample_keys))
    quantiles = np.linspace(0.0, 1.0, num_buckets + 1)
    boundaries = np.quantile(sample_keys, quantiles, method="inverted_cdf")
    boundaries = np.asarray(boundaries, dtype=np.float64)
    # Make sure the histogram spans the whole sampled key range.
    boundaries[0] = sample_keys[0]
    boundaries[-1] = sample_keys[-1]
    boundaries = np.maximum.accumulate(boundaries)
    return EquiDepthHistogram(boundaries=boundaries, num_tuples=num_tuples)
