"""Sample-size formulas from the paper (Table II and Lemmas 3.1-3.2).

* Sample matrix size ``n_s = ceil(sqrt(2 n J))`` -- the minimum size such
  that the maximum cell weight in MS is at most half of the optimum maximum
  region weight (Lemma 3.1).  When the output/input ratio ``rho_B = m / n``
  exceeds 1 the size can be reduced to ``sqrt(2 n J / rho_B)`` without losing
  guarantees (Appendix A5); when ``m < n`` it must grow by ``1/sqrt(m/n)``.
* Input sample size ``s_i = Theta(n_s log n)`` -- enough for the approximate
  equi-depth histogram of Chaudhuri et al.
* Output sample size ``s_o = Theta(n_s)`` -- from Kolmogorov statistics, a
  small multiple of the number of candidate MS cells and never below the
  1063 floor that yields 5% error at 99% confidence.
"""

from __future__ import annotations

import math

__all__ = [
    "sample_matrix_size",
    "input_sample_size",
    "output_sample_size",
    "KOLMOGOROV_MIN_SAMPLE",
]

#: Minimum output sample size for <=5% error at >=99% confidence
#: (standard Kolmogorov-statistics table value quoted by the paper).
KOLMOGOROV_MIN_SAMPLE = 1063


def sample_matrix_size(
    num_tuples: int,
    num_machines: int,
    output_input_ratio: float | None = None,
    min_size: int = 4,
) -> int:
    """Return the sample-matrix side length ``n_s``.

    Parameters
    ----------
    num_tuples:
        ``n``, the (maximum) input relation size.
    num_machines:
        ``J``, the number of join workers.
    output_input_ratio:
        Optional ``rho_B = m / n``.  Ratios above 1 shrink ``n_s`` by
        ``sqrt(rho_B)`` (Appendix A5 optimisation); ratios below 1 grow it by
        the same factor so Lemma 3.1's bound still holds.
    min_size:
        Lower clamp so degenerate configurations still produce a usable grid.
    """
    if num_tuples <= 0:
        raise ValueError("num_tuples must be positive")
    if num_machines <= 0:
        raise ValueError("num_machines must be positive")
    ns = math.sqrt(2.0 * num_tuples * num_machines)
    if output_input_ratio is not None:
        if output_input_ratio <= 0:
            raise ValueError("output_input_ratio must be positive")
        ns = ns / math.sqrt(output_input_ratio)
    ns = int(math.ceil(ns))
    # The grid cannot be finer than one tuple per bucket nor coarser than the
    # minimum usable size.
    ns = min(ns, num_tuples)
    return max(min_size, ns)


def input_sample_size(ns: int, num_tuples: int, constant: float = 4.0) -> int:
    """Return the per-relation input sample size ``s_i = Theta(n_s log n)``."""
    if ns <= 0:
        raise ValueError("ns must be positive")
    if num_tuples <= 0:
        raise ValueError("num_tuples must be positive")
    size = int(math.ceil(constant * ns * math.log(max(num_tuples, 2))))
    return min(size, num_tuples)


def output_sample_size(
    num_candidate_cells: int, multiple: float = 2.0,
    minimum: int = KOLMOGOROV_MIN_SAMPLE,
) -> int:
    """Return the output sample size ``s_o``.

    The paper sets ``s_o = 2 * n_sc`` (twice the number of candidate MS
    cells) subject to the Kolmogorov-statistics floor.
    """
    if num_candidate_cells < 0:
        raise ValueError("num_candidate_cells must be non-negative")
    return max(minimum, int(math.ceil(multiple * num_candidate_cells)))
