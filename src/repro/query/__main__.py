"""Module entry point: ``python -m repro.query``."""

import sys

from repro.query.cli import main

if __name__ == "__main__":
    sys.exit(main())
