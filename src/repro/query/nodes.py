"""The typed AST of a SQL-ish join spec.

Small frozen dataclasses, one per grammatical construct the join front-door
understands (``docs/query.md`` has the grammar).  Every node carries its
1-based ``line`` and 0-based ``col`` so admission findings pin to the exact
offending token, the same way :mod:`repro.analysis` findings pin to Python
source.  :class:`QueryWalker` teaches the generalized rule engine
(:func:`repro.analysis.engine.check_tree`) how to traverse these trees —
dispatch, suppressions (``-- repro: ignore[QRY001]  -- why``), reporters
and the CLI contract are all reused from :mod:`repro.analysis` verbatim.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.analysis.engine import BaseContext, Walker

__all__ = [
    "Node",
    "ColumnRef",
    "Literal",
    "Comparison",
    "BandPredicate",
    "AndCondition",
    "TableRef",
    "JoinClause",
    "WindowClause",
    "PolicyClause",
    "ScaleClause",
    "KeysClause",
    "SelectStmt",
    "QueryWalker",
    "QUERY_WALKER",
    "QueryContext",
    "COMPARISON_OPS",
    "INEQUALITY_OPS",
]

#: Comparison operators the grammar admits, normalised spelling.
COMPARISON_OPS = ("=", "<", "<=", ">", ">=", "<>")

#: The strict-order subset: the operators that make a join an
#: inequality join (the O(n²)-state shape QRY002 watches).
INEQUALITY_OPS = ("<", "<=", ">", ">=")


@dataclass(frozen=True)
class Node:
    """Base of every query AST node: a source position."""

    line: int = field(default=1, kw_only=True)
    col: int = field(default=0, kw_only=True)


@dataclass(frozen=True)
class ColumnRef(Node):
    """A possibly-qualified column reference, ``r1.key`` or ``key``."""

    table: "str | None"
    column: str

    def text(self) -> str:
        """The reference as written, for messages."""
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Literal(Node):
    """A numeric or boolean literal, with its exact source spelling.

    An integer-spelled literal (``42``, no decimal point or exponent) is
    parsed with :func:`int` and stays a Python int end-to-end — the
    ``exact_integer_keys`` discipline applied to the literal path, so a
    band width of ``2**53 + 1`` written in a query survives to the engine's
    exact int64 band arithmetic un-rounded.
    """

    value: "int | float | bool"
    raw: str

    @property
    def is_float_formed(self) -> bool:
        """Whether the literal was *written* as a float (``2.5``, ``1e3``)."""
        return isinstance(self.value, float)


@dataclass(frozen=True)
class Comparison(Node):
    """A binary comparison between two operands (columns or literals)."""

    op: str
    left: Node
    right: Node


@dataclass(frozen=True)
class BandPredicate(Node):
    """A band conjunct: ``ABS(a.x - b.y) <= w`` or the BETWEEN spelling.

    ``form`` records which spelling produced it (``"abs"`` or
    ``"between"``); both lower identically.
    """

    left: ColumnRef
    right: ColumnRef
    width: Literal
    form: str


@dataclass(frozen=True)
class AndCondition(Node):
    """A conjunction of two or more condition terms."""

    terms: "tuple[Node, ...]"


@dataclass(frozen=True)
class TableRef(Node):
    """A stream (relation) reference with an optional alias."""

    name: str
    alias: "str | None" = None

    def binds(self, identifier: "str | None") -> bool:
        """Whether ``identifier`` names this table (by alias or name)."""
        if identifier is None:
            return False
        return identifier == (self.alias or self.name) or identifier == self.name


@dataclass(frozen=True)
class JoinClause(Node):
    """The join: kind (``inner``/``cross``/``implicit``), table, condition.

    ``implicit`` is the comma form (``FROM r1, r2``); its condition, if
    any, comes from a ``WHERE`` clause.  ``condition`` is ``None`` when no
    ``ON``/``WHERE`` was written — the cross-join shape QRY001 rejects.
    """

    kind: str
    table: TableRef
    condition: "Node | None" = None


@dataclass(frozen=True)
class WindowClause(Node):
    """``WINDOW '<spec>'`` — a :func:`repro.streaming.window.make_window` spec."""

    spec: str


@dataclass(frozen=True)
class PolicyClause(Node):
    """``POLICY '<mode>' [QUEUE n]`` — backpressure mode and queue depth."""

    spec: str
    queue: "int | None" = None


@dataclass(frozen=True)
class ScaleClause(Node):
    """``SCALE s [DOMAIN lo TO hi]`` — composite-key encoding parameters."""

    scale: float
    domain_min: float = 0.0
    domain_max: float = 0.0


@dataclass(frozen=True)
class KeysClause(Node):
    """``KEYS INT|FLOAT`` — the declared join-key dtype (default INT)."""

    dtype: str


@dataclass(frozen=True)
class SelectStmt(Node):
    """One parsed join spec: the root node of a query AST."""

    projection: str
    left: TableRef
    join: JoinClause
    window: "WindowClause | None" = None
    policy: "PolicyClause | None" = None
    scale: "ScaleClause | None" = None
    keys: "KeysClause | None" = None

    @property
    def key_dtype(self) -> str:
        """The declared key dtype; defaults to ``"int"`` (exact int64 keys)."""
        return self.keys.dtype if self.keys is not None else "int"

    @property
    def window_is_bounded(self) -> bool:
        """Whether the spec declares a state-bounding window.

        Missing or explicitly unbounded windows are unbounded; every other
        registered spec (sliding, count, decay) bounds resident state.
        """
        if self.window is None:
            return False
        name = self.window.spec.partition(":")[0].strip().lower()
        return name not in ("unbounded", "none", "")


class QueryWalker(Walker):
    """The query-AST dialect for the generalized rule engine."""

    def children(self, node: Any) -> Iterable[Any]:
        """Direct child nodes, in field order (tuples of nodes flatten)."""

        def iter_children() -> Iterator[Any]:
            for f in dataclasses.fields(node):
                value = getattr(node, f.name)
                if isinstance(value, Node):
                    yield value
                elif isinstance(value, tuple):
                    for item in value:
                        if isinstance(item, Node):
                            yield item

        return iter_children()

    def location(self, node: Any) -> tuple[int, int, int]:
        """Positions from the node's own ``line``/``col`` fields."""
        return node.line, node.col, node.line


#: The shared query-AST walker (walkers are stateless).
QUERY_WALKER = QueryWalker()


class QueryContext(BaseContext):
    """Per-spec context query rules consult: adds the parsed statement."""

    def __init__(self, path: str, source: str, statement: SelectStmt) -> None:
        super().__init__(path, source)
        self.statement = statement
