"""Command line front end: ``python -m repro.query <command>``.

Two subcommands:

* ``check [paths] [--format json]`` — run the admission battery over join
  spec files (``*.sql``), with the same exit-code contract as
  ``python -m repro.analysis``: ``0`` for a clean run (every finding
  suppressed with an inline justification), ``1`` when unsuppressed
  findings or parse errors remain, ``2`` for usage errors.  The CI
  ``analysis`` job gates on it over ``examples/queries/`` and stores the
  JSON report as an artifact.
* ``plan FILE`` — compile one admitted spec and print its static
  :class:`~repro.query.plan.PlanReport` (state bound, match probability,
  per-batch cost).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.engine import format_findings, report_to_json

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (separate for help/usage tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.query",
        description=(
            "Query-plan static analysis: compile SQL-ish join specs to "
            "streaming-engine plans and reject anti-patterns (cross "
            "joins, unbounded inequality state, silent shed loss, float "
            "key literals, unparseable specs) before admission."
        ),
    )
    parser.add_argument(
        "--dialect",
        choices=("builtin", "sqlglot", "auto"),
        default="builtin",
        help=(
            "parser front-end; 'sqlglot' needs the optional query extra "
            "(default: builtin)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser(
        "check", help="run the admission rule battery over spec files"
    )
    check.add_argument(
        "paths",
        nargs="*",
        default=["examples/queries"],
        help="spec files or directories (default: examples/queries)",
    )
    check.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    check.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    check.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in the human report",
    )
    check.add_argument(
        "--list-rules",
        action="store_true",
        help="print the admission rule catalogue and exit",
    )

    plan = commands.add_parser(
        "plan", help="compile one spec and print its static plan report"
    )
    plan.add_argument("file", help="the spec file to price")
    plan.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    plan.add_argument(
        "--batch-size",
        type=int,
        default=512,
        help="assumed tuples per side per batch (default: 512)",
    )
    plan.add_argument(
        "--horizon",
        type=int,
        default=64,
        help="batches to simulate the window over (default: 64)",
    )
    return parser


def _run_check(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.query.rules import QueryAnalyzer, default_query_rules

    rules = default_query_rules()
    if args.list_rules:
        for rule in sorted(rules, key=lambda r: r.rule_id):
            print(f"{rule.rule_id}  {rule.name}: {rule.description}")
        return 0
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")
    analyzer = QueryAnalyzer(rules, dialect=args.dialect)
    report = analyzer.analyze_paths(args.paths)
    if args.format == "json":
        rendered = report_to_json(report, rules)
    else:
        rendered = format_findings(report, show_suppressed=args.show_suppressed)
        if not rendered.endswith("\n"):
            rendered += "\n"
    if args.output:
        Path(args.output).write_text(rendered, encoding="utf-8")
    else:
        sys.stdout.write(rendered)
    return 0 if report.ok else 1


def _run_plan(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.query.compiler import AdmissionError, CompileError, compile_sql
    from repro.query.parser import ParseError
    from repro.query.plan import estimate_plan, format_plan_report
    from repro.query.plan import plan_report_to_json

    path = Path(args.file)
    if not path.exists():
        parser.error(f"no such file: {args.file}")
    try:
        plan = compile_sql(
            path.read_text(encoding="utf-8"),
            dialect=args.dialect,
            path=str(path),
        )
    except (ParseError, CompileError, AdmissionError) as error:
        sys.stderr.write(f"{error}\n")
        return 1
    report = estimate_plan(
        plan, batch_size=args.batch_size, horizon_batches=args.horizon
    )
    if args.format == "json":
        sys.stdout.write(plan_report_to_json(report))
    else:
        sys.stdout.write(format_plan_report(report) + "\n")
    return 0


def main(argv: "Sequence[str] | None" = None) -> int:
    """Run the front door; return the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "check":
        return _run_check(args, parser)
    return _run_plan(args, parser)
