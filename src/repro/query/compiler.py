"""Lowering parsed join specs to the streaming engine's vocabulary.

The pipeline is ``SQL text -> SelectStmt -> QuerySpec -> CompiledPlan``:

* :func:`lower` distils a parsed :class:`~repro.query.nodes.SelectStmt`
  into a :class:`QuerySpec` — the typed, engine-facing summary of the
  query (condition kind and parameters, window/policy specs, key dtype);
* :func:`compile_spec` materialises the spec through the engine's own
  factories — :func:`repro.joins.conditions.make_condition`,
  :func:`repro.streaming.window.make_window`,
  :func:`repro.streaming.pipeline.make_backpressure` — into a
  :class:`CompiledPlan` ready to drive a
  :class:`~repro.streaming.engine.StreamingJoinEngine`;
* :func:`compile_sql` does both, and by default runs the admission rule
  battery first (:mod:`repro.query.rules`), raising
  :class:`AdmissionError` on any unsuppressed finding — the front-door
  contract: anti-patterns never reach a worker fleet.

Exact integers survive the whole path: an integral band width spelled in
the query stays a Python int through :class:`QuerySpec` into
``make_condition``, engaging the engine's exact int64 band arithmetic
(keys above 2**53 never round — the ``exact_integer_keys`` discipline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.joins.conditions import JoinCondition, make_condition
from repro.query.nodes import (
    INEQUALITY_OPS,
    AndCondition,
    BandPredicate,
    ColumnRef,
    Comparison,
    Literal,
    Node,
    SelectStmt,
    TableRef,
)
from repro.query.parser import parse_sql
from repro.streaming.pipeline import BackpressurePolicy, make_backpressure
from repro.streaming.window import WindowPolicy, make_window

if TYPE_CHECKING:
    from repro.analysis.engine import Finding

__all__ = [
    "CompileError",
    "AdmissionError",
    "QuerySpec",
    "CompiledPlan",
    "lower",
    "compile_spec",
    "compile_sql",
]


class CompileError(ValueError):
    """A parsed spec that cannot be lowered to an engine plan."""


class AdmissionError(ValueError):
    """A spec the admission rule battery rejected.

    Attributes
    ----------
    findings:
        The unsuppressed findings, in position order.
    """

    def __init__(self, findings: "list[Finding]") -> None:
        lines = [
            f"{f.location()}: {f.rule_id} {f.message}" for f in findings
        ]
        super().__init__(
            "query rejected by admission checks:\n" + "\n".join(lines)
        )
        self.findings = findings


# Mirror-image comparison operators, for normalising an inequality whose
# left operand belongs to the *right* stream (``r2.key < r1.key``).
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass(frozen=True)
class QuerySpec:
    """The engine-facing summary of one admitted join query.

    Attributes
    ----------
    left, right:
        Stream (relation) names, in spec order.
    kind:
        Condition kind, one of
        :data:`repro.joins.conditions.CONDITION_KINDS`.
    beta:
        Band width (``0`` for equi/inequality).  Stays a Python int when
        the query spelled it integrally.
    op:
        Inequality operator symbol, normalised to the left-stream
        orientation (``None`` for other kinds).
    window_spec, policy_spec:
        The window / backpressure spec strings (``None`` = engine
        defaults: unbounded window, ``block`` policy).
    queue_batches:
        Bounded-queue depth for the pipeline (``None`` = default).
    scale, domain:
        Composite-key encoding parameters (``None`` for other kinds).
    key_dtype:
        Declared join-key dtype, ``"int"`` (default) or ``"float"``.
    """

    left: str
    right: str
    kind: str
    beta: "int | float" = 0
    op: "str | None" = None
    window_spec: "str | None" = None
    policy_spec: "str | None" = None
    queue_batches: "int | None" = None
    scale: "float | None" = None
    domain: "tuple[float, float] | None" = None
    key_dtype: str = "int"


@dataclass(frozen=True)
class CompiledPlan:
    """A spec materialised through the engine factories, ready to run."""

    spec: QuerySpec
    condition: JoinCondition
    window: WindowPolicy
    policy: BackpressurePolicy
    queue_batches: "int | None" = None


def _column_side(column: ColumnRef, left: TableRef, right: TableRef) -> str:
    """Which stream a column belongs to: ``"left"`` or ``"right"``.

    Unqualified columns are ambiguous and rejected — the lowering must
    know the orientation to preserve inequality semantics.
    """
    if left.binds(column.table):
        return "left"
    if right.binds(column.table):
        return "right"
    raise CompileError(
        f"line {column.line}:{column.col}: column {column.text()!r} does not "
        f"resolve to either stream ({left.alias or left.name!r}, "
        f"{right.alias or right.name!r}); qualify it with a table or alias"
    )


def _classify(
    condition: "Node | None", left: TableRef, right: TableRef
) -> "tuple[str, int | float, str | None]":
    """Distil a condition tree to ``(kind, beta, op)``.

    Recognised shapes (the grammar guarantees nothing deeper):

    * ``None`` / boolean literal / literal-vs-literal -> ``"cross"``
      (no real condition; QRY001 territory, unloadable);
    * column ``=`` column -> ``"equi"``;
    * band predicate -> ``"band"`` with its width;
    * column ``< <= > >=`` column -> ``"inequality"``, operator
      normalised to the left-stream-first orientation;
    * equality AND band -> ``"composite"``.
    """
    if condition is None or isinstance(condition, Literal):
        return "cross", 0, None
    if isinstance(condition, Comparison):
        if isinstance(condition.left, Literal) and isinstance(
            condition.right, Literal
        ):
            return "cross", 0, None
        if not (
            isinstance(condition.left, ColumnRef)
            and isinstance(condition.right, ColumnRef)
        ):
            raise CompileError(
                f"line {condition.line}:{condition.col}: a join condition "
                "must compare columns of the two streams (column-vs-literal "
                "comparisons are filters, not joins)"
            )
        left_side = _column_side(condition.left, left, right)
        right_side = _column_side(condition.right, left, right)
        if left_side == right_side:
            raise CompileError(
                f"line {condition.line}:{condition.col}: both sides of the "
                f"condition bind to the {left_side} stream; a join must "
                "relate the two streams"
            )
        op = condition.op
        if left_side == "right":
            op = _FLIPPED.get(op, op)
        if op == "=":
            return "equi", 0, None
        if op in INEQUALITY_OPS:
            return "inequality", 0, op
        raise CompileError(
            f"line {condition.line}:{condition.col}: operator "
            f"{condition.op!r} is not a monotonic join condition"
        )
    if isinstance(condition, BandPredicate):
        # Orientation check only: a band is symmetric, but both columns
        # must still resolve, one per stream.
        sides = {
            _column_side(condition.left, left, right),
            _column_side(condition.right, left, right),
        }
        if sides != {"left", "right"}:
            raise CompileError(
                f"line {condition.line}:{condition.col}: a band predicate "
                "must relate the two streams"
            )
        return "band", condition.width.value, None
    if isinstance(condition, AndCondition):
        kinds = [_classify(term, left, right) for term in condition.terms]
        equis = [k for k in kinds if k[0] == "equi"]
        bands = [k for k in kinds if k[0] == "band"]
        if len(kinds) == 2 and len(equis) == 1 and len(bands) == 1:
            return "composite", bands[0][1], None
        raise CompileError(
            f"line {condition.line}:{condition.col}: unsupported "
            "conjunction; the composite form is exactly one equality AND "
            "one band predicate"
        )
    raise CompileError(
        f"line {condition.line}:{condition.col}: unsupported condition"
    )


def lower(statement: SelectStmt) -> QuerySpec:
    """Distil a parsed statement into a :class:`QuerySpec`.

    Raises :class:`CompileError` on shapes that cannot reach the engine:
    cross joins (no condition relates the streams), unresolvable columns,
    a composite condition without its ``SCALE`` clause.
    """
    left = statement.left
    right = statement.join.table
    if statement.join.kind == "cross":
        kind: str = "cross"
        beta: "int | float" = 0
        op: "str | None" = None
    else:
        kind, beta, op = _classify(statement.join.condition, left, right)
    if kind == "cross":
        raise CompileError(
            f"line {statement.join.line}:{statement.join.col}: cross joins "
            "are not admissible — every pair of tuples matches, so state "
            "and output are O(n^2); give the join a condition"
        )
    scale: "float | None" = None
    domain: "tuple[float, float] | None" = None
    if kind == "composite":
        if statement.scale is None:
            raise CompileError(
                f"line {statement.join.line}:{statement.join.col}: the "
                "composite equi+band form needs a SCALE clause "
                "(SCALE s DOMAIN lo TO hi) for the lexicographic key "
                "encoding"
            )
        scale = statement.scale.scale
        domain = (statement.scale.domain_min, statement.scale.domain_max)
    return QuerySpec(
        left=left.name,
        right=right.name,
        kind=kind,
        beta=beta,
        op=op,
        window_spec=statement.window.spec if statement.window else None,
        policy_spec=statement.policy.spec if statement.policy else None,
        queue_batches=statement.policy.queue if statement.policy else None,
        scale=scale,
        domain=domain,
        key_dtype=statement.key_dtype,
    )


def compile_spec(spec: QuerySpec) -> CompiledPlan:
    """Materialise a spec through the engine factories.

    Factory ``ValueError``s (unknown window spec, bad scale, ...) are
    re-raised as :class:`CompileError` with the factory's message — the
    same messages QRY005 reports at admission time.
    """
    try:
        if spec.kind == "composite":
            assert spec.scale is not None and spec.domain is not None
            condition = make_condition(
                "composite",
                beta=spec.beta,
                scale=spec.scale,
                band_key_min=spec.domain[0],
                band_key_max=spec.domain[1],
            )
        elif spec.kind == "inequality":
            condition = make_condition("inequality", op=spec.op)
        else:
            condition = make_condition(spec.kind, beta=spec.beta)
        window = make_window(spec.window_spec)
        policy = make_backpressure(spec.policy_spec or "block")
    except ValueError as error:
        raise CompileError(str(error)) from None
    if spec.queue_batches is not None and spec.queue_batches < 1:
        raise CompileError(
            f"queue depth must be >= 1, got {spec.queue_batches}"
        )
    return CompiledPlan(
        spec=spec,
        condition=condition,
        window=window,
        policy=policy,
        queue_batches=spec.queue_batches,
    )


def compile_sql(
    sql: str,
    *,
    dialect: str = "builtin",
    admit: bool = True,
    path: str = "<query>",
) -> CompiledPlan:
    """Parse, (optionally) admission-check, and compile one join spec.

    Parameters
    ----------
    sql:
        The spec text.
    dialect:
        Parser front-end (see :func:`repro.query.parser.parse_sql`).
    admit:
        When true (the default — the front-door contract), run the
        admission battery first and raise :class:`AdmissionError` on any
        unsuppressed finding.  ``admit=False`` compiles whatever lowers,
        for tooling that wants the plan of a rejected spec.
    path:
        Path used in finding locations (the CLI passes the file path).
    """
    if admit:
        from repro.query.rules import QueryAnalyzer

        report = QueryAnalyzer(dialect=dialect).analyze_source(sql, path)
        if report.error is not None:
            raise CompileError(report.error)
        if report.findings and any(
            not finding.suppressed for finding in report.findings
        ):
            raise AdmissionError(
                [f for f in report.findings if not f.suppressed]
            )
    statement = parse_sql(sql, dialect=dialect)
    return compile_spec(lower(statement))
