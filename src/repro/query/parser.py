"""Parsing SQL-ish join specs into :mod:`repro.query.nodes` trees.

Two front-ends produce the same AST:

* the **builtin** dialect — a self-contained tokenizer and recursive-descent
  parser covering the full documented grammar (``docs/query.md``), with
  exact token positions for findings and ``--`` comment capture for
  suppressions.  No dependencies; this is the default.
* the **sqlglot** dialect — routes the SQL core (SELECT/FROM/JOIN/ON/WHERE)
  through `sqlglot <https://github.com/tobymao/sqlglot>`_ when the
  ``query`` extra is installed (``pip install 'repro[query]'``), mapping
  its expression nodes onto ours.  The engine-specific trailing clauses
  (``WINDOW``/``POLICY``/``SCALE``/``KEYS``) are not SQL; they are always
  split off by the builtin tokenizer first.

``dialect="auto"`` uses sqlglot when importable and the builtin parser
otherwise, so core behaviour never depends on the optional extra.

The literal path preserves exact integers: a literal spelled without a
decimal point or exponent is parsed with :func:`int`, never routed through
:func:`float` — a band width of ``9007199254740993`` (2**53 + 1) written
in a query reaches :class:`repro.joins.conditions.BandJoinCondition`
un-rounded (the ``exact_integer_keys`` discipline).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.query.nodes import (
    COMPARISON_OPS,
    AndCondition,
    BandPredicate,
    ColumnRef,
    Comparison,
    JoinClause,
    KeysClause,
    Literal,
    Node,
    PolicyClause,
    ScaleClause,
    SelectStmt,
    TableRef,
    WindowClause,
)

__all__ = [
    "ParseError",
    "Token",
    "tokenize_sql",
    "parse_sql",
    "sqlglot_available",
    "require_sqlglot",
]

_KEYWORDS = frozenset(
    {
        "SELECT", "COUNT", "FROM", "AS", "CROSS", "INNER", "JOIN", "ON",
        "WHERE", "AND", "ABS", "BETWEEN", "WINDOW", "POLICY", "QUEUE",
        "SCALE", "DOMAIN", "TO", "KEYS", "INT", "FLOAT", "TRUE", "FALSE",
    }
)

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>--[^\n]*)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<number>\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?)
  | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|<>|[=<>().,*+\-])
  | (?P<space>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)


class ParseError(ValueError):
    """A join spec that does not fit the grammar, with a position.

    Attributes
    ----------
    line, col:
        1-based line and 0-based column of the offending token.
    """

    def __init__(self, message: str, line: int = 1, col: int = 0) -> None:
        super().__init__(f"line {line}:{col}: {message}")
        self.line = line
        self.col = col


@dataclass(frozen=True)
class Token:
    """One lexed token: kind, text, and position."""

    kind: str  # KEYWORD | IDENT | NUMBER | STRING | OP | EOF
    text: str
    line: int
    col: int


def tokenize_sql(source: str) -> "tuple[list[Token], list[tuple[int, int, str]]]":
    """Lex a join spec; return ``(tokens, comments)``.

    Comments are ``(line, col, text)`` triples for every ``--`` comment,
    in the shape :func:`repro.analysis.engine.scan_suppressions` consumes —
    suppression comments in query files are real comment tokens, never
    string contents.
    """
    tokens: list[Token] = []
    comments: list[tuple[int, int, str]] = []
    line = 1
    line_start = 0
    for match in _TOKEN_RE.finditer(source):
        col = match.start() - line_start
        text = match.group()
        kind = match.lastgroup or "bad"
        if kind == "space":
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = match.start() + text.rfind("\n") + 1
            continue
        if kind == "comment":
            comments.append((line, col, text))
            continue
        if kind == "bad":
            raise ParseError(f"unexpected character {text!r}", line, col)
        if kind == "word":
            upper = text.upper()
            kind = "KEYWORD" if upper in _KEYWORDS else "IDENT"
        elif kind == "string":
            kind = "STRING"
        elif kind == "number":
            kind = "NUMBER"
        else:
            kind = "OP"
        tokens.append(Token(kind, text, line, col))
    tokens.append(Token("EOF", "", line, len(source) - line_start))
    return tokens, comments


def _literal_value(text: str) -> "int | float":
    """Parse a numeric literal, preserving exact integers.

    Integer-spelled text goes through :func:`int` — never ``float`` — so
    int64-range values above 2**53 survive bit-exact.
    """
    if re.fullmatch(r"\d+", text):
        return int(text)
    return float(text)


class _Parser:
    """Recursive-descent parser over the token stream (builtin dialect)."""

    def __init__(self, tokens: "list[Token]") -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self.pos += 1
        return token

    def at_keyword(self, *words: str) -> bool:
        token = self.current
        return token.kind == "KEYWORD" and token.text.upper() in words

    def expect_keyword(self, word: str) -> Token:
        if not self.at_keyword(word):
            raise ParseError(
                f"expected {word}, got {self.current.text or 'end of input'!r}",
                self.current.line,
                self.current.col,
            )
        return self.advance()

    def expect_op(self, op: str) -> Token:
        token = self.current
        if token.kind != "OP" or token.text != op:
            raise ParseError(
                f"expected {op!r}, got {token.text or 'end of input'!r}",
                token.line,
                token.col,
            )
        return self.advance()

    def expect_ident(self, what: str) -> Token:
        token = self.current
        if token.kind != "IDENT":
            raise ParseError(
                f"expected {what}, got {token.text or 'end of input'!r}",
                token.line,
                token.col,
            )
        return self.advance()

    def expect_string(self, what: str) -> Token:
        token = self.current
        if token.kind != "STRING":
            raise ParseError(
                f"expected a quoted {what} string, "
                f"got {token.text or 'end of input'!r}",
                token.line,
                token.col,
            )
        return self.advance()

    def expect_number(self, what: str) -> Token:
        token = self.current
        if token.kind != "NUMBER":
            raise ParseError(
                f"expected a {what} number, got {token.text or 'end of input'!r}",
                token.line,
                token.col,
            )
        return self.advance()

    # -- grammar --------------------------------------------------------
    def statement(self) -> SelectStmt:
        start = self.expect_keyword("SELECT")
        projection = self.projection()
        self.expect_keyword("FROM")
        left = self.table_ref()
        join = self.join_clause()
        window: "WindowClause | None" = None
        policy: "PolicyClause | None" = None
        scale: "ScaleClause | None" = None
        keys: "KeysClause | None" = None
        while self.current.kind != "EOF":
            token = self.current
            if self.at_keyword("WHERE"):
                self.advance()
                if join.condition is not None:
                    raise ParseError(
                        "both ON and WHERE give a join condition; use one",
                        token.line,
                        token.col,
                    )
                condition = self.condition()
                join = JoinClause(
                    kind=join.kind,
                    table=join.table,
                    condition=condition,
                    line=join.line,
                    col=join.col,
                )
            elif self.at_keyword("WINDOW"):
                if window is not None:
                    raise ParseError("duplicate WINDOW clause", token.line, token.col)
                self.advance()
                spec = self.expect_string("window spec")
                window = WindowClause(
                    spec=spec.text[1:-1], line=token.line, col=token.col
                )
            elif self.at_keyword("POLICY"):
                if policy is not None:
                    raise ParseError("duplicate POLICY clause", token.line, token.col)
                self.advance()
                spec = self.expect_string("policy mode")
                queue: "int | None" = None
                if self.at_keyword("QUEUE"):
                    self.advance()
                    queue_tok = self.expect_number("queue depth")
                    value = _literal_value(queue_tok.text)
                    if not isinstance(value, int):
                        raise ParseError(
                            "queue depth must be an integer",
                            queue_tok.line,
                            queue_tok.col,
                        )
                    queue = value
                policy = PolicyClause(
                    spec=spec.text[1:-1],
                    queue=queue,
                    line=token.line,
                    col=token.col,
                )
            elif self.at_keyword("SCALE"):
                if scale is not None:
                    raise ParseError("duplicate SCALE clause", token.line, token.col)
                self.advance()
                scale_tok = self.expect_number("scale")
                lo = hi = 0.0
                if self.at_keyword("DOMAIN"):
                    self.advance()
                    lo = float(self.signed_number("domain lower bound"))
                    self.expect_keyword("TO")
                    hi = float(self.signed_number("domain upper bound"))
                scale = ScaleClause(
                    scale=float(scale_tok.text),
                    domain_min=lo,
                    domain_max=hi,
                    line=token.line,
                    col=token.col,
                )
            elif self.at_keyword("KEYS"):
                if keys is not None:
                    raise ParseError("duplicate KEYS clause", token.line, token.col)
                self.advance()
                if not self.at_keyword("INT", "FLOAT"):
                    raise ParseError(
                        f"expected INT or FLOAT, got {self.current.text!r}",
                        self.current.line,
                        self.current.col,
                    )
                dtype = self.advance()
                keys = KeysClause(
                    dtype=dtype.text.lower(), line=token.line, col=token.col
                )
            else:
                raise ParseError(
                    f"unexpected {token.text!r} after the join",
                    token.line,
                    token.col,
                )
        return SelectStmt(
            projection=projection,
            left=left,
            join=join,
            window=window,
            policy=policy,
            scale=scale,
            keys=keys,
            line=start.line,
            col=start.col,
        )

    def projection(self) -> str:
        if self.at_keyword("COUNT"):
            self.advance()
            self.expect_op("(")
            self.expect_op("*")
            self.expect_op(")")
            return "count(*)"
        self.expect_op("*")
        return "*"

    def table_ref(self) -> TableRef:
        name = self.expect_ident("a table name")
        alias: "str | None" = None
        if self.at_keyword("AS"):
            self.advance()
            alias = self.expect_ident("an alias").text
        elif self.current.kind == "IDENT":
            alias = self.advance().text
        return TableRef(
            name=name.text, alias=alias, line=name.line, col=name.col
        )

    def join_clause(self) -> JoinClause:
        token = self.current
        if token.kind == "OP" and token.text == ",":
            # Comma form: FROM r1, r2 [WHERE cond] — an implicit join whose
            # condition (if any) arrives later via WHERE.
            self.advance()
            table = self.table_ref()
            return JoinClause(
                kind="implicit", table=table, line=token.line, col=token.col
            )
        kind = "inner"
        if self.at_keyword("CROSS"):
            kind = "cross"
            self.advance()
        elif self.at_keyword("INNER"):
            self.advance()
        join_tok = self.expect_keyword("JOIN")
        table = self.table_ref()
        condition: "Node | None" = None
        if self.at_keyword("ON"):
            self.advance()
            condition = self.condition()
        return JoinClause(
            kind=kind,
            table=table,
            condition=condition,
            line=join_tok.line,
            col=join_tok.col,
        )

    def condition(self) -> Node:
        terms = [self.conjunct()]
        start = terms[0]
        while self.at_keyword("AND"):
            self.advance()
            terms.append(self.conjunct())
        if len(terms) == 1:
            return terms[0]
        return AndCondition(
            terms=tuple(terms), line=start.line, col=start.col
        )

    def conjunct(self) -> Node:
        if self.at_keyword("ABS"):
            return self.band_abs()
        if self.at_keyword("TRUE", "FALSE"):
            token = self.advance()
            return Literal(
                value=token.text.upper() == "TRUE",
                raw=token.text,
                line=token.line,
                col=token.col,
            )
        left = self.operand()
        if self.at_keyword("BETWEEN"):
            if not isinstance(left, ColumnRef):
                raise ParseError(
                    "BETWEEN band form needs a column on the left",
                    self.current.line,
                    self.current.col,
                )
            return self.band_between(left)
        op_tok = self.current
        if op_tok.kind != "OP" or op_tok.text not in COMPARISON_OPS:
            raise ParseError(
                f"expected a comparison operator, got {op_tok.text!r}",
                op_tok.line,
                op_tok.col,
            )
        self.advance()
        right = self.operand()
        return Comparison(
            op=op_tok.text, left=left, right=right, line=left.line, col=left.col
        )

    def band_abs(self) -> BandPredicate:
        """``ABS(a.x - b.y) <= w``."""
        abs_tok = self.expect_keyword("ABS")
        self.expect_op("(")
        left = self.column()
        self.expect_op("-")
        right = self.column()
        self.expect_op(")")
        self.expect_op("<=")
        width = self.literal("band width")
        return BandPredicate(
            left=left,
            right=right,
            width=width,
            form="abs",
            line=abs_tok.line,
            col=abs_tok.col,
        )

    def band_between(self, left: ColumnRef) -> BandPredicate:
        """``a.x BETWEEN b.y - w AND b.y + w`` (same column, same width)."""
        between_tok = self.expect_keyword("BETWEEN")
        lo_col = self.column()
        self.expect_op("-")
        lo_width = self.literal("band width")
        self.expect_keyword("AND")
        hi_col = self.column()
        self.expect_op("+")
        hi_width = self.literal("band width")
        if (lo_col.table, lo_col.column) != (hi_col.table, hi_col.column):
            raise ParseError(
                "BETWEEN band form must reference one column on both bounds "
                f"(got {lo_col.text()} and {hi_col.text()})",
                hi_col.line,
                hi_col.col,
            )
        if lo_width.raw != hi_width.raw:
            raise ParseError(
                "BETWEEN band form must use one width on both bounds "
                f"(got {lo_width.raw} and {hi_width.raw})",
                hi_width.line,
                hi_width.col,
            )
        return BandPredicate(
            left=left,
            right=lo_col,
            width=lo_width,
            form="between",
            line=between_tok.line,
            col=between_tok.col,
        )

    def operand(self) -> Node:
        token = self.current
        if token.kind == "IDENT":
            return self.column()
        if token.kind == "NUMBER" or (token.kind == "OP" and token.text == "-"):
            return self.literal("a numeric literal")
        raise ParseError(
            f"expected a column or literal, got {token.text or 'end of input'!r}",
            token.line,
            token.col,
        )

    def column(self) -> ColumnRef:
        first = self.expect_ident("a column reference")
        if self.current.kind == "OP" and self.current.text == ".":
            self.advance()
            second = self.expect_ident("a column name")
            return ColumnRef(
                table=first.text,
                column=second.text,
                line=first.line,
                col=first.col,
            )
        return ColumnRef(
            table=None, column=first.text, line=first.line, col=first.col
        )

    def literal(self, what: str) -> Literal:
        sign = ""
        token = self.current
        if token.kind == "OP" and token.text == "-":
            sign = "-"
            self.advance()
        number = self.expect_number(what)
        value = _literal_value(number.text)
        return Literal(
            value=-value if sign else value,
            raw=sign + number.text,
            line=token.line,
            col=token.col,
        )

    def signed_number(self, what: str) -> float:
        sign = 1.0
        if self.current.kind == "OP" and self.current.text == "-":
            sign = -1.0
            self.advance()
        return sign * float(self.expect_number(what).text)


# ----------------------------------------------------------------------
# The optional sqlglot dialect
# ----------------------------------------------------------------------
def sqlglot_available() -> bool:
    """Whether the optional sqlglot dependency is importable."""
    try:
        import sqlglot  # noqa: F401
    except ImportError:
        return False
    return True


def require_sqlglot() -> Any:
    """Import sqlglot or fail with the install hint for the extra."""
    try:
        import sqlglot
    except ImportError:
        raise ImportError(
            "the sqlglot dialect needs the optional 'query' extra; "
            "install it with: pip install 'repro[query]'"
        ) from None
    return sqlglot


#: The engine-specific trailing clauses the builtin tokenizer always owns.
_EXTENSION_KEYWORDS = ("WINDOW", "POLICY", "SCALE", "KEYS")


def _split_extensions(tokens: "list[Token]") -> int:
    """Index of the first top-level extension token (EOF index if none)."""
    depth = 0
    for index, token in enumerate(tokens):
        if token.kind == "OP" and token.text == "(":
            depth += 1
        elif token.kind == "OP" and token.text == ")":
            depth -= 1
        elif (
            depth == 0
            and token.kind == "KEYWORD"
            and token.text.upper() in _EXTENSION_KEYWORDS
        ):
            return index
    return len(tokens) - 1


def _parse_with_sqlglot(sql: str) -> SelectStmt:
    """Parse via sqlglot, mapping its expression tree onto our nodes.

    The extension clauses are split off first (they are not SQL); the
    remaining SELECT core goes through ``sqlglot.parse_one`` and the
    resulting expressions are mapped.  Unsupported SQL shapes raise
    :class:`ParseError` — the admission battery only reasons about the
    documented grammar.
    """
    sqlglot = require_sqlglot()
    exp = sqlglot.expressions
    tokens, _ = tokenize_sql(sql)
    boundary = _split_extensions(tokens)
    if tokens[boundary].kind != "EOF":
        # Reconstruct the extension tail from the original text so the
        # builtin parser handles WINDOW/POLICY/SCALE/KEYS uniformly.
        core_end = tokens[boundary].line, tokens[boundary].col
        lines = sql.splitlines()
        offset = sum(len(line) + 1 for line in lines[: core_end[0] - 1])
        split_at = offset + core_end[1]
        core_sql, tail_sql = sql[:split_at], sql[split_at:]
    else:
        core_sql, tail_sql = sql, ""

    try:
        parsed = sqlglot.parse_one(core_sql)
    except sqlglot.errors.ParseError as error:
        raise ParseError(f"sqlglot: {error}") from None
    if not isinstance(parsed, exp.Select):
        raise ParseError("expected a SELECT statement")

    def map_column(node: Any) -> ColumnRef:
        if not isinstance(node, exp.Column):
            raise ParseError(f"expected a column, got {node.sql()!r}")
        table = node.table or None
        return ColumnRef(table=table, column=node.name)

    def map_literal(node: Any) -> Literal:
        if isinstance(node, exp.Neg):
            inner = map_literal(node.this)
            value = inner.value
            if isinstance(value, bool):
                raise ParseError("cannot negate a boolean literal")
            return Literal(value=-value, raw=f"-{inner.raw}")
        if isinstance(node, exp.Boolean):
            return Literal(value=bool(node.this), raw=node.sql())
        if not isinstance(node, exp.Literal) or node.is_string:
            raise ParseError(f"expected a numeric literal, got {node.sql()!r}")
        return Literal(value=_literal_value(node.name), raw=node.name)

    def map_operand(node: Any) -> Node:
        if isinstance(node, exp.Column):
            return map_column(node)
        return map_literal(node)

    _OPS = {
        exp.EQ: "=",
        exp.LT: "<",
        exp.LTE: "<=",
        exp.GT: ">",
        exp.GTE: ">=",
        exp.NEQ: "<>",
    }

    def map_condition(node: Any) -> Node:
        if isinstance(node, exp.Paren):
            return map_condition(node.this)
        if isinstance(node, exp.And):
            terms: list[Node] = []
            for side in (node.left, node.right):
                mapped = map_condition(side)
                if isinstance(mapped, AndCondition):
                    terms.extend(mapped.terms)
                else:
                    terms.append(mapped)
            return AndCondition(terms=tuple(terms))
        if isinstance(node, exp.Between):
            column = map_column(node.this)
            low, high = node.args["low"], node.args["high"]
            if not (isinstance(low, exp.Sub) and isinstance(high, exp.Add)):
                raise ParseError(
                    "BETWEEN band form must be col BETWEEN c - w AND c + w"
                )
            lo_col, lo_w = map_column(low.left), map_literal(low.right)
            hi_col, hi_w = map_column(high.left), map_literal(high.right)
            if (lo_col.table, lo_col.column) != (hi_col.table, hi_col.column):
                raise ParseError(
                    "BETWEEN band form must reference one column on both bounds"
                )
            if lo_w.raw != hi_w.raw:
                raise ParseError(
                    "BETWEEN band form must use one width on both bounds"
                )
            return BandPredicate(
                left=column, right=lo_col, width=lo_w, form="between"
            )
        if isinstance(node, exp.LTE) and isinstance(node.left, exp.Abs):
            diff = node.left.this
            if not isinstance(diff, exp.Sub):
                raise ParseError("ABS band form must be ABS(a.x - b.y) <= w")
            return BandPredicate(
                left=map_column(diff.left),
                right=map_column(diff.right),
                width=map_literal(node.right),
                form="abs",
            )
        if isinstance(node, exp.Boolean):
            return map_literal(node)
        for op_type, op in _OPS.items():
            if isinstance(node, op_type):
                return Comparison(
                    op=op,
                    left=map_operand(node.left),
                    right=map_operand(node.right),
                )
        raise ParseError(f"unsupported condition shape: {node.sql()!r}")

    def map_table(node: Any) -> TableRef:
        if not isinstance(node, exp.Table):
            raise ParseError(f"expected a table, got {node.sql()!r}")
        alias = node.alias or None
        return TableRef(name=node.name, alias=alias)

    from_clause = parsed.args.get("from")
    if from_clause is None:
        raise ParseError("expected a FROM clause")
    left = map_table(from_clause.this)

    joins = parsed.args.get("joins") or []
    where = parsed.args.get("where")
    condition: "Node | None" = None
    if where is not None:
        condition = map_condition(where.this)

    if joins:
        if len(joins) != 1:
            raise ParseError("exactly one join is supported")
        join_exp = joins[0]
        table = map_table(join_exp.this)
        on_exp = join_exp.args.get("on")
        kind = (join_exp.kind or "").lower()
        if on_exp is not None:
            if condition is not None:
                raise ParseError(
                    "both ON and WHERE give a join condition; use one"
                )
            condition = map_condition(on_exp)
        join = JoinClause(
            kind="cross" if kind == "cross" else "inner",
            table=table,
            condition=condition,
        )
    else:
        # sqlglot parses `FROM r1, r2` as the second table in a join list
        # on modern versions; when it does not appear, there is no join.
        raise ParseError("expected a JOIN (or a comma-joined second table)")

    projection = "count(*)"
    expressions = parsed.expressions
    if len(expressions) == 1 and isinstance(expressions[0], exp.Star):
        projection = "*"

    core = SelectStmt(projection=projection, left=left, join=join)
    if not tail_sql.strip():
        return core
    # Parse the extension tail with the builtin parser by prepending a
    # minimal core, then graft the clauses onto the sqlglot-parsed core.
    stub = f"SELECT COUNT(*) FROM a JOIN b ON a.x = b.x {tail_sql}"
    tail = parse_sql(stub, dialect="builtin")
    return SelectStmt(
        projection=core.projection,
        left=core.left,
        join=core.join,
        window=tail.window,
        policy=tail.policy,
        scale=tail.scale,
        keys=tail.keys,
    )


def parse_sql(sql: str, dialect: str = "builtin") -> SelectStmt:
    """Parse one join spec into a :class:`~repro.query.nodes.SelectStmt`.

    Parameters
    ----------
    sql:
        The spec text (``docs/query.md`` has the grammar).
    dialect:
        ``"builtin"`` (default, no dependencies), ``"sqlglot"`` (requires
        the ``query`` extra; raises ``ImportError`` with the install hint
        when absent) or ``"auto"`` (sqlglot when importable, else builtin).

    Raises
    ------
    ParseError
        When the text does not fit the grammar.
    """
    if dialect == "auto":
        dialect = "sqlglot" if sqlglot_available() else "builtin"
    if dialect == "sqlglot":
        return _parse_with_sqlglot(sql)
    if dialect != "builtin":
        raise ValueError(
            f"unknown dialect {dialect!r}; choose 'builtin', 'sqlglot' or 'auto'"
        )
    tokens, _ = tokenize_sql(sql)
    return _Parser(tokens).statement()
