"""`repro.query` — the SQL join front door: compile, admit, price.

Parses SQL-ish join specs (``SELECT ... FROM r1 JOIN r2 ON <condition>
[WINDOW ...] [POLICY ...]``) into typed ASTs, statically rejects
anti-patterns through the generalized :mod:`repro.analysis` rule engine
(cross joins, bandless inequality on unbounded windows, shed-into-
unbounded silent loss, float literals against int64 keys, unparseable
specs), lowers admitted specs to the streaming engine's own vocabulary
(:class:`~repro.joins.conditions.JoinCondition`,
:class:`~repro.streaming.window.WindowPolicy`,
:class:`~repro.streaming.pipeline.BackpressurePolicy`), and prices the
resulting plan (:mod:`repro.query.plan`).  Integer literals survive the
whole path exactly — a band width above 2**53 never rounds through float.

Run it as a module::

    python -m repro.query check examples/queries      # exit 1 on findings
    python -m repro.query check specs/ --format json --output report.json
    python -m repro.query plan examples/queries/admitted/band_window.sql

The builtin parser has no dependencies; ``--dialect sqlglot`` routes the
SQL core through sqlglot when the optional extra is installed
(``pip install 'repro[query]'``).  Grammar, lowering table and rule
catalogue: ``docs/query.md``.
"""

from repro.query.compiler import (
    AdmissionError,
    CompiledPlan,
    CompileError,
    QuerySpec,
    compile_spec,
    compile_sql,
    lower,
)
from repro.query.nodes import QueryContext, QueryWalker, SelectStmt
from repro.query.parser import ParseError, parse_sql, sqlglot_available
from repro.query.plan import PlanReport, estimate_plan, format_plan_report
from repro.query.rules import (
    ALL_QUERY_RULES,
    QueryAnalyzer,
    default_query_rules,
)

__all__ = [
    "AdmissionError",
    "CompiledPlan",
    "CompileError",
    "QuerySpec",
    "compile_spec",
    "compile_sql",
    "lower",
    "QueryContext",
    "QueryWalker",
    "SelectStmt",
    "ParseError",
    "parse_sql",
    "sqlglot_available",
    "PlanReport",
    "estimate_plan",
    "format_plan_report",
    "ALL_QUERY_RULES",
    "QueryAnalyzer",
    "default_query_rules",
]
