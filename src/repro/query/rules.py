"""The admission rule battery: anti-patterns rejected before a query runs.

Each rule names one way a join spec, though parseable, would hurt the
fleet it is admitted to — unbounded O(n²) state, silent data loss, the
int64 precision trap.  They run through the *same* generalized engine as
the Python battery (:func:`repro.analysis.engine.check_tree` with
:class:`~repro.query.nodes.QueryWalker`), so findings, suppressions
(``-- repro: ignore[QRY002]  -- why``), reporters, JSON artifacts and the
CLI exit-code contract are shared verbatim:

========  ==========================================================
QRY001    no cross joins (missing or trivially-true condition)
QRY002    bandless inequality requires a bounded window
QRY003    unbounded window + shed policy silently loses data
QRY004    float literals against integer key columns (mirrors KEY001)
QRY005    window/policy specs must parse against the factories
SUP001    suppression comments must cite rule ids that exist
========  ==========================================================

``docs/query.md`` carries the full catalogue with examples; the fixture
specs under ``examples/queries/`` pin each rule in CI.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, ClassVar, Iterable, Iterator, Sequence

from repro.analysis.engine import (
    AnalysisReport,
    FileReport,
    Rule,
    Violation,
    check_tree,
    scan_suppressions,
)
from repro.analysis.rules.suppressions import UnknownSuppressionRule
from repro.query.nodes import (
    INEQUALITY_OPS,
    QUERY_WALKER,
    BandPredicate,
    ColumnRef,
    Comparison,
    JoinClause,
    Literal,
    PolicyClause,
    QueryContext,
    WindowClause,
)
from repro.query.parser import ParseError, parse_sql, tokenize_sql
from repro.streaming.pipeline import make_backpressure
from repro.streaming.window import make_window

__all__ = [
    "CrossJoinRule",
    "BandlessInequalityRule",
    "ShedOnUnboundedRule",
    "FloatKeyLiteralRule",
    "SpecStringRule",
    "ALL_QUERY_RULES",
    "default_query_rules",
    "QueryAnalyzer",
]


def _is_trivially_true(condition: Any) -> bool:
    """Whether a condition can never filter anything (``TRUE``, ``1 = 1``)."""
    if isinstance(condition, Literal):
        return bool(condition.value)
    if (
        isinstance(condition, Comparison)
        and isinstance(condition.left, Literal)
        and isinstance(condition.right, Literal)
    ):
        lhs, rhs = condition.left.value, condition.right.value
        return {
            "=": lhs == rhs,
            "<": lhs < rhs,
            "<=": lhs <= rhs,
            ">": lhs > rhs,
            ">=": lhs >= rhs,
            "<>": lhs != rhs,
        }[condition.op]
    return False


class CrossJoinRule(Rule):
    """QRY001: every admitted join must have a real condition.

    A cross join — explicit ``CROSS JOIN``, a join with no ``ON``/
    ``WHERE``, or a condition that is trivially true — matches every pair
    of tuples: output and per-batch cost are O(|R1|·|R2|) and no window
    bounds the damage.  The engine's monotonic-join machinery cannot even
    represent it; reject at the door.
    """

    rule_id: ClassVar[str] = "QRY001"
    name: ClassVar[str] = "cross join"
    description: ClassVar[str] = (
        "cross joins (missing or trivially-true join condition) are never "
        "admissible"
    )
    target_node_types: ClassVar["tuple[type[Any], ...]"] = (JoinClause,)

    def check(self, node: Any, context: Any) -> Iterator[Violation]:
        """Flag explicit CROSS JOINs and conditions that filter nothing."""
        if node.kind == "cross":
            yield Violation(
                node,
                "explicit CROSS JOIN: every tuple pair matches, state and "
                "output are O(n^2)",
            )
            return
        if node.condition is None:
            yield Violation(
                node,
                "join has no ON (or WHERE) condition, making it a cross "
                "join: give it an equi, band or inequality predicate",
            )
        elif _is_trivially_true(node.condition):
            yield Violation(
                node,
                "join condition is trivially true, making it a cross join: "
                "relate columns of the two streams",
            )


class BandlessInequalityRule(Rule):
    """QRY002: a bandless inequality join needs a bounded window.

    ``r1.key < r2.key`` joins each arrival against (on average) half of
    the other side's *entire history*: with an unbounded window, resident
    state grows O(stream) and per-batch output O(n²).  A bounded window
    (sliding, count or decay) caps both.  A band conjunct bounds the
    joinable interval instead, so banded conditions are exempt.
    """

    rule_id: ClassVar[str] = "QRY002"
    name: ClassVar[str] = "bandless inequality on unbounded window"
    description: ClassVar[str] = (
        "an inequality join without a band must declare a bounded WINDOW "
        "(the O(n^2)-state trap)"
    )
    target_node_types: ClassVar["tuple[type[Any], ...]"] = (Comparison,)

    def check(self, node: Any, context: Any) -> Iterator[Violation]:
        """Flag column-vs-column strict-order comparisons sans window."""
        if node.op not in INEQUALITY_OPS:
            return
        if not (
            isinstance(node.left, ColumnRef)
            and isinstance(node.right, ColumnRef)
        ):
            return
        statement = context.statement
        if statement.window_is_bounded:
            return
        where = (
            "no WINDOW clause"
            if statement.window is None
            else f"WINDOW {statement.window.spec!r} is unbounded"
        )
        yield Violation(
            node,
            f"inequality join ({node.op}) with {where}: each arrival joins "
            "the other side's full history, so state grows O(stream); "
            "declare a bounded window (e.g. WINDOW 'batches:8') or add a "
            "band predicate",
        )


class ShedOnUnboundedRule(Rule):
    """QRY003: shedding into an unbounded window silently loses data.

    ``POLICY 'shed'`` drops whole micro-batches when the queue is full —
    deliberately lossy, which is fine for bounded windows where old state
    expires anyway.  Combined with an *unbounded* window the spec claims
    exact full-history semantics while the policy silently deletes
    arbitrary slices of that history: results become load-dependent and
    irreproducible, and nothing in the output says so.
    """

    rule_id: ClassVar[str] = "QRY003"
    name: ClassVar[str] = "shed policy on unbounded window"
    description: ClassVar[str] = (
        "POLICY 'shed' with an unbounded window is a silent-loss footgun: "
        "full-history semantics plus arbitrary dropped batches"
    )
    target_node_types: ClassVar["tuple[type[Any], ...]"] = (PolicyClause,)

    def check(self, node: Any, context: Any) -> Iterator[Violation]:
        """Flag shed policies whose statement declares no bounded window."""
        if node.spec.strip().lower() != "shed":
            return
        if context.statement.window_is_bounded:
            return
        yield Violation(
            node,
            "POLICY 'shed' with an unbounded window: dropped batches "
            "silently corrupt the full-history result; bound the window "
            "or use 'block'/'coalesce'",
        )


class FloatKeyLiteralRule(Rule):
    """QRY004: float literals against integer key columns (KEY001's twin).

    With ``KEYS INT`` (the default — the repo's exact-int64 discipline) a
    float-spelled literal in the join condition drags key arithmetic onto
    the float64 path: a non-integral band width forces every key through
    ``float64``, and keys above 2**53 round — silently moving tuples
    across the band boundary.  Spell widths and compared values as
    integers, or declare ``KEYS FLOAT`` if the keys really are floats.
    """

    rule_id: ClassVar[str] = "QRY004"
    name: ClassVar[str] = "float literal against integer keys"
    description: ClassVar[str] = (
        "float-spelled literals in conditions over KEYS INT break the "
        "exact-int64 key path (precision trap above 2**53)"
    )
    target_node_types: ClassVar["tuple[type[Any], ...]"] = (
        Comparison,
        BandPredicate,
    )

    def check(self, node: Any, context: Any) -> Iterator[Violation]:
        """Flag float-formed literals in conditions over integer keys."""
        if context.statement.key_dtype != "int":
            return
        literals: list[Literal] = []
        if isinstance(node, BandPredicate):
            literals.append(node.width)
        else:
            for side in (node.left, node.right):
                if isinstance(side, Literal):
                    literals.append(side)
        for literal in literals:
            if literal.is_float_formed:
                yield Violation(
                    literal,
                    f"float literal {literal.raw} against integer keys "
                    "(KEYS INT): key arithmetic leaves the exact int64 "
                    "path and values above 2**53 round; write an integer "
                    "or declare KEYS FLOAT",
                )


class SpecStringRule(Rule):
    """QRY005: window/policy spec strings must parse against the factories.

    The WINDOW and POLICY clauses carry factory spec strings; validating
    them at admission (by calling the factories themselves, so the check
    can never drift from what the engine accepts) turns a run-time
    ``ValueError`` mid-deployment into a reject at the door, with the
    registered forms listed.
    """

    rule_id: ClassVar[str] = "QRY005"
    name: ClassVar[str] = "unparseable window/policy spec"
    description: ClassVar[str] = (
        "WINDOW/POLICY spec strings must parse against the registered "
        "make_window/make_backpressure factories"
    )
    target_node_types: ClassVar["tuple[type[Any], ...]"] = (
        WindowClause,
        PolicyClause,
    )

    def check(self, node: Any, context: Any) -> Iterator[Violation]:
        """Run each spec string through its factory, reporting ValueErrors."""
        if isinstance(node, WindowClause):
            try:
                make_window(node.spec)
            except ValueError as error:
                # The factory's own message already lists the registered
                # WINDOW_SPEC_FORMS; report it verbatim so the check can
                # never drift from what the engine accepts.
                yield Violation(node, str(error))
            return
        try:
            make_backpressure(node.spec)
        except ValueError as error:
            yield Violation(node, str(error))
        if node.queue is not None and node.queue < 1:
            yield Violation(
                node, f"QUEUE depth must be >= 1, got {node.queue}"
            )


#: Every registered query rule class, in catalogue order.  SUP001 joins
#: the battery as an instance in :func:`default_query_rules` — it is the
#: Python battery's rule, reused as-is over ``--`` comments.
ALL_QUERY_RULES: "tuple[type[Rule], ...]" = (
    CrossJoinRule,
    BandlessInequalityRule,
    ShedOnUnboundedRule,
    FloatKeyLiteralRule,
    SpecStringRule,
)


def default_query_rules() -> "list[Rule]":
    """One fresh instance of every admission rule, SUP001 included."""
    rules: list[Rule] = [rule_cls() for rule_cls in ALL_QUERY_RULES]
    rules.append(UnknownSuppressionRule())
    return rules


class QueryAnalyzer:
    """Run the admission battery over join-spec files (``*.sql``).

    The query-dialect counterpart of
    :class:`repro.analysis.engine.Analyzer`: same report types, same
    suppression handling, same reporters — only the parser and walker
    differ.

    Parameters
    ----------
    rules:
        Rule instances to run; defaults to :func:`default_query_rules`.
    dialect:
        Parser front-end (see :func:`repro.query.parser.parse_sql`).
    """

    def __init__(
        self,
        rules: "Sequence[Rule] | None" = None,
        dialect: str = "builtin",
    ) -> None:
        self.rules: list[Rule] = list(
            default_query_rules() if rules is None else rules
        )
        self.dialect = dialect

    def analyze_source(self, source: str, path: str = "<query>") -> FileReport:
        """Analyze one spec's text; parse failures land in ``report.error``."""
        posix = Path(path).as_posix()
        report = FileReport(path=posix)
        try:
            _, comment_tokens = tokenize_sql(source)
            statement = parse_sql(source, dialect=self.dialect)
        except ParseError as error:
            report.error = f"ParseError: {error}"
            return report
        context = QueryContext(posix, source, statement)
        comments, suppressed = scan_suppressions(comment_tokens)
        context.suppression_comments = comments
        report.suppression_lines = sorted(suppressed)
        active = [rule for rule in self.rules if rule.applies_to(posix)]
        if not active:
            return report
        report.findings = check_tree(
            statement, active, context, QUERY_WALKER, suppressed
        )
        return report

    def analyze_file(self, path: "str | Path") -> FileReport:
        """Analyze one spec file on disk."""
        text = Path(path).read_text(encoding="utf-8")
        return self.analyze_source(text, str(path))

    def analyze_paths(self, paths: "Iterable[str | Path]") -> AnalysisReport:
        """Analyze files and directories (directories recurse over ``*.sql``)."""
        report = AnalysisReport()
        for path in paths:
            path = Path(path)
            if path.is_dir():
                for file in sorted(path.rglob("*.sql")):
                    report.files.append(self.analyze_file(file))
            else:
                report.files.append(self.analyze_file(path))
        return report
