"""Static plan estimation: pricing an admitted query before it runs.

An admission decision is binary; capacity planning needs numbers.  Given a
:class:`~repro.query.compiler.CompiledPlan`, :func:`estimate_plan` prices
the query under stated assumptions (batch size, horizon, key domain) using
the engine's *own* machinery rather than a parallel cost model:

* the **resident-state bound** comes from driving the plan's real
  :class:`~repro.streaming.window.WindowPolicy` — ``evictions`` over a
  synthetic arrival schedule gives the steady-state live-set size, and
  ``trim_point`` gives how much arrival history the engine may compact;
* the **match probability** comes from the plan's real
  :class:`~repro.joins.conditions.JoinCondition` —
  ``count_matches_per_key`` over a seeded uniform key sample (the same
  searchsorted joinable-set machinery Stream-Sample and the EWH histogram
  build on);
* the **per-batch probe cost** prices the incremental counting path:
  ``O(new · log(state))`` searchsorted probes per side.

The result is a :class:`PlanReport` — what a capacity dashboard or the
future ``repro.service`` front door shows next to an admitted query.
Everything is deterministic: one seed, one report.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass

import numpy as np

from repro.query.compiler import CompiledPlan

__all__ = [
    "PlanReport",
    "estimate_plan",
    "format_plan_report",
    "plan_report_to_json",
]


@dataclass(frozen=True)
class PlanReport:
    """The static price of one compiled query, under stated assumptions.

    Attributes
    ----------
    condition, window, policy:
        Reporting names of the plan's engine objects.
    key_dtype:
        The spec's declared key dtype.
    batch_size, horizon_batches, key_domain_size:
        The assumptions the estimate was priced under.
    state_bound_tuples:
        Peak live tuples per side over the horizon — the resident-state
        bound a worker must provision for.  Equals
        ``batch_size * horizon_batches`` when nothing expires.
    state_growth:
        ``"O(window)"`` when the window bounds state, ``"O(stream)"``
        when it grows with the horizon.
    safe_trim_point:
        Arrival-index prefix compacted at the horizon
        (:meth:`~repro.streaming.window.WindowPolicy.trim_point`):
        history the engine does not even store.
    match_probability:
        Estimated probability that a random key pair satisfies the
        condition (seeded uniform sample over the key domain).
    expected_output_per_batch:
        Expected join-output tuples per processed batch: new arrivals on
        each side against the other side's resident state, plus the
        batch-vs-batch term.
    probe_cost_per_batch:
        Binary-search comparisons per batch on the incremental counting
        path, ``2 · batch_size · log2(state_bound)``.
    """

    condition: str
    window: str
    policy: str
    key_dtype: str
    batch_size: int
    horizon_batches: int
    key_domain_size: int
    state_bound_tuples: int
    state_growth: str
    safe_trim_point: int
    match_probability: float
    expected_output_per_batch: float
    probe_cost_per_batch: float


def _steady_state(
    plan: CompiledPlan,
    batch_size: int,
    horizon_batches: int,
    seed: int,
) -> "tuple[int, int]":
    """Drive the plan's window policy; return (peak live, trim point).

    One side is simulated (the policies treat sides independently and
    identically): arrivals land ``batch_size`` per batch, the policy's
    ``evictions`` prunes the live set after each batch exactly as the
    engine would, and ``trim_point`` is read at the horizon.
    """
    window = plan.window
    rng = np.random.default_rng(seed)
    live = np.empty(0, dtype=np.int64)
    batch_starts: list[int] = []
    total = 0
    peak = 0
    for _ in range(horizon_batches):
        batch_starts.append(total)
        arrivals = np.arange(total, total + batch_size, dtype=np.int64)
        total += batch_size
        live = np.concatenate([live, arrivals])
        peak = max(peak, len(live))
        if not window.is_unbounded:
            expired = window.evictions(live, batch_starts, total, rng)
            if len(expired):
                keep = np.ones(len(live), dtype=bool)
                keep[np.searchsorted(live, expired)] = False
                live = live[keep]
    return peak, int(window.trim_point(live, total))


def _match_probability(
    plan: CompiledPlan,
    key_domain_size: int,
    sample_size: int,
    seed: int,
) -> float:
    """Estimate P(random key pair joins) via the condition's own counter.

    Two *independent* seeded uniform int64 samples stand in for the two
    sides (independent so a key never pairs with itself — self-matches
    would bias sparse equi/band estimates upward);
    ``count_matches_per_key`` (searchsorted over the sorted sample — the
    joinable-set-size primitive) gives each probe key's joinable count,
    and the mean over the sample size is the pairwise match probability.
    """
    rng = np.random.default_rng(seed)
    probes = rng.integers(0, key_domain_size, size=sample_size, dtype=np.int64)
    state = rng.integers(0, key_domain_size, size=sample_size, dtype=np.int64)
    state.sort()
    counts = plan.condition.count_matches_per_key(probes, state)
    return float(counts.mean() / sample_size)


def estimate_plan(
    plan: CompiledPlan,
    *,
    batch_size: int = 512,
    horizon_batches: int = 64,
    key_domain_size: int = 100_000,
    sample_size: int = 2048,
    seed: int = 0,
) -> PlanReport:
    """Price a compiled plan; deterministic for a given seed.

    Parameters
    ----------
    plan:
        The compiled query.
    batch_size:
        Assumed arrivals per side per micro-batch.
    horizon_batches:
        Batches to simulate the window over (the steady-state horizon).
    key_domain_size:
        Assumed uniform key domain ``[0, key_domain_size)``.
    sample_size:
        Keys sampled for the selectivity estimate.
    seed:
        Seed for the window simulation and the key sample.
    """
    if batch_size < 1 or horizon_batches < 1:
        raise ValueError("batch_size and horizon_batches must be >= 1")
    peak, trim = _steady_state(plan, batch_size, horizon_batches, seed)
    probability = _match_probability(plan, key_domain_size, sample_size, seed)
    bounded = not plan.window.is_unbounded
    # New arrivals of each side probe the other side's resident state,
    # plus the two fresh batches against each other.
    expected_output = probability * (
        2.0 * batch_size * peak + batch_size * batch_size
    )
    probe_cost = 2.0 * batch_size * math.log2(max(peak, 2))
    return PlanReport(
        condition=plan.condition.name,
        window=plan.window.name,
        policy=plan.policy.name,
        key_dtype=plan.spec.key_dtype,
        batch_size=batch_size,
        horizon_batches=horizon_batches,
        key_domain_size=key_domain_size,
        state_bound_tuples=peak,
        state_growth="O(window)" if bounded else "O(stream)",
        safe_trim_point=trim,
        match_probability=probability,
        expected_output_per_batch=expected_output,
        probe_cost_per_batch=probe_cost,
    )


def format_plan_report(report: PlanReport) -> str:
    """Render a plan report for humans, one fact per line."""
    rows = [
        f"condition:        {report.condition}",
        f"window:           {report.window}",
        f"policy:           {report.policy}",
        f"key dtype:        {report.key_dtype}",
        (
            f"assumptions:      {report.batch_size} tuples/side/batch, "
            f"{report.horizon_batches} batches, uniform keys in "
            f"[0, {report.key_domain_size})"
        ),
        (
            f"resident state:   <= {report.state_bound_tuples} tuples/side "
            f"({report.state_growth})"
        ),
        f"safe trim point:  {report.safe_trim_point} arrivals compacted",
        f"match prob.:      {report.match_probability:.3e}",
        f"est. output:      {report.expected_output_per_batch:.1f} tuples/batch",
        f"probe cost:       {report.probe_cost_per_batch:.0f} comparisons/batch",
    ]
    return "\n".join(rows)


def plan_report_to_json(report: PlanReport) -> str:
    """Render a plan report as deterministic JSON (a CI artifact shape)."""
    return json.dumps(asdict(report), indent=2, sort_keys=True) + "\n"
