"""`repro.obs.clock` — the single sanctioned home for clock reads.

Every wall-clock read in the codebase goes through this module.  The point
is not abstraction for its own sake: the experiments are deterministic by
construction (seeded generators, injectable tracer clocks, simulated-time
fault schedules), and the one thing that must never leak into result
arithmetic is a real clock.  Timing is *observation only* — wall-seconds
fields in metrics — and funnelling all of it through one module keeps that
boundary auditable: the static analyzer (rule ``DET001``, see
``docs/static_analysis.md``) rejects direct ``time.time()`` /
``time.perf_counter()`` / ``datetime.now()`` calls everywhere outside
``repro.obs``, so a clock read showing up in, say, a partitioning decision
is a build failure rather than a flaky test.

The names are zero-overhead aliases of the stdlib functions — importing
from here costs nothing at call time and changes no behaviour:

* :func:`perf_counter` — high-resolution timer for measuring durations;
  the default clock for every ``wall_seconds`` metric.
* :func:`monotonic` — monotonic timer for deadlines and timeouts.
* :func:`wall_time` — seconds since the Unix epoch, for timestamping
  artifacts (never for durations).

Code that needs a *controllable* clock (tests, the pipeline's pacing loop)
should keep taking a ``clock:`` callable parameter and default it to
:func:`perf_counter`; see :class:`repro.obs.trace.TickClock` for the
deterministic stand-in.
"""

from __future__ import annotations

import time as _time

__all__ = ["monotonic", "perf_counter", "wall_time"]

#: High-resolution duration timer (alias of :func:`time.perf_counter`).
perf_counter = _time.perf_counter

#: Monotonic timer for deadlines/timeouts (alias of :func:`time.monotonic`).
monotonic = _time.monotonic


def wall_time() -> float:
    """Seconds since the Unix epoch, for timestamping — never durations."""
    return _time.time()
