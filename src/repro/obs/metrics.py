"""A unified counter/gauge/histogram registry with periodic snapshots.

The streaming stack accumulates run-time quantities — queue depth, producer
stalls, shed tuples, resident bytes, evictions, join seconds, pickle-channel
bytes — that historically lived only as ad-hoc fields on
:class:`~repro.streaming.metrics.BatchMetrics`.  A :class:`MetricsRegistry`
gives them one live, uniformly-typed home:

* :class:`Counter` — monotonically non-decreasing totals (tuples processed,
  batches shed, bytes pickled, join seconds);
* :class:`Gauge` — last-written level quantities (resident bytes, queue
  depth);
* :class:`Histogram` — bucketed distributions (per-batch output, per-batch
  wall seconds).

Instruments are get-or-create by name, so instrumentation points never race
over registration order, and :meth:`MetricsRegistry.snapshot` returns the
whole registry as one sorted, JSON-able dict — the payload a stats endpoint
(the ROADMAP's ``repro.service``) can serve directly.

A :class:`SnapshotReporter` attached to the registry captures snapshots
periodically: the engine pulses the registry once per processed batch, and
every ``every`` pulses the reporter stores a numbered snapshot (and can
dump the series as JSONL).  Like tracing, the registry is observation only:
updating instruments never touches an engine's random generator, so metered
runs are behaviourally bit-identical to unmetered runs.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from typing import Callable, TypeVar

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SnapshotReporter",
]


class Counter:
    """A monotonically non-decreasing total (float-valued)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        return self._value

    def to_snapshot(self) -> dict[str, object]:
        """This instrument's entry in a registry snapshot."""
        return {"type": "counter", "value": self._value}


class Gauge:
    """A level quantity: the last value written wins."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self._value = float(value)

    @property
    def value(self) -> float:
        """The last value written (0.0 before any write)."""
        return self._value

    def to_snapshot(self) -> dict[str, object]:
        """This instrument's entry in a registry snapshot."""
        return {"type": "gauge", "value": self._value}


#: Default histogram bucket upper bounds: ten powers of ten spanning
#: microseconds-to-hours style ranges as well as count-like quantities.
DEFAULT_BUCKETS = (
    1e-3,
    1e-2,
    1e-1,
    1.0,
    1e1,
    1e2,
    1e3,
    1e4,
    1e5,
    1e6,
)


class Histogram:
    """A fixed-bucket distribution with exact sum/count/min/max.

    Parameters
    ----------
    name:
        Registry name of the instrument.
    buckets:
        Strictly increasing upper bounds; an implicit overflow bucket
        catches everything above the last bound.
    """

    __slots__ = ("name", "buckets", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(
        self, name: str, buckets: "tuple[float, ...]" = DEFAULT_BUCKETS
    ) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(
            later <= earlier for earlier, later in zip(bounds, bounds[1:])
        ):
            raise ValueError("buckets must be strictly increasing and non-empty")
        self.name = name
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._counts[bisect_right(self.buckets, value)] += 1
        self._count += 1
        self._sum += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    @property
    def count(self) -> int:
        """Observations recorded so far."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean observation (``nan`` when empty)."""
        return self._sum / self._count if self._count else float("nan")

    def to_snapshot(self) -> dict[str, object]:
        """This instrument's entry in a registry snapshot."""
        return {
            "type": "histogram",
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "buckets": list(self.buckets),
            "counts": list(self._counts),
        }


#: The instrument types a registry can hold; ``_get_or_create`` preserves
#: the concrete type requested by ``counter``/``gauge``/``histogram``.
_InstrumentT = TypeVar("_InstrumentT", bound="Counter | Gauge | Histogram")


class MetricsRegistry:
    """Named instruments, created on first use, snapshottable as one dict.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call under a name fixes the instrument's type, and a later call under
    the same name with a different type raises instead of silently
    shadowing.  :meth:`pulse` advances the registry's reporting period —
    the streaming engine pulses once per processed batch — notifying every
    attached :class:`SnapshotReporter`.
    """

    def __init__(self) -> None:
        self._instruments: "dict[str, Counter | Gauge | Histogram]" = {}
        self._reporters: "list[SnapshotReporter]" = []
        self._pulses = 0

    def _get_or_create(
        self, name: str, factory: "Callable[[], _InstrumentT]", kind: "type[_InstrumentT]"
    ) -> "_InstrumentT":
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def histogram(
        self, name: str, buckets: "tuple[float, ...] | None" = None
    ) -> Histogram:
        """Get or create the histogram called ``name``.

        ``buckets`` only applies on creation; a later lookup returns the
        existing instrument with its original buckets.
        """
        return self._get_or_create(
            name,
            lambda: Histogram(name, buckets if buckets is not None else DEFAULT_BUCKETS),
            Histogram,
        )

    @property
    def names(self) -> "list[str]":
        """The registered instrument names, sorted."""
        return sorted(self._instruments)

    @property
    def pulses(self) -> int:
        """Reporting periods elapsed (one per engine-processed batch)."""
        return self._pulses

    def attach(self, reporter: "SnapshotReporter") -> "SnapshotReporter":
        """Subscribe a reporter to this registry's pulses; returns it."""
        self._reporters.append(reporter)
        return reporter

    def pulse(self) -> None:
        """Advance one reporting period and notify attached reporters."""
        self._pulses += 1
        for reporter in self._reporters:
            reporter.on_pulse(self._pulses, self)

    def snapshot(self) -> dict[str, dict[str, object]]:
        """The whole registry as one sorted, JSON-able dict."""
        return {
            name: self._instruments[name].to_snapshot()
            for name in sorted(self._instruments)
        }

    def write_snapshot(self, path: str) -> None:
        """Write :meth:`snapshot` to ``path`` as deterministic JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, sort_keys=True, indent=2)
            handle.write("\n")


class SnapshotReporter:
    """Capture a registry snapshot every ``every`` pulses.

    Attach with ``registry.attach(SnapshotReporter(every=4))``; the engine
    pulses the registry once per processed batch, so ``every=4`` keeps one
    snapshot per four batches.  The collected series is the shape a polling
    stats endpoint serves: ``latest`` for the current state,
    :meth:`write_jsonl` for the whole history.
    """

    def __init__(self, every: int = 1) -> None:
        if every <= 0:
            raise ValueError("every must be positive")
        self.every = every
        self.snapshots: "list[tuple[int, dict[str, dict[str, object]]]]" = []

    def on_pulse(self, pulse: int, registry: MetricsRegistry) -> None:
        """Registry callback: snapshot when the period boundary is reached."""
        if pulse % self.every == 0:
            self.snapshots.append((pulse, registry.snapshot()))

    @property
    def latest(self) -> "dict[str, dict[str, object]] | None":
        """The most recent snapshot (``None`` before the first)."""
        return self.snapshots[-1][1] if self.snapshots else None

    def write_jsonl(self, path: str) -> None:
        """One ``{"pulse": n, "metrics": {...}}`` JSON object per line."""
        with open(path, "w", encoding="utf-8") as handle:
            for pulse, snapshot in self.snapshots:
                handle.write(
                    json.dumps(
                        {"pulse": pulse, "metrics": snapshot}, sort_keys=True
                    )
                )
                handle.write("\n")
