"""`repro.obs` — tracing and metrics for the streaming stack.

Three small, dependency-free building blocks:

* :mod:`repro.obs.trace` — hierarchical spans (``run → batch → {route,
  incremental_count, join, evict, compact, drift_decide, migrate}``) with an
  injectable clock, a zero-overhead no-op tracer as the default, and
  exporters to JSONL event logs and Chrome-trace/Perfetto JSON.
* :mod:`repro.obs.clock` — the single sanctioned home for wall-clock
  reads (``perf_counter``/``monotonic``/``wall_time``); everything outside
  this package that wants the time imports it from here, a boundary the
  static analyzer's ``DET001`` rule enforces.
* :mod:`repro.obs.metrics` — a counter/gauge/histogram registry with a
  periodic snapshot reporter, the single home for the run-time quantities
  that used to live only as ad-hoc fields scattered across
  :class:`~repro.streaming.metrics.BatchMetrics` and
  :class:`~repro.streaming.metrics.StreamRunResult`.

Everything here is *observation only*: enabling a tracer or a registry on a
:class:`~repro.streaming.engine.StreamingJoinEngine` never touches the
engine's random generator, its routing, counting or migration arithmetic —
traced runs are behaviourally bit-identical to untraced runs, which
``tests/test_obs.py`` pins with a hypothesis property.  See
``docs/observability.md`` for the full narrative.
"""

from repro.obs.clock import monotonic, perf_counter, wall_time
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SnapshotReporter,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TickClock,
    Tracer,
    summarize_spans,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TickClock",
    "summarize_spans",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SnapshotReporter",
    "perf_counter",
    "monotonic",
    "wall_time",
]
