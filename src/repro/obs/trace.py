"""Hierarchical span tracing with pluggable clocks and exporters.

A :class:`Tracer` records *spans* — named, timed intervals that nest — as
plain data:  the streaming engine opens a ``run`` span, a ``batch`` span per
micro-batch, and child spans for each processing stage (``route``,
``incremental_count``, ``evict``, ``compact``, ``drift_decide``,
``migrate``).  Finished spans are held in memory and exported on demand:

* :meth:`Tracer.write_jsonl` — one JSON object per span, in finish order,
  for grepping and ad-hoc analysis;
* :meth:`Tracer.write_chrome_trace` — the Chrome trace-event JSON format,
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev for a flame
  view of where batch time actually goes.

Time comes from an injectable ``clock`` (default
:func:`time.perf_counter`).  A deterministic pipeline — ``mode="simulated"``
plus the :class:`~repro.streaming.backends.SimulatedBackend` — traced with a
:class:`TickClock` produces a **byte-identical** trace on every run, so
traces can be golden-filed and diffed like any other output.

The default tracer everywhere is :data:`NULL_TRACER`, a no-op whose
``span()`` returns a shared singleton context manager: no clock reads, no
allocation, no list append.  Instrumented code pays one method call per
span, which a smoke test in ``tests/test_obs.py`` bounds on a hot loop.

Tracing is observation only: a tracer never touches a random generator or
any engine arithmetic, so traced runs are behaviourally bit-identical to
untraced runs.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TickClock",
    "summarize_spans",
]

#: The engine's reserved Chrome-trace thread id (worker spans use pids).
ENGINE_TID = 0


class TickClock:
    """A deterministic clock: each call advances by a fixed tick.

    Two runs that make the same sequence of clock calls read the same
    sequence of times, so a tracer driven by a :class:`TickClock` over a
    deterministic pipeline (``mode="simulated"``, simulated backend) emits a
    byte-identical trace every run.  The tick defaults to one microsecond,
    which renders readably in Perfetto's timeline.

    Parameters
    ----------
    tick:
        Seconds to advance per call (must be positive).
    """

    def __init__(self, tick: float = 1e-6) -> None:
        if tick <= 0:
            raise ValueError("tick must be positive")
        self.tick = tick
        self._now = 0.0

    def __call__(self) -> float:
        """Return the current time and advance by one tick."""
        now = self._now
        self._now += self.tick
        return now


@dataclass
class Span:
    """One finished, timed interval.

    Attributes
    ----------
    name:
        The span's label (``"batch"``, ``"route"``, ...).
    category:
        Coarse grouping for exporters and summaries (``"run"``,
        ``"batch"``, ``"stage"``, ``"worker"``).
    start:
        Clock reading when the span opened, in seconds.
    duration:
        Seconds between open and close (never negative).
    depth:
        Nesting depth at open time (``0`` for a top-level span).
    tid:
        Chrome-trace thread id: :data:`ENGINE_TID` for engine spans, a
        worker's OS pid for stitched multiprocess worker spans.
    args:
        Deterministic key/value annotations (batch index, output delta,
        bytes pickled, ...) carried into every exporter.
    """

    name: str
    category: str
    start: float
    duration: float
    depth: int = 0
    tid: int = ENGINE_TID
    args: dict[str, object] = field(default_factory=dict)

    @property
    def end(self) -> float:
        """Clock reading when the span closed."""
        return self.start + self.duration


class _ActiveSpan:
    """A span that is currently open; also the ``with`` context manager."""

    __slots__ = ("_tracer", "name", "category", "start", "depth", "args")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        start: float,
        depth: int,
        args: dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.start = start
        self.depth = depth
        self.args = args

    def set(self, **args: object) -> None:
        """Attach annotations to the span (merged into its ``args``)."""
        self.args.update(args)

    def __enter__(self) -> "_ActiveSpan":
        """Return the active span so callers can annotate it."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Close the span and hand it to the tracer."""
        self._tracer._finish(self)


class _NullSpan:
    """The shared no-op span: every protocol method does nothing."""

    __slots__ = ()

    #: No-op spans report a start so stitching code can run unconditionally.
    start = 0.0

    def set(self, **args: object) -> None:
        """Discard the annotations."""

    def __enter__(self) -> "_NullSpan":
        """Return the shared singleton."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Do nothing on exit."""


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collect hierarchical spans against an injectable clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning seconds.  Defaults to
        :func:`time.perf_counter`; pass a :class:`TickClock` for
        deterministic, byte-identical traces of simulated pipelines.

    One tracer may observe several sequential runs (the streaming example
    traces three engines into one timeline); concurrent use from several
    threads is not supported — give each pipeline its own tracer.
    """

    #: Lets instrumented code skip building expensive annotations.
    enabled: bool = True

    def __init__(
        self, clock: "Callable[[], float]" = time.perf_counter
    ) -> None:
        self._clock = clock
        self._spans: list[Span] = []
        self._depth = 0
        self._thread_names: dict[int, str] = {ENGINE_TID: "engine"}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "stage", **args: object) -> _ActiveSpan:
        """Open a span; use as ``with tracer.span("batch", index=3) as s:``.

        The returned context manager closes the span (reading the clock
        again) when the block exits; ``s.set(key=value)`` attaches
        annotations discovered mid-block.
        """
        span = _ActiveSpan(self, name, category, self._clock(), self._depth, args)
        self._depth += 1
        return span

    def _finish(self, active: _ActiveSpan) -> None:
        """Close an active span and store it as finished data."""
        self._depth -= 1
        self._spans.append(
            Span(
                name=active.name,
                category=active.category,
                start=active.start,
                duration=max(self._clock() - active.start, 0.0),
                depth=active.depth,
                tid=ENGINE_TID,
                args=active.args,
            )
        )

    def record(
        self,
        name: str,
        duration: float,
        category: str = "stage",
        start: "float | None" = None,
        tid: int = ENGINE_TID,
        thread_name: "str | None" = None,
        **args: object,
    ) -> None:
        """Store an externally-timed span (e.g. a worker's reported seconds).

        ``start`` defaults to the current clock reading; the engine passes
        the enclosing join span's start so multiprocess worker spans sit
        *under* the batch that dispatched them.  ``tid`` places the span on
        its own Chrome-trace track (workers use their OS pid) and
        ``thread_name`` labels that track in the exported trace.
        """
        if start is None:
            start = self._clock()
        if thread_name is not None:
            self._thread_names.setdefault(tid, thread_name)
        self._spans.append(
            Span(
                name=name,
                category=category,
                start=start,
                duration=max(float(duration), 0.0),
                depth=self._depth,
                tid=tid,
                args=args,
            )
        )

    @property
    def spans(self) -> "list[Span]":
        """The finished spans, in finish order."""
        return list(self._spans)

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per finished span, in finish order.

        Keys are sorted and floats written verbatim, so a deterministic
        clock yields byte-identical output across runs.
        """
        lines: list[str] = []
        for span in self._spans:
            lines.append(
                json.dumps(
                    {
                        "name": span.name,
                        "cat": span.category,
                        "start": span.start,
                        "dur": span.duration,
                        "depth": span.depth,
                        "tid": span.tid,
                        "args": span.args,
                    },
                    sort_keys=True,
                )
            )
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str) -> None:
        """Write :meth:`to_jsonl` to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    def to_chrome_trace(self) -> dict[str, object]:
        """The trace as a Chrome trace-event JSON object.

        Spans become complete (``"ph": "X"``) duration events with
        microsecond timestamps; nesting is implied by time containment on
        each track, which is how ``chrome://tracing`` and Perfetto render
        flame views.  Named tracks get ``thread_name`` metadata events.
        """
        events: list[dict[str, object]] = []
        for tid, label in sorted(self._thread_names.items()):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
        for span in self._spans:
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": 1,
                    "tid": span.tid,
                    "args": span.args,
                }
            )
        return {"displayTimeUnit": "ms", "traceEvents": events}

    def write_chrome_trace(self, path: str) -> None:
        """Write :meth:`to_chrome_trace` to ``path`` as deterministic JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, sort_keys=True)
            handle.write("\n")


class NullTracer:
    """The zero-overhead default: every operation is a no-op.

    ``span()`` hands back one shared context-manager singleton — no clock
    read, no allocation — so instrumenting a hot loop with the null tracer
    costs a method call per span and nothing else.  Exporters yield empty
    traces rather than raising, so reporting code need not special-case the
    default.
    """

    enabled: bool = False

    def span(self, name: str, category: str = "stage", **args: object) -> _NullSpan:
        """Return the shared no-op span."""
        return _NULL_SPAN

    def record(self, name: str, duration: float, **kwargs: object) -> None:
        """Discard the externally-timed span."""

    @property
    def spans(self) -> "list[Span]":
        """Always empty."""
        return []

    def to_jsonl(self) -> str:
        """An empty JSONL document."""
        return ""

    def write_jsonl(self, path: str) -> None:
        """Write an empty JSONL document to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("")

    def to_chrome_trace(self) -> dict[str, object]:
        """An empty (but well-formed) Chrome trace."""
        return {"displayTimeUnit": "ms", "traceEvents": []}

    def write_chrome_trace(self, path: str) -> None:
        """Write an empty Chrome trace to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, sort_keys=True)
            handle.write("\n")


#: The process-wide no-op tracer used wherever no tracer is passed.
NULL_TRACER = NullTracer()


def summarize_spans(spans: "Iterable[Span]") -> "list[dict[str, Any]]":
    """Aggregate spans by (category, name): count, total/mean/max seconds.

    Returns one dict per distinct span label, ordered by descending total
    time — the input to
    :func:`repro.bench.reporting.format_trace_summary`.
    """
    totals: dict[tuple[str, str], dict[str, Any]] = {}
    for span in spans:
        key = (span.category, span.name)
        entry = totals.setdefault(
            key,
            {
                "category": span.category,
                "name": span.name,
                "count": 0,
                "total_seconds": 0.0,
                "max_seconds": 0.0,
            },
        )
        entry["count"] += 1
        entry["total_seconds"] += span.duration
        entry["max_seconds"] = max(entry["max_seconds"], span.duration)
    rows = sorted(
        totals.values(), key=lambda row: (-row["total_seconds"], row["name"])
    )
    for row in rows:
        row["mean_seconds"] = row["total_seconds"] / row["count"]
    return rows
