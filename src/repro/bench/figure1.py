"""The Figure 1 toy example: three schemes on one small band join.

Figure 1 of the paper walks through a 16x16 join matrix for the band join
``|R1.A - R2.A| <= 1`` and shows the regions that the content-insensitive
(CI / 1-Bucket), content-sensitive-input (CSI / M-Bucket) and equi-weight
histogram (CSIO / EWH) schemes assign to three machines, together with each
scheme's maximum region weight under ``w(r) = input(r) + output(r)``.

This module reproduces that walk-through end to end at the same toy scale:
generate a small pair of relations whose join exhibits join product skew,
build each scheme for a handful of machines, execute the partitioned join on
the simulator and report the per-region input/output/weight -- the numbers
the figure annotates.  The exact key values of the figure are not recoverable
from the paper text, so the default toy keys here are representative (a hot
cluster of close keys plus a spread-out tail), which produces the same
qualitative picture: CI replicates heavily, CSI balances input but not
output, and CSIO has the smallest maximum weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.histogram import EWHConfig
from repro.core.weights import WeightFunction
from repro.engine.cluster import run_partitioned_join
from repro.joins.conditions import BandJoinCondition, JoinCondition
from repro.partitioning.base import Partitioning
from repro.partitioning.ewh import build_ewh_partitioning
from repro.partitioning.m_bucket import MBucketConfig, build_m_bucket_partitioning
from repro.partitioning.one_bucket import build_one_bucket_partitioning

__all__ = ["Figure1Row", "Figure1Result", "figure1_toy_keys", "run_figure1"]


def figure1_toy_keys(
    num_keys: int = 16, seed: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Generate the toy key arrays used by the Figure 1 walk-through.

    A quarter of the keys of each relation cluster inside a narrow hot range
    (they produce almost all the output of a narrow band join -- join product
    skew), the rest spread over a wide range (they produce little output but
    dominate the input).
    """
    if num_keys < 8:
        raise ValueError("num_keys must be at least 8")
    rng = np.random.default_rng(seed)
    hot = max(2, num_keys // 4)
    cold = num_keys - hot
    keys1 = np.concatenate(
        [rng.integers(3, 10, size=hot), rng.integers(10, 40, size=cold)]
    ).astype(np.float64)
    keys2 = np.concatenate(
        [rng.integers(3, 10, size=hot), rng.integers(10, 40, size=cold)]
    ).astype(np.float64)
    return keys1, keys2


@dataclass
class Figure1Row:
    """Per-scheme measurements of the toy example.

    Attributes
    ----------
    scheme:
        Scheme name (``CI``, ``CSI``, ``CSIO``).
    per_region_input, per_region_output:
        Input and output tuples of every region (machine).
    max_weight:
        The maximum region weight -- the figure's headline number.
    replication_factor:
        Average copies per input tuple.
    """

    scheme: str
    per_region_input: list[int]
    per_region_output: list[int]
    max_weight: float
    replication_factor: float


@dataclass
class Figure1Result:
    """All three schemes on the toy band join.

    Attributes
    ----------
    keys1, keys2:
        The toy join keys.
    total_output:
        Exact output size of the toy join.
    rows:
        One :class:`Figure1Row` per scheme, in CI / CSI / CSIO order.
    """

    keys1: np.ndarray
    keys2: np.ndarray
    total_output: int
    rows: list[Figure1Row] = field(default_factory=list)

    def row(self, scheme: str) -> Figure1Row:
        """Return the row for ``scheme`` (raises ``KeyError`` if absent)."""
        for row in self.rows:
            if row.scheme == scheme:
                return row
        raise KeyError(scheme)


def _measure(
    scheme: str,
    partitioning: Partitioning,
    keys1: np.ndarray,
    keys2: np.ndarray,
    condition: JoinCondition,
    weight_fn: WeightFunction,
    rng: np.random.Generator,
) -> Figure1Row:
    execution = run_partitioned_join(partitioning, keys1, keys2, condition, rng)
    return Figure1Row(
        scheme=scheme,
        per_region_input=[int(x) for x in execution.per_machine_input],
        per_region_output=[int(x) for x in execution.per_machine_output],
        max_weight=execution.max_weight(weight_fn),
        replication_factor=execution.replication_factor,
    )


def run_figure1(
    num_machines: int = 3,
    beta: float = 1.0,
    num_keys: int = 16,
    seed: int = 1,
    weight_fn: WeightFunction | None = None,
) -> Figure1Result:
    """Run the Figure 1 walk-through and return per-scheme region statistics.

    Parameters
    ----------
    num_machines:
        Number of regions/machines (the figure uses 3).
    beta:
        Band width of the toy join (the figure uses 1).
    num_keys:
        Keys per relation (the figure uses 16).
    seed:
        Seed of the toy data generator and of the randomised CI routing.
    weight_fn:
        Cost model; defaults to the figure's unit weights
        ``w(r) = input(r) + output(r)``.
    """
    weight_fn = weight_fn or WeightFunction(input_cost=1.0, output_cost=1.0)
    condition = BandJoinCondition(beta=beta)
    keys1, keys2 = figure1_toy_keys(num_keys=num_keys, seed=seed)
    rng = np.random.default_rng(seed)

    ci = build_one_bucket_partitioning(num_machines)
    csi = build_m_bucket_partitioning(
        keys1, keys2, condition, num_machines,
        weight_fn=weight_fn,
        config=MBucketConfig(num_buckets=num_keys // 2, seed=seed),
        rng=np.random.default_rng(seed),
    )
    csio = build_ewh_partitioning(
        keys1, keys2, condition, num_machines,
        weight_fn=weight_fn,
        config=EWHConfig(sample_matrix_size=num_keys, seed=seed),
        rng=np.random.default_rng(seed),
    )

    from repro.joins.local import count_join_output

    result = Figure1Result(
        keys1=keys1,
        keys2=keys2,
        total_output=count_join_output(keys1, keys2, condition),
    )
    result.rows.append(_measure("CI", ci, keys1, keys2, condition, weight_fn, rng))
    result.rows.append(_measure("CSI", csi, keys1, keys2, condition, weight_fn, rng))
    result.rows.append(_measure("CSIO", csio, keys1, keys2, condition, weight_fn, rng))
    return result
