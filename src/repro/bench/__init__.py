"""The benchmark harness: experiment runners and report formatting.

* :mod:`repro.bench.experiments` -- run one workload under several operators
  (the Figure 4a/4b/4c/4h experiments) and collect
  :class:`~repro.engine.operators.OperatorRunResult` rows.
* :mod:`repro.bench.scalability` -- the weak-scaling sweeps of Figures 4d-4g.
* :mod:`repro.bench.reporting` -- plain-text tables that mirror the rows and
  series the paper reports, printed by the ``benchmarks/`` suite and written
  into EXPERIMENTS.md.
"""

from repro.bench.ablation import (
    AblationRow,
    TilingComparisonRow,
    coarsened_size_ablation,
    compare_tiling_algorithms,
    output_sample_ablation,
    sample_matrix_size_ablation,
)
from repro.bench.experiments import ComparisonResult, compare_operators
from repro.bench.figure1 import Figure1Result, Figure1Row, figure1_toy_keys, run_figure1
from repro.bench.reporting import (
    format_comparison_table,
    format_scalability_table,
    format_table_iv,
)
from repro.bench.scalability import ScalabilityPoint, run_weak_scaling
from repro.bench.table5 import TableVResult, TableVRow, run_table_v

__all__ = [
    "ComparisonResult",
    "compare_operators",
    "ScalabilityPoint",
    "run_weak_scaling",
    "format_comparison_table",
    "format_scalability_table",
    "format_table_iv",
    "Figure1Row",
    "Figure1Result",
    "figure1_toy_keys",
    "run_figure1",
    "TilingComparisonRow",
    "compare_tiling_algorithms",
    "AblationRow",
    "coarsened_size_ablation",
    "sample_matrix_size_ablation",
    "output_sample_ablation",
    "TableVRow",
    "TableVResult",
    "run_table_v",
]
