"""Ablation studies of the design choices DESIGN.md calls out.

The paper motivates several design decisions that are not headline results
but directly determine whether the histogram algorithm is both *efficient*
and *accurate*:

* **MonotonicBSP vs baseline BSP** (Table III) -- the join-specialised tiling
  must match the baseline's balance while evaluating far fewer rectangles.
* **Coarsened matrix size ``n_c``** (section III-D) -- the paper picks
  ``n_c = 2J`` rather than ``J`` to lessen the grid-partitioning accuracy
  loss; too large an ``n_c`` only slows regionalization down.
* **Sample matrix size ``n_s``** (Lemma 3.1) -- shrinking ``n_s`` below
  ``sqrt(2 n J)`` produces over-weight cells and degrades load balance;
  growing it only costs time.
* **Output sample size ``s_o``** (Appendix A1) -- the estimate of the output
  distribution degrades when the sample is much smaller than the number of
  candidate MS cells.

Each ablation runs the CSIO operator on one workload while sweeping exactly
one knob and reports the achieved maximum region weight (load-balance
quality), the total modelled cost and the wall-clock seconds spent building
the scheme (efficiency).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bsp import bsp_partition
from repro.core.grid import WeightedGrid
from repro.core.histogram import EWHConfig
from repro.core.monotonic_bsp import monotonic_bsp_partition
from repro.core.weights import WeightFunction
from repro.engine.operators import CSIOOperator, OperatorRunResult
from repro.joins.conditions import BandJoinCondition
from repro.obs.clock import perf_counter
from repro.workloads.definitions import JoinWorkload

__all__ = [
    "TilingComparisonRow",
    "compare_tiling_algorithms",
    "AblationRow",
    "coarsened_size_ablation",
    "sample_matrix_size_ablation",
    "output_sample_ablation",
]


# ----------------------------------------------------------------------
# MonotonicBSP vs BSP (Table III)
# ----------------------------------------------------------------------
@dataclass
class TilingComparisonRow:
    """One grid size of the MonotonicBSP vs BSP comparison.

    Attributes
    ----------
    grid_size:
        Side length of the coarsened-matrix-like grid.
    delta:
        Weight threshold both algorithms were given.
    bsp_regions, monotonic_regions:
        Number of regions each algorithm produced (must agree for the
        comparison to be meaningful -- both solve the same DP).
    bsp_max_weight, monotonic_max_weight:
        Maximum region weight each achieved.
    bsp_rectangles, monotonic_rectangles:
        Rectangles evaluated by each dynamic program (the Table III cost
        driver).
    bsp_seconds, monotonic_seconds:
        Wall-clock seconds of each run.
    """

    grid_size: int
    delta: float
    bsp_regions: int
    monotonic_regions: int
    bsp_max_weight: float
    monotonic_max_weight: float
    bsp_rectangles: int
    monotonic_rectangles: int
    bsp_seconds: float
    monotonic_seconds: float

    @property
    def rectangle_ratio(self) -> float:
        """How many times fewer rectangles MonotonicBSP evaluated."""
        if self.monotonic_rectangles == 0:
            return float("inf")
        return self.bsp_rectangles / self.monotonic_rectangles


def _band_grid(size: int, beta: float, seed: int) -> WeightedGrid:
    """A random monotonic band-join-like grid used by the tiling comparison."""
    rng = np.random.default_rng(seed)
    boundaries = np.sort(rng.uniform(0, 10 * size, size=size + 1))
    condition = BandJoinCondition(beta=beta)
    candidate = condition.candidate_grid(
        boundaries[:-1], boundaries[1:], boundaries[:-1], boundaries[1:]
    )
    frequency = np.where(candidate, rng.integers(0, 20, size=(size, size)), 0)
    return WeightedGrid(
        frequency=frequency.astype(np.float64),
        row_input=rng.integers(5, 15, size=size).astype(np.float64),
        col_input=rng.integers(5, 15, size=size).astype(np.float64),
        candidate=candidate,
    )


def compare_tiling_algorithms(
    grid_sizes: tuple[int, ...] = (6, 8, 10, 12),
    beta: float = 8.0,
    weight_fn: WeightFunction | None = None,
    delta_fraction: float = 0.2,
    seed: int = 3,
) -> list[TilingComparisonRow]:
    """Run BSP and MonotonicBSP on the same grids and compare cost and quality.

    Parameters
    ----------
    grid_sizes:
        Side lengths of the synthetic monotonic grids (kept small because the
        baseline BSP is O(size^5)).
    beta:
        Band width (in key units) controlling how wide the candidate diagonal
        band of the synthetic grids is.
    weight_fn:
        Cost model (defaults to unit weights).
    delta_fraction:
        The weight threshold handed to both algorithms, as a fraction of the
        total grid weight.
    seed:
        Seed of the synthetic grid generator.
    """
    weight_fn = weight_fn or WeightFunction()
    rows: list[TilingComparisonRow] = []
    for size in grid_sizes:
        grid = _band_grid(size, beta, seed)
        delta = delta_fraction * weight_fn.weight(grid.total_input, grid.total_output)
        delta = max(delta, grid.max_cell_weight(weight_fn, candidates_only=True))

        start = perf_counter()
        bsp = bsp_partition(grid, weight_fn, delta)
        bsp_seconds = perf_counter() - start

        start = perf_counter()
        mono = monotonic_bsp_partition(grid, weight_fn, delta)
        mono_seconds = perf_counter() - start

        rows.append(
            TilingComparisonRow(
                grid_size=size,
                delta=delta,
                bsp_regions=bsp.num_regions,
                monotonic_regions=mono.num_regions,
                bsp_max_weight=bsp.max_region_weight,
                monotonic_max_weight=mono.max_region_weight,
                bsp_rectangles=bsp.rectangles_evaluated,
                monotonic_rectangles=mono.rectangles_evaluated,
                bsp_seconds=bsp_seconds,
                monotonic_seconds=mono_seconds,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Single-knob CSIO ablations
# ----------------------------------------------------------------------
@dataclass
class AblationRow:
    """One point of a single-knob CSIO ablation sweep.

    Attributes
    ----------
    knob:
        Name of the swept parameter.
    value:
        Value of the parameter at this point.
    result:
        The full operator run result.
    """

    knob: str
    value: float
    result: OperatorRunResult = field(repr=False)

    @property
    def join_cost(self) -> float:
        """Modelled join cost (maximum machine weight)."""
        return self.result.join_cost

    @property
    def total_cost(self) -> float:
        """Modelled total cost (stats + join)."""
        return self.result.total_cost

    @property
    def build_seconds(self) -> float:
        """Wall-clock seconds spent building the scheme."""
        return self.result.build_seconds


def _run_csio(
    workload: JoinWorkload, num_machines: int, config: EWHConfig, seed: int
) -> OperatorRunResult:
    operator = CSIOOperator(num_machines, config=config)
    return operator.run(
        workload.keys1,
        workload.keys2,
        workload.condition,
        workload.weight_fn,
        rng=np.random.default_rng(seed),
        expected_output=workload.exact_output_size(),
    )


def coarsened_size_ablation(
    workload: JoinWorkload,
    num_machines: int,
    multipliers: tuple[float, ...] = (1.0, 2.0, 3.0),
    seed: int = 0,
) -> list[AblationRow]:
    """Sweep the coarsened-matrix size ``n_c`` as a multiple of ``J``.

    The paper's choice is ``n_c = 2J``; multiplier 1 reproduces the "factor
    of 4" risk of coarsening at ``n_c = J``, larger multipliers only raise
    the regionalization cost.
    """
    rows = []
    for multiplier in multipliers:
        nc = max(1, int(round(multiplier * num_machines)))
        config = EWHConfig(max_coarsened_size=nc, seed=seed)
        result = _run_csio(workload, num_machines, config, seed)
        rows.append(AblationRow(knob="nc_multiplier", value=multiplier, result=result))
    return rows


def sample_matrix_size_ablation(
    workload: JoinWorkload,
    num_machines: int,
    sizes: tuple[int, ...],
    seed: int = 0,
) -> list[AblationRow]:
    """Sweep the sample matrix size ``n_s`` (overriding the Lemma 3.1 formula)."""
    rows = []
    for size in sizes:
        config = EWHConfig(sample_matrix_size=int(size), seed=seed)
        result = _run_csio(workload, num_machines, config, seed)
        rows.append(AblationRow(knob="ns", value=float(size), result=result))
    return rows


def output_sample_ablation(
    workload: JoinWorkload,
    num_machines: int,
    multiples: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
    seed: int = 0,
) -> list[AblationRow]:
    """Sweep the output sample size as a multiple of the candidate MS cells."""
    rows = []
    for multiple in multiples:
        config = EWHConfig(output_sample_multiple=float(multiple), seed=seed)
        result = _run_csio(workload, num_machines, config, seed)
        rows.append(
            AblationRow(knob="output_sample_multiple", value=multiple, result=result)
        )
    return rows
