"""Table V: more input statistics cannot cure M-Bucket's lack of output statistics.

Table V of the paper sweeps the number of equi-depth buckets ``p`` of the
M-Bucket (CSI) scheme for the BE_OCD and B_CB-3 joins and shows that

* increasing ``p`` increases the histogram-algorithm (scheme-building) time,
* it decreases the join execution time somewhat, but
* even with far more build time than CSIO, CSI's total time stays far worse,

because finer input statistics still say nothing about the output
distribution (the source of join product skew).  ``run_table_v`` reproduces
the sweep on the simulator: for each ``p`` it reports CSI's modelled join
cost, total cost and the wall-clock seconds its histogram algorithm took,
next to a single CSIO reference run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.histogram import EWHConfig
from repro.engine.operators import CSIOOperator, CSIOperator, OperatorRunResult
from repro.partitioning.m_bucket import MBucketConfig
from repro.workloads.definitions import JoinWorkload

__all__ = ["TableVRow", "TableVResult", "run_table_v"]


@dataclass
class TableVRow:
    """One bucket count of the Table V sweep.

    Attributes
    ----------
    num_buckets:
        ``p``, the number of equi-depth buckets CSI was given.
    result:
        The CSI operator run at this ``p``.
    """

    num_buckets: int
    result: OperatorRunResult = field(repr=False)

    @property
    def join_cost(self) -> float:
        """Modelled join execution cost."""
        return self.result.join_cost

    @property
    def total_cost(self) -> float:
        """Modelled total (stats + join) cost."""
        return self.result.total_cost

    @property
    def histogram_seconds(self) -> float:
        """Wall-clock seconds of the CSI histogram algorithm."""
        return self.result.build_seconds


@dataclass
class TableVResult:
    """The whole Table V sweep for one workload.

    Attributes
    ----------
    workload_name:
        Name of the workload swept.
    num_machines:
        ``J``.
    csi_rows:
        One row per bucket count, in the order requested.
    csio_reference:
        A single CSIO run on the same workload for comparison.
    """

    workload_name: str
    num_machines: int
    csi_rows: list[TableVRow] = field(default_factory=list)
    csio_reference: OperatorRunResult | None = None

    def best_csi_total_cost(self) -> float:
        """The best (lowest) CSI total cost across the sweep."""
        return min(row.total_cost for row in self.csi_rows)

    def csio_advantage(self) -> float:
        """How many times cheaper CSIO's total cost is than the *best* CSI."""
        if self.csio_reference is None or self.csio_reference.total_cost == 0:
            return float("inf")
        return self.best_csi_total_cost() / self.csio_reference.total_cost


def run_table_v(
    workload: JoinWorkload,
    num_machines: int,
    bucket_counts: tuple[int, ...] = (50, 100, 200, 400, 800),
    ewh_config: EWHConfig | None = None,
    seed: int = 0,
) -> TableVResult:
    """Sweep CSI's bucket count ``p`` on one workload and add a CSIO reference.

    Parameters
    ----------
    workload:
        A Table IV workload (the paper uses BE_OCD and B_CB-3).
    num_machines:
        ``J``.
    bucket_counts:
        The ``p`` values to sweep (the paper sweeps 2000..24000 at cluster
        scale; the defaults here scale with the laptop-scale inputs).
    ewh_config:
        Optional configuration of the CSIO reference run.
    seed:
        Seed shared by all runs.
    """
    expected = workload.exact_output_size()
    result = TableVResult(workload_name=workload.name, num_machines=num_machines)

    for p in bucket_counts:
        operator = CSIOperator(num_machines, config=MBucketConfig(num_buckets=int(p)))
        run = operator.run(
            workload.keys1,
            workload.keys2,
            workload.condition,
            workload.weight_fn,
            rng=np.random.default_rng(seed),
            expected_output=expected,
        )
        result.csi_rows.append(TableVRow(num_buckets=int(p), result=run))

    csio = CSIOOperator(num_machines, config=ewh_config)
    result.csio_reference = csio.run(
        workload.keys1,
        workload.keys2,
        workload.condition,
        workload.weight_fn,
        rng=np.random.default_rng(seed),
        expected_output=expected,
    )
    return result
