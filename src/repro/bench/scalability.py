"""Weak-scaling experiments (Figures 4d, 4e, 4f and 4g).

The paper scales the data size and the number of machines together
(96M/16 -> 192M/32 -> 384M/64 for B_CB-3, and scale factors 80/160/320 with
16/32/64 machines for BE_OCD) and shows that only CSIO keeps both the total
execution time and the memory consumption under control.  ``run_weak_scaling``
reproduces that sweep at laptop scale: each point doubles both the workload
size knob and ``J``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.bench.experiments import ComparisonResult, compare_operators
from repro.core.histogram import EWHConfig
from repro.partitioning.m_bucket import MBucketConfig
from repro.workloads.definitions import JoinWorkload

__all__ = ["ScalabilityPoint", "run_weak_scaling"]


@dataclass
class ScalabilityPoint:
    """One point of a weak-scaling sweep.

    Attributes
    ----------
    num_machines:
        ``J`` at this point.
    scale:
        The workload size knob used (whatever unit the workload factory
        takes: orders, segment size, ...).
    comparison:
        Results of all operators at this point.
    """

    num_machines: int
    scale: float
    comparison: ComparisonResult


def run_weak_scaling(
    workload_factory: Callable[[float], JoinWorkload],
    points: list[tuple[float, int]],
    schemes: tuple[str, ...] = ("CI", "CSI", "CSIO"),
    m_bucket_config: MBucketConfig | None = None,
    ewh_config: EWHConfig | None = None,
    seed: int = 0,
) -> list[ScalabilityPoint]:
    """Run the same workload family at growing (size, machines) points.

    Parameters
    ----------
    workload_factory:
        Callable mapping a size knob to a :class:`JoinWorkload` (e.g.
        ``lambda s: make_bcb(beta=3, small_segment_size=int(s))``).
    points:
        List of ``(scale, num_machines)`` pairs, typically doubling both.
    schemes, m_bucket_config, ewh_config, seed:
        Forwarded to :func:`compare_operators`.
    """
    results: list[ScalabilityPoint] = []
    for scale, num_machines in points:
        workload = workload_factory(scale)
        comparison = compare_operators(
            workload,
            num_machines=num_machines,
            schemes=schemes,
            m_bucket_config=m_bucket_config,
            ewh_config=ewh_config,
            seed=seed,
        )
        results.append(
            ScalabilityPoint(
                num_machines=num_machines, scale=scale, comparison=comparison
            )
        )
    return results
