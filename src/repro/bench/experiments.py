"""Operator-comparison experiments (Figures 4a, 4b, 4c and 4h).

``compare_operators`` runs one workload under a selection of operators (CI,
CSI, CSIO, and optionally the adaptive fallback) on the simulated cluster and
returns one :class:`~repro.engine.operators.OperatorRunResult` per operator,
wrapped together with the workload's characteristics (the Table IV columns).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.histogram import EWHConfig
from repro.engine.adaptive import AdaptiveOperator
from repro.engine.operators import (
    CIOperator,
    CSIOOperator,
    CSIOperator,
    OperatorRunResult,
)
from repro.partitioning.m_bucket import MBucketConfig
from repro.workloads.definitions import JoinWorkload

__all__ = ["ComparisonResult", "compare_operators"]

#: Default operator line-up of the paper's evaluation.
DEFAULT_SCHEMES = ("CI", "CSI", "CSIO")


@dataclass
class ComparisonResult:
    """All operators' results on one workload.

    Attributes
    ----------
    workload_name:
        Name of the workload (``B_ICD``, ``B_CB-3``, ``BE_OCD``...).
    num_machines:
        ``J`` used for every operator.
    input_tuples, output_tuples, output_input_ratio:
        The workload's Table IV characteristics.
    results:
        Mapping from scheme name to its :class:`OperatorRunResult`.
    """

    workload_name: str
    num_machines: int
    input_tuples: int
    output_tuples: int
    output_input_ratio: float
    results: dict[str, OperatorRunResult] = field(default_factory=dict)

    def speedup(self, baseline: str, scheme: str = "CSIO") -> float:
        """Total-cost speedup of ``scheme`` over ``baseline`` (>1 means faster)."""
        base = self.results[baseline].total_cost
        ours = self.results[scheme].total_cost
        return base / ours if ours > 0 else float("inf")

    def join_speedup(self, baseline: str, scheme: str = "CSIO") -> float:
        """Join-cost-only speedup of ``scheme`` over ``baseline``."""
        base = self.results[baseline].join_cost
        ours = self.results[scheme].join_cost
        return base / ours if ours > 0 else float("inf")


def compare_operators(
    workload: JoinWorkload,
    num_machines: int,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    m_bucket_config: MBucketConfig | None = None,
    ewh_config: EWHConfig | None = None,
    seed: int = 0,
) -> ComparisonResult:
    """Run ``workload`` under every requested scheme and collect the results.

    Parameters
    ----------
    workload:
        A Table IV workload (or any :class:`JoinWorkload`).
    num_machines:
        ``J``.
    schemes:
        Any subset of ``("CI", "CSI", "CSIO", "CSIO-adaptive")``.
    m_bucket_config, ewh_config:
        Optional scheme configurations.
    seed:
        Seed of the random generator shared by the runs (each operator gets
        its own child generator so results are reproducible independently of
        the scheme order).
    """
    expected_output = workload.exact_output_size()
    comparison = ComparisonResult(
        workload_name=workload.name,
        num_machines=num_machines,
        input_tuples=workload.num_input_tuples,
        output_tuples=expected_output,
        output_input_ratio=workload.output_input_ratio(),
    )

    for scheme in schemes:
        # zlib.crc32 rather than hash(): string hashes are randomised per
        # process, which made the comparisons (and the benchmark assertions
        # built on them) flaky across runs.
        rng = np.random.default_rng([seed, zlib.crc32(scheme.encode("utf-8"))])
        if scheme == "CI":
            operator = CIOperator(num_machines)
        elif scheme == "CSI":
            operator = CSIOperator(num_machines, config=m_bucket_config)
        elif scheme == "CSIO":
            operator = CSIOOperator(num_machines, config=ewh_config)
        elif scheme == "CSIO-adaptive":
            operator = AdaptiveOperator(num_machines, ewh_config=ewh_config)
        else:
            raise ValueError(f"unknown scheme {scheme!r}")
        comparison.results[scheme] = operator.run(
            workload.keys1,
            workload.keys2,
            workload.condition,
            workload.weight_fn,
            rng=rng,
            expected_output=expected_output,
        )
    return comparison
