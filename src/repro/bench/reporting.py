"""Plain-text report tables mirroring the paper's tables and figure series.

The benchmark suite prints these tables so a run of
``pytest benchmarks/ --benchmark-only -s`` regenerates, in text form, the
rows and series of every table and figure of the evaluation section.
"""

from __future__ import annotations

import math

from repro.bench.experiments import ComparisonResult
from repro.bench.scalability import ScalabilityPoint
from repro.obs.trace import summarize_spans
from repro.streaming.metrics import StreamRunResult
from repro.workloads.definitions import JoinWorkload

__all__ = [
    "bucket_ratio",
    "bucket_seconds",
    "format_comparison_table",
    "format_scalability_table",
    "format_streaming_table",
    "format_streaming_batches",
    "format_table_iv",
    "format_trace_summary",
    "format_rows",
]


def bucket_seconds(seconds: float) -> str:
    """Render a measured wall-clock duration as a log-decade bucket.

    Golden benchmark files must be byte-stable across regenerations, but a
    measured duration churns in its trailing digits on every run (the PR 6
    follow-up touched ten golden files with pure timing noise).  A decade
    bucket (``10-100ms``) is stable across machines and runs while still
    catching order-of-magnitude regressions; exact digits remain available
    in non-golden output.  Non-finite values render ``-`` and an exact zero
    renders ``0`` (a simulated path that never tired the clock).
    """
    if not math.isfinite(seconds):
        return "-"
    if seconds == 0.0:
        return "0"
    if seconds < 0.001:
        return "<1ms"
    if seconds < 0.01:
        return "1-10ms"
    if seconds < 0.1:
        return "10-100ms"
    if seconds < 1.0:
        return "0.1-1s"
    if seconds < 10.0:
        return "1-10s"
    if seconds < 100.0:
        return "10-100s"
    return ">=100s"


def bucket_ratio(ratio: float) -> str:
    """Render a measured ratio (e.g. a speedup) as a power-of-two bucket.

    The golden-file counterpart of printing ``2.83x``: ``2-4x`` is stable
    run to run while a halved speedup still changes the bucket.  Ratios
    below one render ``<1x`` and non-finite values ``-``.
    """
    if not math.isfinite(ratio):
        return "-"
    if ratio < 1.0:
        return "<1x"
    exponent = int(math.floor(math.log2(ratio)))
    return f"{2 ** exponent}-{2 ** (exponent + 1)}x"


def format_rows(headers: list[str], rows: list[list[str]]) -> str:
    """Format a list of rows as a fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _format_ratio(value: float, pattern: str = "{:.3f}") -> str:
    """Format a ratio, rendering undefined (nan/inf) values as ``-``.

    Degenerate runs -- zero batches, an empty stream, load-free batches --
    have no meaningful throughput; they must render as ``-`` rather than
    crash the table or print a claim of infinite throughput.
    """
    return pattern.format(value) if math.isfinite(value) else "-"


def format_table_iv(workloads: list[JoinWorkload]) -> str:
    """Table IV: join characteristics (input, output, output/input ratio)."""
    rows = []
    for workload in workloads:
        rows.append(
            [
                workload.name,
                workload.condition.name,
                f"{workload.num_input_tuples:,}",
                f"{workload.exact_output_size():,}",
                f"{workload.output_input_ratio():.2f}",
            ]
        )
    headers = ["join", "condition", "input tuples", "output tuples", "rho_oi"]
    return format_rows(headers, rows)


def format_comparison_table(comparisons: list[ComparisonResult]) -> str:
    """Figure 4a/4c/4h style table: one row per (workload, scheme)."""
    headers = [
        "join",
        "rho_oi",
        "scheme",
        "stats cost",
        "join cost",
        "total cost",
        "memory (tuples)",
        "max region w",
        "est. max w",
        "repl.",
        "correct",
    ]
    rows = []
    for comparison in comparisons:
        for scheme, result in comparison.results.items():
            estimated = (
                f"{result.estimated_max_weight:,.0f}"
                if result.estimated_max_weight is not None
                else "-"
            )
            rows.append(
                [
                    comparison.workload_name,
                    f"{comparison.output_input_ratio:.2f}",
                    scheme,
                    f"{result.stats_cost:,.0f}",
                    f"{result.join_cost:,.0f}",
                    f"{result.total_cost:,.0f}",
                    f"{result.memory_tuples:,}",
                    f"{result.max_region_weight:,.0f}",
                    estimated,
                    f"{result.replication_factor:.2f}",
                    "yes" if result.output_correct else "NO",
                ]
            )
    return format_rows(headers, rows)


def format_streaming_table(
    results: dict[str, StreamRunResult], golden: bool = False
) -> str:
    """Streaming-drift summary: one row per scheme over the whole stream.

    ``join s`` is the execution backend's real wall clock over the run's
    per-region joins -- the only column that depends on the backend; all the
    cost-model columns are backend-independent.  ``window`` is the window
    policy bounding the retained state, ``peak resident`` the largest
    end-of-batch state across machines (what the window bounds),
    ``peak mem KB`` the largest end-of-batch *total* engine footprint --
    join state plus key history plus live index sets, what history
    compaction bounds -- and ``evicted`` the state entries the policy
    dropped over the run.  ``correct`` is ``-`` for windowed runs: the
    full-history check does not apply once the engine deliberately forgets
    state.

    When any run went through a backpressured pipeline, four more columns
    appear: ``backpressure`` (policy @ queue bound), ``peak queue``
    (deepest the bounded queue got, in batches), ``shed`` (tuples dropped
    at the full queue) and ``stall s`` (producer time lost blocking on
    it); synchronous runs render ``-`` there.

    When any run was elastic or crash-survivable -- it took checkpoints,
    was restored from one, or resized its fleet mid-stream -- three more
    columns appear: ``ckpts``, ``restores`` and ``resizes``.  Plain runs
    keep the historical column set, so committed goldens stay byte-stable
    until a benchmark opts into elasticity.

    ``pickled KB`` is the run's total serialization tax -- bytes the
    multiprocess backend's task and result payloads shipped through its
    pickle channel; runs whose backend has no serialization channel (the
    in-process simulated backend) render ``-``, never a misleading ``0``.
    ``shm KB`` is the payload the sticky backend moved through its
    shared-memory arena instead -- the two columns together show *where*
    each run's data travelled.  ``clock`` says which clock domain each
    run's timed quantities live in: ``real`` throughout, or the simulated
    parts (``join:sim`` for a virtual-delay backend, ``queue:sim`` for a
    simulated pipeline) -- so a table can never silently compare simulated
    seconds against wall-clock seconds.

    ``golden=True`` renders every *measured* (real-clock) duration as
    ``-``, so the table is byte-stable when committed as a benchmark
    golden -- even a :func:`bucket_seconds` decade bucket churns when a
    single measurement sits near a bucket boundary on a noisy runner.
    Durations from a simulated clock domain are exact either way (they are
    deterministic), and the exact measured values remain in the live
    (non-golden) benchmark output.
    """
    pipelined = any(
        result.backpressure is not None for result in results.values()
    )
    elastic = any(
        result.checkpoints_taken or result.restores or result.num_resizes
        for result in results.values()
    )
    headers = [
        "scheme",
        "backend",
        "window",
        "batches",
        "tuples",
        "output",
        "max mach. load",
        "latency cost",
        "imbalance",
        "migrated",
        "rebuilds",
        "peak resident",
        "peak mem KB",
        "evicted",
    ]
    if pipelined:
        headers += ["backpressure", "peak queue", "shed", "stall s"]
    if elastic:
        headers += ["ckpts", "restores", "resizes"]
    headers += [
        "throughput",
        "join s",
        "pickled KB",
        "shm KB",
        "clock",
        "correct",
    ]
    rows = []
    for scheme, result in results.items():
        hide_join = golden and result.join_clock == "real"
        hide_stall = golden and result.queue_clock != "simulated"
        row = [
            scheme,
            result.backend,
            result.window,
            str(result.num_batches),
            f"{result.total_tuples:,}",
            f"{result.total_output:,}",
            f"{result.max_machine_load:,.0f}",
            f"{result.latency_cost:,.0f}",
            f"{result.load_imbalance:.2f}",
            f"{result.total_migrated:,}",
            str(result.num_repartitions),
            f"{result.peak_resident_tuples:,}",
            f"{result.peak_resident_bytes / 1024:,.0f}",
            f"{result.total_evicted:,}",
        ]
        if pipelined:
            if result.backpressure is None:
                row += ["-", "-", "-", "-"]
            else:
                bound = (
                    "inf"
                    if result.queue_batches is None
                    else str(result.queue_batches)
                )
                row += [
                    f"{result.backpressure}@{bound}",
                    f"{result.peak_queue_depth:,}",
                    f"{result.total_tuples_shed:,}",
                    "-"
                    if hide_stall
                    else f"{result.producer_stall_seconds:.3f}",
                ]
        if elastic:
            row += [
                str(result.checkpoints_taken),
                str(result.restores),
                str(result.num_resizes),
            ]
        row += [
            _format_ratio(result.mean_throughput),
            "-" if hide_join else f"{result.join_seconds:.3f}",
            "-"
            if result.total_bytes_pickled is None
            else f"{result.total_bytes_pickled / 1024:,.1f}",
            "-"
            if result.total_bytes_shm is None
            else f"{result.total_bytes_shm / 1024:,.1f}",
            result.clock_domains,
            "-"
            if result.output_correct is None
            else ("yes" if result.output_correct else "NO"),
        ]
        rows.append(row)
    return format_rows(headers, rows)


def format_streaming_batches(results: dict[str, StreamRunResult]) -> str:
    """Per-batch max-machine-load, resident-state and memory series, side by side.

    One ``max load``, one ``resident`` (end-of-batch retained state
    entries), one ``mem KB`` (end-of-batch total footprint: state + key
    history + live sets) and one ``repart.`` column per scheme -- plus one
    ``queue`` column per scheme (queue depth at the batch's pop) when any
    run went through a backpressured pipeline.  Rows are aligned by the
    source's ``batch_index``, not by position, so schemes that consumed
    different subsets of the stream -- a run that stopped early, a
    pipeline that shed batches or merged them into super-batches -- line
    up against the same source batch, with blank cells where a scheme
    never processed that index (a coalesced super-batch sits on its last
    constituent's index).  An empty result set renders the header only
    instead of crashing.

    When any run measured its serialization channel, one ``pickled KB``
    column per scheme appears too (the batch's pickle-channel bytes under
    the multiprocess backend); batches with no measurement render ``-``,
    so mixing a profiled run with simulated ones stays unambiguous.  An
    ``shm KB`` column per scheme appears likewise when any run moved bytes
    through a shared-memory arena (the sticky backend's per-batch delta
    payload).
    """
    schemes = list(results)
    pipelined = any(
        result.backpressure is not None for result in results.values()
    )
    profiled = any(
        batch.bytes_pickled is not None
        for result in results.values()
        for batch in result.batches
    )
    shm_profiled = any(
        batch.bytes_shm is not None
        for result in results.values()
        for batch in result.batches
    )
    headers = (
        ["batch", "tuples"]
        + [f"{s} max load" for s in schemes]
        + [f"{s} resident" for s in schemes]
        + [f"{s} mem KB" for s in schemes]
        + ([f"{s} queue" for s in schemes] if pipelined else [])
        + ([f"{s} pickled KB" for s in schemes] if profiled else [])
        + ([f"{s} shm KB" for s in schemes] if shm_profiled else [])
        + [f"{s} repart." for s in schemes]
    )
    by_scheme = [
        {batch.batch_index: batch for batch in result.batches}
        for result in results.values()
    ]
    indices = sorted({index for mapping in by_scheme for index in mapping})
    rows = []
    for index in indices:
        per_scheme = [mapping.get(index) for mapping in by_scheme]
        tuples = next(
            (batch.new_tuples for batch in per_scheme if batch is not None), 0
        )
        rows.append(
            [str(index), f"{tuples:,}"]
            + ["" if b is None else f"{b.max_load:,.0f}" for b in per_scheme]
            + ["" if b is None else f"{b.resident_tuples:,}" for b in per_scheme]
            + ["" if b is None else f"{b.resident_bytes / 1024:,.0f}" for b in per_scheme]
            + (
                ["" if b is None else f"{b.queue_depth:,}" for b in per_scheme]
                if pipelined
                else []
            )
            + (
                [
                    ""
                    if b is None
                    else (
                        "-"
                        if b.bytes_pickled is None
                        else f"{b.bytes_pickled / 1024:,.1f}"
                    )
                    for b in per_scheme
                ]
                if profiled
                else []
            )
            + (
                [
                    ""
                    if b is None
                    else (
                        "-"
                        if b.bytes_shm is None
                        else f"{b.bytes_shm / 1024:,.1f}"
                    )
                    for b in per_scheme
                ]
                if shm_profiled
                else []
            )
            + ["" if b is None else ("*" if b.repartitioned else "") for b in per_scheme]
        )
    return format_rows(headers, rows)


def format_trace_summary(trace) -> str:
    """Where the traced time went, aggregated by span label.

    ``trace`` is a :class:`~repro.obs.trace.Tracer` (or anything with a
    ``spans`` attribute), or a plain iterable of
    :class:`~repro.obs.trace.Span`.  One row per distinct
    ``(category, name)``, ordered by descending total time: count, total,
    mean and max seconds.  Seconds are in the *tracer's* clock -- wall
    seconds under the default clock, tick counts under a deterministic
    :class:`~repro.obs.trace.TickClock` -- so the table itself never mixes
    clock domains.  An empty trace (e.g. the null tracer) renders the
    header only.
    """
    spans = getattr(trace, "spans", trace)
    headers = ["category", "span", "count", "total s", "mean s", "max s"]
    rows = [
        [
            entry["category"],
            entry["name"],
            str(entry["count"]),
            f"{entry['total_seconds']:.6f}",
            f"{entry['mean_seconds']:.6f}",
            f"{entry['max_seconds']:.6f}",
        ]
        for entry in summarize_spans(spans)
    ]
    return format_rows(headers, rows)


def format_scalability_table(points: list[ScalabilityPoint]) -> str:
    """Figure 4d-4g style table: total cost and memory per (point, scheme)."""
    headers = [
        "scale",
        "machines",
        "scheme",
        "total cost",
        "join cost",
        "memory (tuples)",
        "correct",
    ]
    rows = []
    for point in points:
        for scheme, result in point.comparison.results.items():
            rows.append(
                [
                    f"{point.scale:g}",
                    str(point.num_machines),
                    scheme,
                    f"{result.total_cost:,.0f}",
                    f"{result.join_cost:,.0f}",
                    f"{result.memory_tuples:,}",
                    "yes" if result.output_correct else "NO",
                ]
            )
    return format_rows(headers, rows)
