"""Plain-text report tables mirroring the paper's tables and figure series.

The benchmark suite prints these tables so a run of
``pytest benchmarks/ --benchmark-only -s`` regenerates, in text form, the
rows and series of every table and figure of the evaluation section.
"""

from __future__ import annotations

from repro.bench.experiments import ComparisonResult
from repro.bench.scalability import ScalabilityPoint
from repro.streaming.metrics import StreamRunResult
from repro.workloads.definitions import JoinWorkload

__all__ = [
    "format_comparison_table",
    "format_scalability_table",
    "format_streaming_table",
    "format_streaming_batches",
    "format_table_iv",
    "format_rows",
]


def format_rows(headers: list[str], rows: list[list[str]]) -> str:
    """Format a list of rows as a fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_table_iv(workloads: list[JoinWorkload]) -> str:
    """Table IV: join characteristics (input, output, output/input ratio)."""
    rows = []
    for workload in workloads:
        rows.append(
            [
                workload.name,
                workload.condition.name,
                f"{workload.num_input_tuples:,}",
                f"{workload.exact_output_size():,}",
                f"{workload.output_input_ratio():.2f}",
            ]
        )
    headers = ["join", "condition", "input tuples", "output tuples", "rho_oi"]
    return format_rows(headers, rows)


def format_comparison_table(comparisons: list[ComparisonResult]) -> str:
    """Figure 4a/4c/4h style table: one row per (workload, scheme)."""
    headers = [
        "join",
        "rho_oi",
        "scheme",
        "stats cost",
        "join cost",
        "total cost",
        "memory (tuples)",
        "max region w",
        "est. max w",
        "repl.",
        "correct",
    ]
    rows = []
    for comparison in comparisons:
        for scheme, result in comparison.results.items():
            estimated = (
                f"{result.estimated_max_weight:,.0f}"
                if result.estimated_max_weight is not None
                else "-"
            )
            rows.append(
                [
                    comparison.workload_name,
                    f"{comparison.output_input_ratio:.2f}",
                    scheme,
                    f"{result.stats_cost:,.0f}",
                    f"{result.join_cost:,.0f}",
                    f"{result.total_cost:,.0f}",
                    f"{result.memory_tuples:,}",
                    f"{result.max_region_weight:,.0f}",
                    estimated,
                    f"{result.replication_factor:.2f}",
                    "yes" if result.output_correct else "NO",
                ]
            )
    return format_rows(headers, rows)


def format_streaming_table(results: dict[str, StreamRunResult]) -> str:
    """Streaming-drift summary: one row per scheme over the whole stream.

    ``join s`` is the execution backend's real wall clock over the run's
    per-region joins -- the only column that depends on the backend; all the
    cost-model columns are backend-independent.  ``window`` is the window
    policy bounding the retained state, ``peak resident`` the largest
    end-of-batch state across machines (what the window bounds),
    ``peak mem KB`` the largest end-of-batch *total* engine footprint --
    join state plus key history plus live index sets, what history
    compaction bounds -- and ``evicted`` the state entries the policy
    dropped over the run.  ``correct`` is ``-`` for windowed runs: the
    full-history check does not apply once the engine deliberately forgets
    state.
    """
    headers = [
        "scheme",
        "backend",
        "window",
        "batches",
        "tuples",
        "output",
        "max mach. load",
        "latency cost",
        "imbalance",
        "migrated",
        "rebuilds",
        "peak resident",
        "peak mem KB",
        "evicted",
        "throughput",
        "join s",
        "correct",
    ]
    rows = []
    for scheme, result in results.items():
        rows.append(
            [
                scheme,
                result.backend,
                result.window,
                str(result.num_batches),
                f"{result.total_tuples:,}",
                f"{result.total_output:,}",
                f"{result.max_machine_load:,.0f}",
                f"{result.latency_cost:,.0f}",
                f"{result.load_imbalance:.2f}",
                f"{result.total_migrated:,}",
                str(result.num_repartitions),
                f"{result.peak_resident_tuples:,}",
                f"{result.peak_resident_bytes / 1024:,.0f}",
                f"{result.total_evicted:,}",
                f"{result.mean_throughput:.3f}",
                f"{result.join_seconds:.3f}",
                "-"
                if result.output_correct is None
                else ("yes" if result.output_correct else "NO"),
            ]
        )
    return format_rows(headers, rows)


def format_streaming_batches(results: dict[str, StreamRunResult]) -> str:
    """Per-batch max-machine-load, resident-state and memory series, side by side.

    One ``max load``, one ``resident`` (end-of-batch retained state
    entries), one ``mem KB`` (end-of-batch total footprint: state + key
    history + live sets) and one ``repart.`` column per scheme.  Runs of
    unequal length (e.g. one engine stopped early) render blank cells past
    their last batch.
    """
    schemes = list(results)
    headers = (
        ["batch", "tuples"]
        + [f"{s} max load" for s in schemes]
        + [f"{s} resident" for s in schemes]
        + [f"{s} mem KB" for s in schemes]
        + [f"{s} repart." for s in schemes]
    )
    num_batches = max(result.num_batches for result in results.values())
    rows = []
    for index in range(num_batches):
        per_scheme = [
            result.batches[index] if index < result.num_batches else None
            for result in results.values()
        ]
        tuples = next(
            (batch.new_tuples for batch in per_scheme if batch is not None), 0
        )
        rows.append(
            [str(index), f"{tuples:,}"]
            + ["" if b is None else f"{b.max_load:,.0f}" for b in per_scheme]
            + ["" if b is None else f"{b.resident_tuples:,}" for b in per_scheme]
            + ["" if b is None else f"{b.resident_bytes / 1024:,.0f}" for b in per_scheme]
            + ["" if b is None else ("*" if b.repartitioned else "") for b in per_scheme]
        )
    return format_rows(headers, rows)


def format_scalability_table(points: list[ScalabilityPoint]) -> str:
    """Figure 4d-4g style table: total cost and memory per (point, scheme)."""
    headers = [
        "scale",
        "machines",
        "scheme",
        "total cost",
        "join cost",
        "memory (tuples)",
        "correct",
    ]
    rows = []
    for point in points:
        for scheme, result in point.comparison.results.items():
            rows.append(
                [
                    f"{point.scale:g}",
                    str(point.num_machines),
                    scheme,
                    f"{result.total_cost:,.0f}",
                    f"{result.join_cost:,.0f}",
                    f"{result.memory_tuples:,}",
                    "yes" if result.output_correct else "NO",
                ]
            )
    return format_rows(headers, rows)
