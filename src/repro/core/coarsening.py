"""Stage 2 of the histogram algorithm: coarsening MS into MC.

Coarsening lays a non-uniform ``n_c x n_c`` grid over the sample matrix so
that the *maximum cell weight* of the resulting coarsened matrix is as small
as possible.  This is the RTILE problem with grid partitioning and the
MAX-WEIGHT-ID metric (Muthukrishnan & Suel); the best known approximation has
ratio 2.  The implementation follows the standard iterative-refinement
recipe: alternately re-optimise the row boundaries for fixed column
boundaries and vice versa, where each 1-D optimisation is a binary search
over the cell-weight threshold combined with a greedy sweep.

The paper's **MonotonicCoarsening** observation -- non-candidate cells weigh
zero, so only candidate cells need their weights computed -- is applied
throughout: a block that contains no candidate MS cell contributes nothing to
the maximum.

``n_c = 2J`` keeps the accuracy loss of working on a grid rather than the
original matrix to a factor below 4 (paper §III-D) while keeping the
regionalization input small.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.grid import WeightedGrid
from repro.core.weights import WeightFunction

__all__ = ["CoarseningResult", "coarsen", "coarsened_size"]


def coarsened_size(num_machines: int, grid_size: int,
                   max_size: int | None = None) -> int:
    """The coarsened matrix side length ``n_c``.

    The paper uses ``n_c = 2J``; the result can never exceed the sample
    matrix size and may optionally be capped (``max_size``) to bound the
    regionalization cost on very large machine counts.
    """
    if num_machines <= 0:
        raise ValueError("num_machines must be positive")
    nc = 2 * num_machines
    if max_size is not None:
        nc = min(nc, max_size)
    return max(1, min(nc, grid_size))


@dataclass
class CoarseningResult:
    """Output of the coarsening stage.

    Attributes
    ----------
    grid:
        The coarsened matrix MC as a :class:`WeightedGrid`.
    row_groups, col_groups:
        Boundary index arrays of length ``n_c + 1`` into the MS rows/columns:
        MC row ``g`` aggregates MS rows ``row_groups[g] .. row_groups[g+1]-1``.
    max_cell_weight:
        The maximum candidate-cell weight achieved.
    iterations:
        Number of alternating refinement iterations executed.
    """

    grid: WeightedGrid
    row_groups: np.ndarray
    col_groups: np.ndarray
    max_cell_weight: float
    iterations: int


def _even_boundaries(size: int, groups: int) -> np.ndarray:
    """Evenly spaced group boundaries (length ``groups + 1``) over ``size`` items."""
    return np.unique(np.linspace(0, size, groups + 1).round().astype(np.int64))


def _aggregate_columns(grid: WeightedGrid, col_bounds: np.ndarray) -> tuple[
    np.ndarray, np.ndarray, np.ndarray
]:
    """Aggregate frequencies, candidate counts and column input by column group."""
    starts = col_bounds[:-1]
    freq_by_group = np.add.reduceat(grid.frequency, starts, axis=1)
    cand_by_group = np.add.reduceat(
        grid.candidate.astype(np.float64), starts, axis=1
    )
    col_input_by_group = np.add.reduceat(grid.col_input, starts)
    return freq_by_group, cand_by_group, col_input_by_group


def _sweep_rows(
    freq_by_group: np.ndarray,
    cand_by_group: np.ndarray,
    row_input: np.ndarray,
    col_input_by_group: np.ndarray,
    weight_fn: WeightFunction,
    threshold: float,
    max_groups: int,
) -> np.ndarray | None:
    """Greedy sweep: group consecutive rows so every candidate block stays under
    ``threshold``.  Returns the boundary array or ``None`` when more than
    ``max_groups`` groups would be needed."""
    num_rows = len(row_input)
    boundaries = [0]
    acc_freq = np.zeros(freq_by_group.shape[1])
    acc_cand = np.zeros(freq_by_group.shape[1])
    acc_row_input = 0.0
    for row in range(num_rows):
        cand_after = acc_cand + cand_by_group[row]
        freq_after = acc_freq + freq_by_group[row]
        row_input_after = acc_row_input + row_input[row]
        weights = (
            weight_fn.input_cost * (row_input_after + col_input_by_group)
            + weight_fn.output_cost * freq_after
        )
        # Only blocks containing candidate cells count (MonotonicCoarsening:
        # non-candidate cells weigh zero).
        max_weight = float(weights[cand_after > 0].max()) if (cand_after > 0).any() else 0.0
        is_first_row_of_group = acc_row_input == 0.0 and not acc_cand.any()
        if max_weight <= threshold or is_first_row_of_group:
            acc_freq = freq_after
            acc_cand = cand_after
            acc_row_input = row_input_after
            continue
        # Close the current group before this row and start a new one.
        boundaries.append(row)
        if len(boundaries) > max_groups:
            return None
        acc_freq = freq_by_group[row].copy()
        acc_cand = cand_by_group[row].copy()
        acc_row_input = float(row_input[row])
    boundaries.append(num_rows)
    if len(boundaries) - 1 > max_groups:
        return None
    return np.asarray(boundaries, dtype=np.int64)


def _optimize_axis(
    grid: WeightedGrid,
    col_bounds: np.ndarray,
    weight_fn: WeightFunction,
    max_groups: int,
    tolerance: float,
    max_search_steps: int,
) -> np.ndarray:
    """Choose row boundaries minimising the max candidate-block weight for fixed columns."""
    freq_by_group, cand_by_group, col_input_by_group = _aggregate_columns(
        grid, col_bounds
    )

    def feasible(threshold: float) -> np.ndarray | None:
        return _sweep_rows(
            freq_by_group, cand_by_group, grid.row_input, col_input_by_group,
            weight_fn, threshold, max_groups,
        )

    low = grid.max_cell_weight(weight_fn, candidates_only=True)
    high = weight_fn.weight(grid.total_input, grid.total_output)
    high = max(high, low)
    best = feasible(high)
    if best is None:
        # A single group per row always fits max_groups >= 1 at an infinite
        # threshold; reaching here means max_groups < 1, which is invalid.
        raise RuntimeError("coarsening sweep failed at the trivial threshold")
    result = feasible(low)
    if result is not None:
        return result
    for _ in range(max_search_steps):
        if high - low <= tolerance * max(high, 1.0):
            break
        mid = (low + high) / 2.0
        candidate_bounds = feasible(mid)
        if candidate_bounds is None:
            low = mid
        else:
            high = mid
            best = candidate_bounds
    return best


def _build_coarse_grid(
    grid: WeightedGrid, row_bounds: np.ndarray, col_bounds: np.ndarray
) -> WeightedGrid:
    """Aggregate the fine grid into the coarse grid defined by the boundaries."""
    row_starts = row_bounds[:-1]
    col_starts = col_bounds[:-1]
    freq = np.add.reduceat(
        np.add.reduceat(grid.frequency, row_starts, axis=0), col_starts, axis=1
    )
    cand_counts = np.add.reduceat(
        np.add.reduceat(grid.candidate.astype(np.float64), row_starts, axis=0),
        col_starts, axis=1,
    )
    row_input = np.add.reduceat(grid.row_input, row_starts)
    col_input = np.add.reduceat(grid.col_input, col_starts)
    return WeightedGrid(
        frequency=freq,
        row_input=row_input,
        col_input=col_input,
        candidate=cand_counts > 0,
    )


def coarsen(
    grid: WeightedGrid,
    num_row_groups: int,
    num_col_groups: int | None = None,
    weight_fn: WeightFunction | None = None,
    max_iterations: int = 4,
    tolerance: float = 0.01,
    max_search_steps: int = 25,
) -> CoarseningResult:
    """Coarsen a weighted grid into ``num_row_groups x num_col_groups`` blocks.

    Parameters
    ----------
    grid:
        The sample matrix MS (or any weighted grid).
    num_row_groups, num_col_groups:
        Target dimensions ``n_c`` of the coarsened matrix; ``num_col_groups``
        defaults to ``num_row_groups``.
    weight_fn:
        Cost model; defaults to unit input and output costs.
    max_iterations:
        Number of alternating row/column refinement passes.
    tolerance, max_search_steps:
        Convergence controls of the threshold binary search.
    """
    weight_fn = weight_fn or WeightFunction()
    num_col_groups = num_col_groups or num_row_groups
    num_row_groups = max(1, min(num_row_groups, grid.num_rows))
    num_col_groups = max(1, min(num_col_groups, grid.num_cols))

    row_bounds = _even_boundaries(grid.num_rows, num_row_groups)
    col_bounds = _even_boundaries(grid.num_cols, num_col_groups)

    best_grid = _build_coarse_grid(grid, row_bounds, col_bounds)
    best_weight = best_grid.max_cell_weight(weight_fn, candidates_only=True)
    best_bounds = (row_bounds, col_bounds)
    iterations_run = 0

    transposed = WeightedGrid(
        frequency=grid.frequency.T,
        row_input=grid.col_input,
        col_input=grid.row_input,
        candidate=grid.candidate.T,
    )

    for iteration in range(max_iterations):
        iterations_run = iteration + 1
        row_bounds = _optimize_axis(
            grid, col_bounds, weight_fn, num_row_groups, tolerance, max_search_steps
        )
        col_bounds = _optimize_axis(
            transposed, row_bounds, weight_fn, num_col_groups, tolerance,
            max_search_steps,
        )
        coarse = _build_coarse_grid(grid, row_bounds, col_bounds)
        weight = coarse.max_cell_weight(weight_fn, candidates_only=True)
        if weight < best_weight - 1e-12:
            best_weight = weight
            best_grid = coarse
            best_bounds = (row_bounds, col_bounds)
        else:
            break

    return CoarseningResult(
        grid=best_grid,
        row_groups=np.asarray(best_bounds[0], dtype=np.int64),
        col_groups=np.asarray(best_bounds[1], dtype=np.int64),
        max_cell_weight=float(best_weight),
        iterations=iterations_run,
    )
