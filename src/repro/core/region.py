"""Rectangular regions in grid coordinates and in join-key space.

A *region* is the set of join-matrix cells assigned to one machine.  The
library keeps regions rectangular (axis-parallel), as the paper does, to
minimise storage and communication costs: a rectangular region is fully
described by a row range and a column range.

Two coordinate systems appear:

* :class:`GridRegion` -- inclusive index ranges over a
  :class:`~repro.core.grid.WeightedGrid` (the sample or coarsened matrix).
  All tiling algorithms work in these coordinates.
* :class:`KeyRegion` -- half-open join-key ranges over the two relations.
  The final partitioning that routes tuples is expressed in key space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["GridRegion", "KeyRegion"]


@dataclass(frozen=True, order=True)
class GridRegion:
    """An inclusive rectangle ``[row_lo..row_hi] x [col_lo..col_hi]`` of grid cells."""

    row_lo: int
    row_hi: int
    col_lo: int
    col_hi: int

    def __post_init__(self) -> None:
        if self.row_lo > self.row_hi or self.col_lo > self.col_hi:
            raise ValueError(f"degenerate region {self!r}")
        if min(self.row_lo, self.col_lo) < 0:
            raise ValueError(f"negative coordinates in {self!r}")

    @property
    def num_rows(self) -> int:
        """Number of grid rows the region spans."""
        return self.row_hi - self.row_lo + 1

    @property
    def num_cols(self) -> int:
        """Number of grid columns the region spans."""
        return self.col_hi - self.col_lo + 1

    @property
    def area(self) -> int:
        """Number of grid cells in the region."""
        return self.num_rows * self.num_cols

    @property
    def semi_perimeter(self) -> int:
        """Rows plus columns spanned -- the grid-level input metric."""
        return self.num_rows + self.num_cols

    def contains_cell(self, row: int, col: int) -> bool:
        """Whether grid cell ``(row, col)`` lies inside the region."""
        return self.row_lo <= row <= self.row_hi and self.col_lo <= col <= self.col_hi

    def intersects(self, other: "GridRegion") -> bool:
        """Whether two regions share at least one cell."""
        return not (
            other.row_lo > self.row_hi
            or other.row_hi < self.row_lo
            or other.col_lo > self.col_hi
            or other.col_hi < self.col_lo
        )

    def split_horizontal(self, after_row: int) -> tuple["GridRegion", "GridRegion"]:
        """Split into top/bottom sub-rectangles after grid row ``after_row``."""
        if not self.row_lo <= after_row < self.row_hi:
            raise ValueError(
                f"cannot split {self!r} horizontally after row {after_row}"
            )
        top = GridRegion(self.row_lo, after_row, self.col_lo, self.col_hi)
        bottom = GridRegion(after_row + 1, self.row_hi, self.col_lo, self.col_hi)
        return top, bottom

    def split_vertical(self, after_col: int) -> tuple["GridRegion", "GridRegion"]:
        """Split into left/right sub-rectangles after grid column ``after_col``."""
        if not self.col_lo <= after_col < self.col_hi:
            raise ValueError(
                f"cannot split {self!r} vertically after column {after_col}"
            )
        left = GridRegion(self.row_lo, self.row_hi, self.col_lo, after_col)
        right = GridRegion(self.row_lo, self.row_hi, after_col + 1, self.col_hi)
        return left, right


@dataclass(frozen=True)
class KeyRegion:
    """A rectangle in join-key space assigned to one machine.

    Row bounds refer to R1 join keys, column bounds to R2 join keys.  The
    ranges are half-open ``[lo, hi)`` except that ``hi = +inf`` (or
    ``lo = -inf``) closes the region on that side; the outermost regions of a
    partitioning always extend to infinity so that every tuple routes
    somewhere regardless of sampling error at the domain edges.
    """

    r1_lo: float
    r1_hi: float
    r2_lo: float
    r2_hi: float
    region_id: int = 0

    def __post_init__(self) -> None:
        if self.r1_lo > self.r1_hi or self.r2_lo > self.r2_hi:
            raise ValueError(f"degenerate key region {self!r}")

    def contains_r1_key(self, key: float) -> bool:
        """Whether an R1 tuple with ``key`` is routed to this region's row range."""
        if math.isinf(self.r1_hi):
            return key >= self.r1_lo
        return self.r1_lo <= key < self.r1_hi

    def contains_r2_key(self, key: float) -> bool:
        """Whether an R2 tuple with ``key`` is routed to this region's column range."""
        if math.isinf(self.r2_hi):
            return key >= self.r2_lo
        return self.r2_lo <= key < self.r2_hi
