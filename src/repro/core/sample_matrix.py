"""Stage 1 of the histogram algorithm: building the sample matrix MS.

MS is an ``n_s x n_s`` grid over the original join matrix whose purpose is to
preserve *region weights*: any rectangular region of MS has, with high
probability, almost the same weight as the corresponding region of the
original matrix.  Two ingredients achieve that:

* the **input distribution** is preserved by approximate equi-depth
  histograms with ``n_s`` buckets on each relation -- every grid row/column
  holds close to ``n / n_s`` tuples, so a region's input is (number of rows
  and columns on its semi-perimeter) x (expected bucket size);
* the **output distribution** is preserved by a uniform random sample of the
  join output (Stream-Sample): each sampled pair increments its cell, and a
  cell's output estimate is its share of the sample scaled by the exact
  output size ``m``.

``n_s = sqrt(2 n J)`` (Lemma 3.1) guarantees the maximum cell weight is at
most half the optimum maximum region weight, so coarsening and
regionalization never get stuck with an over-weight indivisible cell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.grid import WeightedGrid
from repro.joins.conditions import JoinCondition
from repro.sampling.equidepth import EquiDepthHistogram
from repro.sampling.stream_sample import JoinOutputSample

__all__ = [
    "SampleMatrix",
    "build_sample_matrix",
    "candidate_cell_count",
    "candidate_mask",
]


def candidate_mask(
    row_boundaries: np.ndarray,
    col_boundaries: np.ndarray,
    condition: JoinCondition,
) -> np.ndarray:
    """Candidate mask of the grid defined by the two boundary arrays.

    The outermost boundaries are treated as extending to +-infinity so that
    join keys beyond the sampled key range (which routing clamps into the
    first/last bucket) can never land in a cell wrongly marked
    non-candidate.
    """
    row_lo = row_boundaries[:-1].astype(np.float64).copy()
    row_hi = row_boundaries[1:].astype(np.float64).copy()
    col_lo = col_boundaries[:-1].astype(np.float64).copy()
    col_hi = col_boundaries[1:].astype(np.float64).copy()
    row_lo[0] = -math.inf
    row_hi[-1] = math.inf
    col_lo[0] = -math.inf
    col_hi[-1] = math.inf
    return condition.candidate_grid(row_lo, row_hi, col_lo, col_hi)


def candidate_cell_count(
    histogram1: EquiDepthHistogram,
    histogram2: EquiDepthHistogram,
    condition: JoinCondition,
) -> int:
    """Number of candidate cells of the MS grid implied by the two histograms.

    The output sample size is a small multiple of this count (paper,
    Appendix A1), so it is computed right after the input samples are
    collected and before any output sampling happens.
    """
    mask = candidate_mask(
        histogram1.boundaries, histogram2.boundaries, condition
    )
    return int(mask.sum())


@dataclass
class SampleMatrix:
    """The sample matrix MS plus everything needed to map it back to key space.

    Attributes
    ----------
    grid:
        The weighted grid (input per row/column, estimated output per cell,
        candidate mask).
    row_boundaries, col_boundaries:
        Key boundaries of the grid rows (R1) and columns (R2); arrays of
        length ``n_s + 1``.
    num_r1, num_r2:
        Sizes of the two input relations.
    total_output:
        The exact join output size ``m`` obtained from Stream-Sample.
    output_sample_size:
        Number of output pairs the frequencies were estimated from.
    """

    grid: WeightedGrid
    row_boundaries: np.ndarray
    col_boundaries: np.ndarray
    num_r1: int
    num_r2: int
    total_output: int
    output_sample_size: int

    @property
    def size(self) -> tuple[int, int]:
        """Grid dimensions ``(rows, cols)``."""
        return self.grid.shape

    def row_of_key(self, key: float) -> int:
        """Grid row of an R1 join key (clamped into the grid)."""
        idx = int(np.searchsorted(self.row_boundaries, key, side="right")) - 1
        return min(max(idx, 0), self.grid.num_rows - 1)

    def col_of_key(self, key: float) -> int:
        """Grid column of an R2 join key (clamped into the grid)."""
        idx = int(np.searchsorted(self.col_boundaries, key, side="right")) - 1
        return min(max(idx, 0), self.grid.num_cols - 1)

    def rows_of_keys(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`row_of_key`."""
        idx = np.searchsorted(self.row_boundaries, np.asarray(keys), side="right") - 1
        return np.clip(idx, 0, self.grid.num_rows - 1)

    def cols_of_keys(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`col_of_key`."""
        idx = np.searchsorted(self.col_boundaries, np.asarray(keys), side="right") - 1
        return np.clip(idx, 0, self.grid.num_cols - 1)


def build_sample_matrix(
    histogram1: EquiDepthHistogram,
    histogram2: EquiDepthHistogram,
    output_sample: JoinOutputSample,
    condition: JoinCondition,
) -> SampleMatrix:
    """Build MS from the per-relation histograms and the join-output sample.

    Parameters
    ----------
    histogram1, histogram2:
        Approximate equi-depth histograms with ``n_s`` buckets over R1 and R2
        join keys.
    output_sample:
        A uniform random sample of the join output together with the exact
        output size ``m`` (from Stream-Sample).
    condition:
        The monotonic join condition, used for the candidate mask.
    """
    row_boundaries = histogram1.boundaries
    col_boundaries = histogram2.boundaries
    num_rows = histogram1.num_buckets
    num_cols = histogram2.num_buckets

    candidate = candidate_mask(row_boundaries, col_boundaries, condition)

    frequency = np.zeros((num_rows, num_cols))
    sample_size = output_sample.size
    if sample_size > 0 and output_sample.total_output > 0:
        rows = np.clip(
            np.searchsorted(row_boundaries, output_sample.r1_keys, side="right") - 1,
            0, num_rows - 1,
        )
        cols = np.clip(
            np.searchsorted(col_boundaries, output_sample.r2_keys, side="right") - 1,
            0, num_cols - 1,
        )
        np.add.at(frequency, (rows, cols), 1.0)
        frequency *= output_sample.total_output / sample_size
        # Sampled pairs always satisfy the join, so their cells are genuine
        # candidates; make the mask consistent in the face of floating-point
        # boundary ties.
        candidate |= frequency > 0

    grid = WeightedGrid(
        frequency=frequency,
        row_input=np.full(num_rows, histogram1.expected_bucket_size),
        col_input=np.full(num_cols, histogram2.expected_bucket_size),
        candidate=candidate,
    )
    return SampleMatrix(
        grid=grid,
        row_boundaries=row_boundaries,
        col_boundaries=col_boundaries,
        num_r1=histogram1.num_tuples,
        num_r2=histogram2.num_tuples,
        total_output=output_sample.total_output,
        output_sample_size=sample_size,
    )
