"""The paper's primary contribution: the equi-weight histogram pipeline.

Modules, in the order the 3-stage histogram algorithm uses them:

* :mod:`repro.core.weights` -- the cost model ``w(r) = w_i*input + w_o*output``.
* :mod:`repro.core.grid` -- :class:`~repro.core.grid.WeightedGrid`, the
  shared representation of the sample matrix MS and the coarsened matrix MC
  (per-row/column input sizes, per-cell output frequencies, candidate mask,
  O(1) rectangle weights via prefix sums).
* :mod:`repro.core.matrix` -- the exact join-matrix model used for toy
  examples, ground truth in tests and the Figure 1 reproduction.
* :mod:`repro.core.region` -- rectangular regions and minimal candidate
  rectangles.
* :mod:`repro.core.sample_matrix` -- stage 1 (sampling): build MS from
  equi-depth histograms and the output sample.
* :mod:`repro.core.coarsening` -- stage 2 (coarsening): grid tiling of MS
  into MC, with the MonotonicCoarsening shortcut.
* :mod:`repro.core.bsp` / :mod:`repro.core.monotonic_bsp` -- the tiling
  algorithms used by stage 3.
* :mod:`repro.core.regionalization` -- stage 3: binary search over the
  region-weight threshold around a tiling algorithm.
* :mod:`repro.core.histogram` -- the end-to-end equi-weight histogram
  builder gluing the three stages together.
"""

from repro.core.bsp import bsp_partition
from repro.core.coarsening import CoarseningResult, coarsen
from repro.core.grid import WeightedGrid
from repro.core.histogram import EquiWeightHistogram, build_equi_weight_histogram
from repro.core.matrix import JoinMatrix
from repro.core.monotonic_bsp import enumerate_minimal_candidate_rectangles, monotonic_bsp_partition
from repro.core.region import GridRegion, KeyRegion
from repro.core.regionalization import RegionalizationResult, regionalize
from repro.core.sample_matrix import SampleMatrix, build_sample_matrix
from repro.core.validation import (
    GridCoverage,
    PartitioningValidation,
    validate_grid_regions,
    validate_partitioning,
)
from repro.core.weights import WeightFunction

__all__ = [
    "WeightFunction",
    "WeightedGrid",
    "JoinMatrix",
    "GridRegion",
    "KeyRegion",
    "SampleMatrix",
    "build_sample_matrix",
    "CoarseningResult",
    "coarsen",
    "bsp_partition",
    "monotonic_bsp_partition",
    "enumerate_minimal_candidate_rectangles",
    "RegionalizationResult",
    "regionalize",
    "EquiWeightHistogram",
    "build_equi_weight_histogram",
    "GridCoverage",
    "PartitioningValidation",
    "validate_grid_regions",
    "validate_partitioning",
]
