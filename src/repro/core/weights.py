"""The cost model: region weights as a function of input and output work.

The weight of a region (the work of the machine assigned to it) is

    w(r) = c_i(r) + c_o(r) = w_i * input(r) + w_o * output(r)

where ``input(r)`` is the region's semi-perimeter in tuples (tuples received
over the network, demarshalled and fed to the local join) and ``output(r)``
is the number of output tuples it produces (post-processing: writing or
shipping to the next operator).  ``w_i`` and ``w_o`` are per-tuple costs that
depend on the local join algorithm and the hardware; the paper obtains them
by linear regression over benchmark runs (``w_i = 1``, ``w_o = 0.2`` for
band-joins and ``w_o = 0.3`` for equi+band joins on their cluster).  See
:mod:`repro.engine.calibration` for the regression.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WeightFunction", "BAND_JOIN_WEIGHTS", "EQUI_BAND_JOIN_WEIGHTS"]


@dataclass(frozen=True)
class WeightFunction:
    """Linear cost model ``w = input_cost * input + output_cost * output``.

    Both coefficients must be non-negative and at least one must be positive;
    the model is monotonic and superadditive, as required by the paper's
    Lemma 3.1.
    """

    input_cost: float = 1.0
    output_cost: float = 1.0

    def __post_init__(self) -> None:
        if self.input_cost < 0 or self.output_cost < 0:
            raise ValueError("cost coefficients must be non-negative")
        if self.input_cost == 0 and self.output_cost == 0:
            raise ValueError("at least one cost coefficient must be positive")

    def weight(self, input_tuples: float, output_tuples: float) -> float:
        """Weight of a region with the given input and output sizes."""
        return self.input_cost * input_tuples + self.output_cost * output_tuples

    def __call__(self, input_tuples: float, output_tuples: float) -> float:
        return self.weight(input_tuples, output_tuples)

    def lower_bound_optimum(
        self, total_input: float, total_output: float, num_machines: int
    ) -> float:
        """Lower bound ``w_OPT`` on the optimum maximum region weight.

        Divides the total join work (assuming no input replication) equally
        among machines; used by the sampling stage to pick ``n_s`` and by the
        regionalization's binary search as the lower end of its range.
        """
        if num_machines <= 0:
            raise ValueError("num_machines must be positive")
        return self.weight(total_input, total_output) / num_machines


#: Coefficients the paper's regression found for pure band-joins.
BAND_JOIN_WEIGHTS = WeightFunction(input_cost=1.0, output_cost=0.2)

#: Coefficients the paper's regression found for combined equi/band-joins.
EQUI_BAND_JOIN_WEIGHTS = WeightFunction(input_cost=1.0, output_cost=0.3)
