"""Correctness validation of partitioning schemes.

A partitioning is *correct* when the union of its regions produces every join
output pair exactly once: no pair may be lost (a candidate cell not covered
by any region) and no pair may be produced twice (a candidate cell covered by
two regions).  The paper states this as the problem definition in section II:
every 1-cell of the join matrix is covered by exactly one region and every
0-cell by at most one.

Two validators are provided at different granularities:

* :func:`validate_grid_regions` checks the cell-coverage property directly on
  a :class:`~repro.core.grid.WeightedGrid` and a list of grid regions -- this
  is what the tiling algorithms must guarantee;
* :func:`validate_partitioning` checks the end-to-end routing of a
  :class:`~repro.partitioning.base.Partitioning` against the exact join: it
  executes the partitioned join at pair granularity and compares the multiset
  of produced pairs against the reference join.  It is exact but materialises
  output pairs, so it is meant for test- and example-scale inputs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.grid import WeightedGrid
from repro.core.region import GridRegion
from repro.joins.conditions import JoinCondition
from repro.joins.local import count_join_output, join_output_pairs
from repro.partitioning.base import Partitioning

__all__ = [
    "GridCoverage",
    "PartitioningValidation",
    "validate_grid_regions",
    "validate_partitioning",
]


@dataclass
class GridCoverage:
    """Result of checking region coverage over a weighted grid.

    Attributes
    ----------
    uncovered_candidates:
        Candidate cells not covered by any region.
    multiply_covered:
        Cells (candidate or not) covered by more than one region.
    out_of_bounds:
        Regions whose coordinates exceed the grid.
    """

    uncovered_candidates: list[tuple[int, int]] = field(default_factory=list)
    multiply_covered: list[tuple[int, int]] = field(default_factory=list)
    out_of_bounds: list[GridRegion] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        """Whether the regions form a valid cover of the candidate cells."""
        return (
            not self.uncovered_candidates
            and not self.multiply_covered
            and not self.out_of_bounds
        )

    def summary(self) -> str:
        """One-line human readable summary."""
        if self.is_valid:
            return "valid cover"
        return (
            f"{len(self.uncovered_candidates)} uncovered candidate cell(s), "
            f"{len(self.multiply_covered)} multiply covered cell(s), "
            f"{len(self.out_of_bounds)} out-of-bounds region(s)"
        )


def validate_grid_regions(
    grid: WeightedGrid, regions: list[GridRegion]
) -> GridCoverage:
    """Check that ``regions`` cover every candidate cell of ``grid`` exactly once.

    Non-candidate cells may be covered at most once (rectangular regions
    inevitably cover some of them) and never more.
    """
    coverage = np.zeros(grid.shape, dtype=np.int64)
    result = GridCoverage()
    for region in regions:
        if region.row_hi >= grid.num_rows or region.col_hi >= grid.num_cols:
            result.out_of_bounds.append(region)
            continue
        coverage[
            region.row_lo : region.row_hi + 1, region.col_lo : region.col_hi + 1
        ] += 1

    uncovered = grid.candidate & (coverage == 0)
    multiple = coverage > 1
    result.uncovered_candidates = [
        (int(r), int(c)) for r, c in zip(*np.nonzero(uncovered))
    ]
    result.multiply_covered = [
        (int(r), int(c)) for r, c in zip(*np.nonzero(multiple))
    ]
    return result


@dataclass
class PartitioningValidation:
    """Result of validating a partitioning's routing against the exact join.

    Attributes
    ----------
    expected_output:
        Exact join output size computed on the full inputs.
    produced_output:
        Total output produced across all regions.
    missing_pairs:
        Output pairs of the reference join no region produced.
    duplicate_pairs:
        Output pairs produced by more than one region (with multiplicities
        above their reference count).
    per_region_output:
        Output tuples produced by each region.
    """

    expected_output: int
    produced_output: int
    missing_pairs: list[tuple[float, float]] = field(default_factory=list)
    duplicate_pairs: list[tuple[float, float]] = field(default_factory=list)
    per_region_output: list[int] = field(default_factory=list)

    @property
    def is_complete(self) -> bool:
        """Whether every reference output pair was produced at least once."""
        return not self.missing_pairs

    @property
    def is_duplicate_free(self) -> bool:
        """Whether no output pair was produced more often than in the reference."""
        return not self.duplicate_pairs

    @property
    def is_correct(self) -> bool:
        """Complete and duplicate-free."""
        return self.is_complete and self.is_duplicate_free


#: Refuse exact pair-level validation above this output size.
_MAX_VALIDATED_OUTPUT = 5_000_000


def validate_partitioning(
    partitioning: Partitioning,
    keys1: np.ndarray,
    keys2: np.ndarray,
    condition: JoinCondition,
    rng: np.random.Generator | None = None,
) -> PartitioningValidation:
    """Validate a partitioning's routing by comparing pair multisets.

    Every region's local join is materialised and the multiset union of the
    per-region outputs is compared against the reference join of the full
    inputs.  Intended for test/example scale: the function refuses reference
    outputs above a few million pairs.
    """
    rng = rng or np.random.default_rng(0)
    keys1 = np.asarray(keys1, dtype=np.float64)
    keys2 = np.asarray(keys2, dtype=np.float64)

    expected_count = count_join_output(keys1, keys2, condition)
    if expected_count > _MAX_VALIDATED_OUTPUT:
        raise ValueError(
            f"exact validation refuses joins with more than "
            f"{_MAX_VALIDATED_OUTPUT} output pairs (got {expected_count}); "
            "use the simulator's count-based correctness check instead"
        )
    reference = Counter(join_output_pairs(keys1, keys2, condition))

    assignments1 = partitioning.assign_r1(keys1, rng)
    assignments2 = partitioning.assign_r2(keys2, rng)

    produced: Counter = Counter()
    per_region_output: list[int] = []
    for idx1, idx2 in zip(assignments1, assignments2):
        if len(idx1) == 0 or len(idx2) == 0:
            per_region_output.append(0)
            continue
        pairs = join_output_pairs(keys1[idx1], keys2[idx2], condition)
        per_region_output.append(len(pairs))
        produced.update(pairs)

    missing = sorted((reference - produced).elements())
    duplicates = sorted((produced - reference).elements())
    return PartitioningValidation(
        expected_output=expected_count,
        produced_output=sum(produced.values()),
        missing_pairs=list(missing),
        duplicate_pairs=list(duplicates),
        per_region_output=per_region_output,
    )
