"""The exact join-matrix model.

The join between R1 and R2 is modelled as a matrix with one row per R1 tuple
and one column per R2 tuple (both sorted by join key); cell ``(i, j)`` is 1
iff the corresponding tuples satisfy the join condition.  The histogram
algorithm never materialises this matrix for real workloads -- it would *be*
the join result -- but the model is exactly what the toy example of Figure 1
shows, what the tests use as ground truth, and what the tiling algorithms are
validated against at small scale.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid import WeightedGrid
from repro.core.region import GridRegion
from repro.joins.conditions import JoinCondition

__all__ = ["JoinMatrix"]

#: Refuse to materialise matrices above this cell count; the model is for
#: toy/test scale only.
_MAX_CELLS = 25_000_000


class JoinMatrix:
    """Exact join matrix over two small relations.

    Parameters
    ----------
    keys1, keys2:
        Join keys of R1 (rows) and R2 (columns).  They are sorted internally,
        matching the figures in the paper where rows/columns appear in key
        order.
    condition:
        The monotonic join condition.
    """

    def __init__(
        self, keys1: np.ndarray, keys2: np.ndarray, condition: JoinCondition
    ) -> None:
        self.keys1 = np.sort(np.asarray(keys1, dtype=np.float64))
        self.keys2 = np.sort(np.asarray(keys2, dtype=np.float64))
        self.condition = condition
        cells = len(self.keys1) * len(self.keys2)
        if cells > _MAX_CELLS:
            raise ValueError(
                f"JoinMatrix would materialise {cells} cells; it is meant for "
                "toy/test scale only -- use the sampling pipeline instead"
            )
        # Vectorised pairwise evaluation: broadcast rows against columns.
        lows, highs = condition.joinable_bounds(self.keys1)
        self.cells = (self.keys2[None, :] >= lows[:, None]) & (
            self.keys2[None, :] <= highs[:, None]
        )

    # ------------------------------------------------------------------
    # Shape and totals
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of rows (R1 tuples)."""
        return len(self.keys1)

    @property
    def num_cols(self) -> int:
        """Number of columns (R2 tuples)."""
        return len(self.keys2)

    @property
    def total_output(self) -> int:
        """Exact join output size (number of 1-cells)."""
        return int(self.cells.sum())

    @property
    def total_input(self) -> int:
        """Total input tuples (rows plus columns)."""
        return self.num_rows + self.num_cols

    # ------------------------------------------------------------------
    # Region metrics (exact)
    # ------------------------------------------------------------------
    def region_input(self, region: GridRegion) -> int:
        """Semi-perimeter of ``region`` in tuples."""
        return region.num_rows + region.num_cols

    def region_output(self, region: GridRegion) -> int:
        """Exact number of output tuples inside ``region``."""
        block = self.cells[
            region.row_lo : region.row_hi + 1, region.col_lo : region.col_hi + 1
        ]
        return int(block.sum())

    def is_monotonic(self) -> bool:
        """Whether the candidate (here: output) structure is monotonic."""
        return self.to_weighted_grid().is_monotonic()

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_weighted_grid(self) -> WeightedGrid:
        """View the exact matrix as a :class:`WeightedGrid` at tuple granularity.

        Every row/column holds exactly one input tuple; cell frequency equals
        the 0/1 matrix entry and the candidate mask coincides with it.
        """
        return WeightedGrid(
            frequency=self.cells.astype(np.float64),
            row_input=np.ones(self.num_rows),
            col_input=np.ones(self.num_cols),
            candidate=self.cells.copy(),
        )

    def candidate_grid(
        self, row_boundaries: np.ndarray, col_boundaries: np.ndarray
    ) -> np.ndarray:
        """Candidate mask of a coarse grid laid over the matrix.

        ``row_boundaries`` / ``col_boundaries`` are ascending key boundary
        arrays (length ``p + 1``).  Grid cell ``(i, j)`` is a candidate iff
        the key ranges of bucket i (R1) and bucket j (R2) can satisfy the
        join condition -- the O(1) boundary check the M-Bucket scheme uses.
        """
        row_boundaries = np.asarray(row_boundaries, dtype=np.float64)
        col_boundaries = np.asarray(col_boundaries, dtype=np.float64)
        p_rows = len(row_boundaries) - 1
        p_cols = len(col_boundaries) - 1
        mask = np.zeros((p_rows, p_cols), dtype=bool)
        for i in range(p_rows):
            for j in range(p_cols):
                mask[i, j] = self.condition.cell_is_candidate(
                    row_boundaries[i],
                    row_boundaries[i + 1],
                    col_boundaries[j],
                    col_boundaries[j + 1],
                )
        return mask
