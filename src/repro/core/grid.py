"""The weighted grid shared by the sample matrix MS and the coarsened matrix MC.

A :class:`WeightedGrid` describes a coarse view of the join matrix at some
granularity: each grid row corresponds to a contiguous range of R1 join keys
holding ``row_input[i]`` tuples, each grid column to a range of R2 join keys
holding ``col_input[j]`` tuples, and each cell carries the (estimated) number
of join output tuples ``frequency[i, j]`` plus a boolean candidate flag.

The weight of a rectangle ``[r1..r2] x [c1..c2]`` under a
:class:`~repro.core.weights.WeightFunction` is

    w = w_i * (sum(row_input[r1..r2]) + sum(col_input[c1..c2]))
        + w_o * sum(frequency[r1..r2, c1..c2])

and is evaluated in O(1) from prefix sums.  For monotonic joins the candidate
cells of every row form one contiguous run; the grid precomputes those runs so
minimal candidate rectangles can be found in O(log) time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.region import GridRegion
from repro.core.weights import WeightFunction

__all__ = ["WeightedGrid"]


@dataclass
class WeightedGrid:
    """A grid of output frequencies plus per-row/column input sizes.

    Parameters
    ----------
    frequency:
        ``(num_rows, num_cols)`` array of estimated output tuples per cell.
    row_input, col_input:
        Input tuples falling in each grid row (R1 side) / column (R2 side).
    candidate:
        Boolean mask of cells that may produce output.  Non-candidate cells
        contribute zero weight and are never required to be covered.
    """

    frequency: np.ndarray
    row_input: np.ndarray
    col_input: np.ndarray
    candidate: np.ndarray

    # Derived structures (built in __post_init__).
    _freq_prefix: np.ndarray = field(init=False, repr=False)
    _row_prefix: np.ndarray = field(init=False, repr=False)
    _col_prefix: np.ndarray = field(init=False, repr=False)
    _cand_prefix: np.ndarray = field(init=False, repr=False)
    _row_cand_lo: np.ndarray = field(init=False, repr=False)
    _row_cand_hi: np.ndarray = field(init=False, repr=False)
    _minimal_rect_cache: dict = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.frequency = np.asarray(self.frequency, dtype=np.float64)
        self.row_input = np.asarray(self.row_input, dtype=np.float64)
        self.col_input = np.asarray(self.col_input, dtype=np.float64)
        self.candidate = np.asarray(self.candidate, dtype=bool)
        rows, cols = self.frequency.shape
        if self.candidate.shape != (rows, cols):
            raise ValueError("candidate mask shape must match frequency shape")
        if len(self.row_input) != rows or len(self.col_input) != cols:
            raise ValueError("row_input/col_input lengths must match the grid shape")
        if np.any(self.frequency < 0):
            raise ValueError("frequencies must be non-negative")
        if np.any(self.frequency[~self.candidate] > 0):
            raise ValueError("non-candidate cells cannot carry output frequency")

        # 2-D prefix sums with a zero border for O(1) rectangle sums.
        self._freq_prefix = np.zeros((rows + 1, cols + 1))
        self._freq_prefix[1:, 1:] = np.cumsum(np.cumsum(self.frequency, axis=0), axis=1)
        self._cand_prefix = np.zeros((rows + 1, cols + 1))
        self._cand_prefix[1:, 1:] = np.cumsum(
            np.cumsum(self.candidate.astype(np.float64), axis=0), axis=1
        )
        self._row_prefix = np.concatenate([[0.0], np.cumsum(self.row_input)])
        self._col_prefix = np.concatenate([[0.0], np.cumsum(self.col_input)])

        # Per-row contiguous candidate runs (first and last candidate column,
        # or -1 when the row has none).
        self._row_cand_lo = np.full(rows, -1, dtype=np.int64)
        self._row_cand_hi = np.full(rows, -1, dtype=np.int64)
        any_cand = self.candidate.any(axis=1)
        if any_cand.any():
            self._row_cand_lo[any_cand] = np.argmax(self.candidate[any_cand], axis=1)
            reversed_cand = self.candidate[:, ::-1]
            self._row_cand_hi[any_cand] = (
                cols - 1 - np.argmax(reversed_cand[any_cand], axis=1)
            )
        # Minimal-candidate-rectangle queries recur heavily inside the tiling
        # algorithms (the same half-rectangles reappear across the binary
        # search over the weight threshold); cache them per grid instance.
        self._minimal_rect_cache = {}

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of grid rows."""
        return self.frequency.shape[0]

    @property
    def num_cols(self) -> int:
        """Number of grid columns."""
        return self.frequency.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        """``(num_rows, num_cols)``."""
        return self.frequency.shape

    @property
    def total_input(self) -> float:
        """Total input tuples represented by the grid (both relations)."""
        return float(self._row_prefix[-1] + self._col_prefix[-1])

    @property
    def total_output(self) -> float:
        """Total (estimated) output tuples."""
        return float(self._freq_prefix[-1, -1])

    @property
    def num_candidate_cells(self) -> int:
        """Number of candidate cells in the grid."""
        return int(self._cand_prefix[-1, -1])

    # ------------------------------------------------------------------
    # Rectangle metrics
    # ------------------------------------------------------------------
    def region_output(self, region: GridRegion) -> float:
        """Estimated output tuples inside ``region``."""
        p = self._freq_prefix
        return float(
            p[region.row_hi + 1, region.col_hi + 1]
            - p[region.row_lo, region.col_hi + 1]
            - p[region.row_hi + 1, region.col_lo]
            + p[region.row_lo, region.col_lo]
        )

    def region_input(self, region: GridRegion) -> float:
        """Input tuples on the semi-perimeter of ``region`` (rows + columns)."""
        rows = self._row_prefix[region.row_hi + 1] - self._row_prefix[region.row_lo]
        cols = self._col_prefix[region.col_hi + 1] - self._col_prefix[region.col_lo]
        return float(rows + cols)

    def region_weight(self, region: GridRegion, weight_fn: WeightFunction) -> float:
        """Weight of ``region`` under ``weight_fn``."""
        return weight_fn.weight(self.region_input(region), self.region_output(region))

    def candidate_count(self, region: GridRegion) -> int:
        """Number of candidate cells inside ``region``."""
        p = self._cand_prefix
        return int(
            p[region.row_hi + 1, region.col_hi + 1]
            - p[region.row_lo, region.col_hi + 1]
            - p[region.row_hi + 1, region.col_lo]
            + p[region.row_lo, region.col_lo]
        )

    def cell_weight(self, row: int, col: int, weight_fn: WeightFunction) -> float:
        """Weight of the single cell ``(row, col)``."""
        return self.region_weight(GridRegion(row, row, col, col), weight_fn)

    def max_cell_weight(self, weight_fn: WeightFunction,
                        candidates_only: bool = False) -> float:
        """Maximum single-cell weight, optionally restricted to candidate cells."""
        cell_weights = (
            weight_fn.input_cost
            * (self.row_input[:, None] + self.col_input[None, :])
            + weight_fn.output_cost * self.frequency
        )
        if candidates_only:
            if not self.candidate.any():
                return 0.0
            return float(cell_weights[self.candidate].max())
        return float(cell_weights.max())

    # ------------------------------------------------------------------
    # Candidate structure / monotonicity
    # ------------------------------------------------------------------
    def row_candidate_span(self, row: int) -> tuple[int, int] | None:
        """Inclusive column span of candidate cells in ``row`` (None if empty)."""
        lo = int(self._row_cand_lo[row])
        if lo < 0:
            return None
        return lo, int(self._row_cand_hi[row])

    def candidate_rows(self) -> np.ndarray:
        """Indexes of rows containing at least one candidate cell."""
        return np.flatnonzero(self._row_cand_lo >= 0)

    def is_monotonic(self) -> bool:
        """Check the paper's monotonicity property of the candidate mask.

        Candidate cells must be contiguous in every row and every column, and
        the per-row candidate spans must shift in one consistent direction.
        """
        for axis_candidate in (self.candidate, self.candidate.T):
            for row in axis_candidate:
                idx = np.flatnonzero(row)
                if len(idx) and (idx[-1] - idx[0] + 1) != len(idx):
                    return False
        rows = self.candidate_rows()
        if len(rows) <= 1:
            return True
        los = self._row_cand_lo[rows]
        his = self._row_cand_hi[rows]
        non_decreasing = bool(np.all(np.diff(los) >= 0) and np.all(np.diff(his) >= 0))
        non_increasing = bool(np.all(np.diff(los) <= 0) and np.all(np.diff(his) <= 0))
        return non_decreasing or non_increasing

    def minimal_candidate_rectangle(self, region: GridRegion) -> GridRegion | None:
        """Shrink ``region`` to the smallest rectangle containing its candidate cells.

        Returns ``None`` when the region contains no candidate cell.  Runs in
        time linear in the region's row span (the per-row candidate spans are
        precomputed) and caches results, as the tiling algorithms ask for the
        same rectangles repeatedly.
        """
        key = (region.row_lo, region.row_hi, region.col_lo, region.col_hi)
        if key in self._minimal_rect_cache:
            return self._minimal_rect_cache[key]
        lo = self._row_cand_lo[region.row_lo : region.row_hi + 1]
        hi = self._row_cand_hi[region.row_lo : region.row_hi + 1]
        clipped_lo = np.maximum(lo, region.col_lo)
        clipped_hi = np.minimum(hi, region.col_hi)
        valid = (lo >= 0) & (clipped_lo <= clipped_hi)
        if not valid.any():
            self._minimal_rect_cache[key] = None
            return None
        valid_idx = np.flatnonzero(valid)
        result = GridRegion(
            row_lo=region.row_lo + int(valid_idx[0]),
            row_hi=region.row_lo + int(valid_idx[-1]),
            col_lo=int(clipped_lo[valid].min()),
            col_hi=int(clipped_hi[valid].max()),
        )
        self._minimal_rect_cache[key] = result
        return result

    def full_region(self) -> GridRegion:
        """The region covering the whole grid."""
        return GridRegion(0, self.num_rows - 1, 0, self.num_cols - 1)
