"""Binary Space Partition (BSP) -- the baseline tiling algorithm.

BSP (Berman, DasGupta & Muthukrishnan) is a dynamic-programming algorithm
that, given a maximum region weight ``delta``, covers all candidate cells of
a weighted grid with the minimum number of rectangular regions obtainable by
*hierarchical* partitioning (recursively splitting rectangles with full
horizontal or vertical cuts).  The optimum hierarchical partitioning is
within a factor of 2 of the optimum arbitrary rectangular partitioning.

This module implements the paper's Algorithm 1: the classic bottom-up DP
over *all* rectangles of the grid, extended for join load balancing by
shrinking every rectangle to its *minimal candidate rectangle* before
weighing or splitting it (non-candidate cells never need to be assigned to a
machine).  The DP table is indexed by arbitrary rectangles, which is exactly
why the baseline costs O(n_c^4) space and O(n_c^5) time (Table III) -- the
join-specialised :mod:`repro.core.monotonic_bsp` removes that blow-up and is
the algorithm the production pipeline uses.  Because of its cost, this
baseline refuses grids beyond a configurable size and exists for validation
and for the Table III comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.grid import WeightedGrid
from repro.core.region import GridRegion
from repro.core.weights import WeightFunction

__all__ = ["BSPResult", "bsp_partition"]

#: Default refusal threshold on the grid side length for the baseline DP.
DEFAULT_MAX_GRID_SIZE = 28


@dataclass
class BSPResult:
    """Result of one tiling run at a fixed weight threshold ``delta``.

    Attributes
    ----------
    regions:
        The covering regions (each shrunk to its minimal candidate
        rectangle).  Empty when the grid has no candidate cells.
    max_region_weight:
        The largest region weight actually achieved (it can exceed ``delta``
        only when a single cell already exceeds it).
    rectangles_evaluated:
        Number of rectangles the dynamic program evaluated; used by the
        Table III complexity benchmark.
    """

    regions: list[GridRegion]
    max_region_weight: float
    rectangles_evaluated: int

    @property
    def num_regions(self) -> int:
        """Number of regions in the partitioning."""
        return len(self.regions)


def bsp_partition(
    grid: WeightedGrid,
    weight_fn: WeightFunction,
    delta: float,
    max_grid_size: int = DEFAULT_MAX_GRID_SIZE,
) -> BSPResult:
    """Cover all candidate cells of ``grid`` with regions of weight <= ``delta``.

    Returns a minimum-cardinality hierarchical partitioning.  Single cells
    whose weight exceeds ``delta`` are covered by a one-cell region (they
    cannot be split further); callers performing a binary search over
    ``delta`` should start at the maximum candidate-cell weight so this case
    never arises.

    Raises
    ------
    ValueError
        If the grid's larger dimension exceeds ``max_grid_size`` (the
        baseline is O(size^5); use MonotonicBSP instead).
    """
    rows, cols = grid.shape
    if max(rows, cols) > max_grid_size:
        raise ValueError(
            f"baseline BSP refuses grids larger than {max_grid_size} per side "
            f"(got {rows}x{cols}); use monotonic_bsp_partition instead"
        )

    # DP over all rectangles, processed in increasing semi-perimeter order so
    # the halves of any split are already solved.  A rectangle is keyed by
    # (row_lo, row_hi, col_lo, col_hi).
    counts: dict[tuple[int, int, int, int], int] = {}
    plans: dict[tuple[int, int, int, int], object] = {}

    def key(region: GridRegion) -> tuple[int, int, int, int]:
        return (region.row_lo, region.row_hi, region.col_lo, region.col_hi)

    rectangles: list[GridRegion] = [
        GridRegion(r1, r2, c1, c2)
        for r1 in range(rows)
        for r2 in range(r1, rows)
        for c1 in range(cols)
        for c2 in range(c1, cols)
    ]
    rectangles.sort(key=lambda r: (r.semi_perimeter, r.num_rows))

    for rect in rectangles:
        minimal = grid.minimal_candidate_rectangle(rect)
        if minimal is None:
            counts[key(rect)] = 0
            plans[key(rect)] = None
            continue
        if minimal != rect:
            # Defer to the minimal candidate rectangle, which has a smaller
            # (or equal) semi-perimeter and is therefore already solved.
            counts[key(rect)] = counts[key(minimal)]
            plans[key(rect)] = ("shrink", minimal)
            continue
        weight = grid.region_weight(rect, weight_fn)
        if weight <= delta or (rect.num_rows == 1 and rect.num_cols == 1):
            counts[key(rect)] = 1
            plans[key(rect)] = None
            continue
        best_count = None
        best_plan = None
        for after_row in range(rect.row_lo, rect.row_hi):
            top, bottom = rect.split_horizontal(after_row)
            total = counts[key(top)] + counts[key(bottom)]
            if best_count is None or total < best_count:
                best_count, best_plan = total, ("split", top, bottom)
        for after_col in range(rect.col_lo, rect.col_hi):
            left, right = rect.split_vertical(after_col)
            total = counts[key(left)] + counts[key(right)]
            if best_count is None or total < best_count:
                best_count, best_plan = total, ("split", left, right)
        counts[key(rect)] = best_count
        plans[key(rect)] = best_plan

    root = grid.minimal_candidate_rectangle(grid.full_region())
    if root is None:
        return BSPResult(regions=[], max_region_weight=0.0, rectangles_evaluated=len(rectangles))

    regions = _extract_regions(root, plans, grid)
    max_weight = max(
        (grid.region_weight(r, weight_fn) for r in regions), default=0.0
    )
    return BSPResult(
        regions=regions,
        max_region_weight=float(max_weight),
        rectangles_evaluated=len(rectangles),
    )


def _extract_regions(
    root: GridRegion, plans: dict, grid: WeightedGrid
) -> list[GridRegion]:
    """Follow the recorded split plans from ``root`` and collect leaf regions."""
    regions: list[GridRegion] = []
    stack = [root]
    while stack:
        rect = stack.pop()
        plan = plans[(rect.row_lo, rect.row_hi, rect.col_lo, rect.col_hi)]
        if plan is None:
            minimal = grid.minimal_candidate_rectangle(rect)
            if minimal is not None:
                regions.append(minimal)
            continue
        if plan[0] == "shrink":
            stack.append(plan[1])
        else:
            stack.append(plan[1])
            stack.append(plan[2])
    return regions
