"""Stage 3 of the histogram algorithm: regionalization.

The tiling algorithms (BSP / MonotonicBSP) solve the *dual* problem: given a
maximum region weight ``delta``, minimise the number of regions.  The
histogram needs the primal: given J machines, minimise the maximum region
weight.  Regionalization therefore binary-searches over ``delta`` until the
tiling returns at most J regions, starting from the natural lower bound

    max( w_OPT lower bound, maximum candidate-cell weight )

(no partitioning can beat either) and the trivial upper bound of covering
everything with a single region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal

from repro.core.bsp import BSPResult, bsp_partition
from repro.core.grid import WeightedGrid
from repro.core.monotonic_bsp import monotonic_bsp_partition
from repro.core.region import GridRegion
from repro.core.weights import WeightFunction

__all__ = ["RegionalizationResult", "regionalize"]

TilingAlgorithm = Literal["monotonic_bsp", "bsp"]


@dataclass
class RegionalizationResult:
    """Output of the regionalization stage.

    Attributes
    ----------
    regions:
        At most J rectangular regions covering every candidate cell of the
        input grid.
    delta:
        The weight threshold the binary search settled on.
    max_region_weight:
        The largest region weight actually achieved (the scheme's estimate of
        the busiest machine's work -- ``CSIO-est`` in Figure 4h).
    search_steps:
        Number of tiling invocations performed by the binary search.
    """

    regions: list[GridRegion]
    delta: float
    max_region_weight: float
    search_steps: int

    @property
    def num_regions(self) -> int:
        """Number of regions produced."""
        return len(self.regions)


def regionalize(
    grid: WeightedGrid,
    num_machines: int,
    weight_fn: WeightFunction,
    algorithm: TilingAlgorithm = "monotonic_bsp",
    tolerance: float = 0.01,
    max_search_steps: int = 30,
) -> RegionalizationResult:
    """Partition the grid's candidate cells into at most ``num_machines`` regions.

    Parameters
    ----------
    grid:
        The coarsened matrix MC (any :class:`WeightedGrid` works).
    num_machines:
        ``J``, the number of regions allowed.
    weight_fn:
        Cost model used for region weights.
    algorithm:
        ``"monotonic_bsp"`` (default, requires a monotonic candidate
        structure) or ``"bsp"`` (the baseline; only for small grids).
    tolerance:
        Relative gap between the feasible and infeasible threshold at which
        the binary search stops.
    max_search_steps:
        Hard cap on tiling invocations.
    """
    if num_machines <= 0:
        raise ValueError("num_machines must be positive")
    tiling: Callable[[WeightedGrid, WeightFunction, float], BSPResult]
    if algorithm == "monotonic_bsp":
        tiling = monotonic_bsp_partition
    elif algorithm == "bsp":
        tiling = bsp_partition
    else:
        raise ValueError(f"unknown tiling algorithm {algorithm!r}")

    if grid.num_candidate_cells == 0:
        return RegionalizationResult(
            regions=[], delta=0.0, max_region_weight=0.0, search_steps=0
        )

    total_weight = weight_fn.weight(grid.total_input, grid.total_output)
    lower = max(
        grid.max_cell_weight(weight_fn, candidates_only=True),
        total_weight / num_machines,
    )
    root = grid.minimal_candidate_rectangle(grid.full_region())
    upper = grid.region_weight(root, weight_fn)
    upper = max(upper, lower)

    steps = 0

    # The lower bound may already be feasible (perfectly balanced case).
    result = tiling(grid, weight_fn, lower)
    steps += 1
    if result.num_regions <= num_machines:
        return RegionalizationResult(
            regions=result.regions,
            delta=lower,
            max_region_weight=result.max_region_weight,
            search_steps=steps,
        )

    best = tiling(grid, weight_fn, upper)
    steps += 1
    best_delta = upper
    while steps < max_search_steps and upper - lower > tolerance * max(upper, 1.0):
        mid = (lower + upper) / 2.0
        candidate = tiling(grid, weight_fn, mid)
        steps += 1
        if candidate.num_regions <= num_machines:
            upper = mid
            best = candidate
            best_delta = mid
        else:
            lower = mid

    return RegionalizationResult(
        regions=best.regions,
        delta=best_delta,
        max_region_weight=best.max_region_weight,
        search_steps=steps,
    )
