"""MonotonicBSP -- the join-specialised tiling algorithm (paper, Algorithm 2).

The baseline BSP enumerates arbitrary sub-rectangles of the coarsened matrix,
which costs O(n_c^4) space and O(n_c^5) time.  For *monotonic* joins only a
tiny fraction of those rectangles can ever matter: by Lemma 3.4 every
defining corner (upper-left and lower-right) of a minimal candidate rectangle
is itself a candidate cell, so there are only O(n_cc^2) = O(n_c^2) minimal
candidate rectangles.  MonotonicBSP runs the same dynamic program restricted
to minimal candidate rectangles:

* :func:`enumerate_minimal_candidate_rectangles` lists them exactly as
  Algorithm 2's ``GenerateCandidateRectangles`` does (every ordered pair of
  candidate cells), which the tests use to validate Lemma 3.4;
* :func:`monotonic_bsp_partition` evaluates the DP over those rectangles.
  The paper processes them bottom-up in increasing semi-perimeter order;
  this implementation computes the identical DP values lazily (memoised
  top-down from the full matrix's minimal candidate rectangle), which visits
  only the rectangles actually reachable by hierarchical splits -- a subset
  of the enumerated set -- and therefore never does more work than the
  bottom-up pass while returning the same optimum.

Every split half is shrunk to its minimal candidate rectangle using the
precomputed per-row candidate spans of :class:`~repro.core.grid.WeightedGrid`
(vectorised, linear in the half's row span), matching the paper's
``MinimalCandidateRectangle`` primitive.
"""

from __future__ import annotations

import sys

from repro.core.bsp import BSPResult
from repro.core.grid import WeightedGrid
from repro.core.region import GridRegion
from repro.core.weights import WeightFunction

__all__ = ["enumerate_minimal_candidate_rectangles", "monotonic_bsp_partition"]


def enumerate_minimal_candidate_rectangles(grid: WeightedGrid) -> list[GridRegion]:
    """Enumerate every rectangle whose defining corners are candidate cells.

    This mirrors ``GenerateCandidateRectangles`` of Algorithm 2: for each
    ordered pair of candidate cells (one acting as the upper-left corner, the
    other as the lower-right), emit the rectangle they define, sorted by
    semi-perimeter.  By Lemma 3.4 this set contains all minimal candidate
    rectangles of a monotonic join matrix; its size is O(n_cc^2) where n_cc
    is the number of candidate cells.
    """
    rectangles: list[GridRegion] = []
    candidate_rows = grid.candidate_rows()
    spans = {int(r): grid.row_candidate_span(int(r)) for r in candidate_rows}
    for r1 in candidate_rows:
        lo1, hi1 = spans[int(r1)]
        for c1 in range(lo1, hi1 + 1):
            if not grid.candidate[r1, c1]:
                continue
            for r2 in candidate_rows:
                if r2 < r1:
                    continue
                lo2, hi2 = spans[int(r2)]
                for c2 in range(lo2, hi2 + 1):
                    if c2 < c1 or not grid.candidate[r2, c2]:
                        continue
                    rectangles.append(GridRegion(int(r1), int(r2), int(c1), int(c2)))
    rectangles.sort(key=lambda r: r.semi_perimeter)
    return rectangles


def monotonic_bsp_partition(
    grid: WeightedGrid,
    weight_fn: WeightFunction,
    delta: float,
) -> BSPResult:
    """Cover all candidate cells with regions of weight <= ``delta`` (MonotonicBSP).

    Semantics are identical to :func:`repro.core.bsp.bsp_partition` -- the
    optimum hierarchical partitioning when every rectangle is first shrunk to
    its minimal candidate rectangle -- but the search space is restricted to
    minimal candidate rectangles, which is what makes the regionalization
    stage run in O(n) overall for monotonic joins (Lemma 3.5).
    """
    memo: dict[GridRegion, tuple[int, object]] = {}

    def solve_half_pair(first: GridRegion, second: GridRegion):
        """Shrink both halves of a split and solve them."""
        first_min = grid.minimal_candidate_rectangle(first)
        second_min = grid.minimal_candidate_rectangle(second)
        count = 0
        if first_min is not None:
            count += solve(first_min)[0]
        if second_min is not None:
            count += solve(second_min)[0]
        return count, (first_min, second_min)

    def solve(region: GridRegion) -> tuple[int, object]:
        cached = memo.get(region)
        if cached is not None:
            return cached
        weight = grid.region_weight(region, weight_fn)
        if weight <= delta or (region.num_rows == 1 and region.num_cols == 1):
            result: tuple[int, object] = (1, None)
            memo[region] = result
            return result
        best_count = None
        best_plan = None
        # A split of a minimal candidate rectangle always leaves candidates
        # on both sides (its boundary rows/columns contain candidates), so
        # no split can cost fewer than two regions -- stop early when found.
        for after_row in range(region.row_lo, region.row_hi):
            top, bottom = region.split_horizontal(after_row)
            count, plan = solve_half_pair(top, bottom)
            if best_count is None or count < best_count:
                best_count, best_plan = count, plan
                if best_count == 2:
                    break
        if best_count != 2:
            for after_col in range(region.col_lo, region.col_hi):
                left, right = region.split_vertical(after_col)
                count, plan = solve_half_pair(left, right)
                if best_count is None or count < best_count:
                    best_count, best_plan = count, plan
                    if best_count == 2:
                        break
        result = (best_count, best_plan)
        memo[region] = result
        return result

    root = grid.minimal_candidate_rectangle(grid.full_region())
    if root is None:
        return BSPResult(regions=[], max_region_weight=0.0, rectangles_evaluated=0)

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10_000 + 4 * grid.num_rows * grid.num_cols))
    try:
        solve(root)
        regions = _extract_regions(root, memo)
    finally:
        sys.setrecursionlimit(old_limit)

    max_weight = max(
        (grid.region_weight(r, weight_fn) for r in regions), default=0.0
    )
    return BSPResult(
        regions=regions,
        max_region_weight=float(max_weight),
        rectangles_evaluated=len(memo),
    )


def _extract_regions(root: GridRegion, memo: dict) -> list[GridRegion]:
    """Walk the memoised split plans from ``root`` and collect leaf regions."""
    regions: list[GridRegion] = []
    stack = [root]
    while stack:
        region = stack.pop()
        _, plan = memo[region]
        if plan is None:
            regions.append(region)
            continue
        first_min, second_min = plan
        if first_min is not None:
            stack.append(first_min)
        if second_min is not None:
            stack.append(second_min)
    return regions
