"""The end-to-end equi-weight histogram builder (the paper's core contribution).

``build_equi_weight_histogram`` chains the three stages:

1. **Sampling** -- Bernoulli input samples feed approximate equi-depth
   histograms with ``n_s = sqrt(2 n J)`` buckets per relation; the parallel
   Stream-Sample produces a uniform join-output sample of size
   ``s_o = Theta(n_s)`` plus the exact output size ``m``; together they form
   the sample matrix MS.
2. **Coarsening** -- MS is tiled by a non-uniform ``n_c x n_c`` grid
   (``n_c = 2J``) minimising the maximum cell weight, yielding MC.
3. **Regionalization** -- MonotonicBSP plus a binary search over the weight
   threshold covers MC's candidate cells with at most J rectangular regions
   of near-equal weight.

The result maps back to join-key space: each region is a rectangle of key
ranges, and the estimated maximum region weight is the scheme's prediction of
the busiest machine's work (``CSIO-est`` in Figure 4h).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.coarsening import CoarseningResult, coarsen, coarsened_size
from repro.core.region import GridRegion, KeyRegion
from repro.core.regionalization import RegionalizationResult, regionalize
from repro.core.sample_matrix import (
    SampleMatrix,
    build_sample_matrix,
    candidate_cell_count,
)
from repro.core.weights import WeightFunction
from repro.joins.conditions import JoinCondition
from repro.obs.clock import perf_counter
from repro.sampling.equidepth import build_equidepth_histogram
from repro.sampling.parallel_stream_sample import (
    ParallelSampleStats,
    parallel_stream_sample,
)
from repro.sampling.sizes import (
    input_sample_size,
    output_sample_size,
    sample_matrix_size,
)

__all__ = ["EWHConfig", "EquiWeightHistogram", "build_equi_weight_histogram"]


@dataclass(frozen=True)
class EWHConfig:
    """Tuning knobs of the histogram algorithm.

    The defaults follow the paper; the caps exist because this reproduction
    runs the tiling algorithms in pure Python and very large sample or
    coarsened matrices make the build phase (not the join) the bottleneck.

    Parameters
    ----------
    sample_matrix_size:
        Override for ``n_s`` (default: the Lemma 3.1 formula).
    max_sample_matrix_size:
        Upper cap on ``n_s``.
    max_coarsened_size:
        Upper cap on ``n_c`` (default ``2J`` uncapped).
    adjust_for_output_ratio:
        Apply the Appendix A5 optimisation: once ``m`` is known, shrink
        ``n_s`` by ``sqrt(m/n)`` when the join produces more output than
        input.
    output_sample_multiple:
        ``s_o`` as a multiple of the number of candidate MS cells (the paper
        uses 2).
    coarsening_iterations:
        Alternating refinement passes of the coarsening stage.
    tiling_algorithm:
        ``"monotonic_bsp"`` (default) or ``"bsp"`` for the baseline.
    seed:
        Seed for the internal random generator when the caller does not
        provide one.
    """

    sample_matrix_size: int | None = None
    max_sample_matrix_size: int = 4096
    max_coarsened_size: int | None = None
    adjust_for_output_ratio: bool = True
    output_sample_multiple: float = 2.0
    coarsening_iterations: int = 4
    tiling_algorithm: str = "monotonic_bsp"
    seed: int = 2016


@dataclass
class EquiWeightHistogram:
    """The equi-weight histogram MH: the partitioning plus build artefacts.

    Attributes
    ----------
    key_regions:
        Final regions as rectangles in join-key space (row = R1 keys,
        column = R2 keys), at most J of them.
    grid_regions:
        The same regions in coarsened-matrix coordinates.
    mc_row_boundaries, mc_col_boundaries:
        Key boundaries of the coarsened matrix rows/columns (length
        ``n_c + 1``); together with ``grid_regions`` they define tuple
        routing.
    sample_matrix, coarsening, regionalization:
        Artefacts of the three stages.
    estimated_max_weight:
        The scheme's estimate of the maximum region weight (CSIO-est).
    total_output:
        Exact join output size ``m`` from Stream-Sample.
    sampling_stats:
        Per-worker accounting of the parallel statistics collection.
    stage_seconds:
        Wall-clock seconds spent in each stage
        (``sampling``/``coarsening``/``regionalization``).
    """

    key_regions: list[KeyRegion]
    grid_regions: list[GridRegion]
    mc_row_boundaries: np.ndarray
    mc_col_boundaries: np.ndarray
    sample_matrix: SampleMatrix
    coarsening: CoarseningResult
    regionalization: RegionalizationResult
    estimated_max_weight: float
    total_output: int
    weight_fn: WeightFunction
    sampling_stats: ParallelSampleStats = field(default_factory=ParallelSampleStats)
    stage_seconds: dict = field(default_factory=dict)

    @property
    def num_regions(self) -> int:
        """Number of regions (machines that will receive work)."""
        return len(self.grid_regions)

    @property
    def build_seconds(self) -> float:
        """Total wall-clock seconds spent building the histogram."""
        return float(sum(self.stage_seconds.values()))


def _extend_boundaries(boundaries: np.ndarray) -> np.ndarray:
    """Open the outermost key boundaries to +-infinity for routing."""
    extended = np.asarray(boundaries, dtype=np.float64).copy()
    extended[0] = -np.inf
    extended[-1] = np.inf
    return extended


def build_equi_weight_histogram(
    keys1: np.ndarray,
    keys2: np.ndarray,
    condition: JoinCondition,
    num_machines: int,
    weight_fn: WeightFunction,
    config: EWHConfig | None = None,
    rng: np.random.Generator | None = None,
) -> EquiWeightHistogram:
    """Run the 3-stage histogram algorithm and return the equi-weight histogram.

    Parameters
    ----------
    keys1, keys2:
        Join keys of R1 (rows) and R2 (columns).
    condition:
        The monotonic join condition.
    num_machines:
        ``J`` -- the number of regions/machines.
    weight_fn:
        The cost model ``w(r) = w_i*input + w_o*output``.
    config:
        Optional :class:`EWHConfig`.
    rng:
        Optional random generator (defaults to one seeded from the config).
    """
    config = config or EWHConfig()
    rng = rng or np.random.default_rng(config.seed)
    keys1 = np.asarray(keys1, dtype=np.float64)
    keys2 = np.asarray(keys2, dtype=np.float64)
    if len(keys1) == 0 or len(keys2) == 0:
        raise ValueError("both relations must be non-empty")
    if num_machines <= 0:
        raise ValueError("num_machines must be positive")

    n = max(len(keys1), len(keys2))
    stage_seconds: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Stage 1: sampling.
    # ------------------------------------------------------------------
    start = perf_counter()
    ns = config.sample_matrix_size or sample_matrix_size(n, num_machines)
    ns = min(ns, config.max_sample_matrix_size)

    si = input_sample_size(ns, n)
    sample1 = rng.choice(keys1, size=min(si, len(keys1)), replace=False)
    sample2 = rng.choice(keys2, size=min(si, len(keys2)), replace=False)
    hist1 = build_equidepth_histogram(sample1, ns, len(keys1))
    hist2 = build_equidepth_histogram(sample2, ns, len(keys2))

    nsc = candidate_cell_count(hist1, hist2, condition)
    so = output_sample_size(nsc, multiple=config.output_sample_multiple)
    output_sample, sampling_stats = parallel_stream_sample(
        keys1, keys2, condition, so, num_machines, rng,
        histogram1=hist1, histogram2=hist2,
    )

    # Appendix A5: once m is known, a high output/input ratio lets us shrink
    # n_s (and a low one forces us to grow it) while keeping Lemma 3.1.
    if config.adjust_for_output_ratio and config.sample_matrix_size is None:
        m = output_sample.total_output
        if m > 0:
            ratio = m / n
            adjusted = min(
                sample_matrix_size(n, num_machines, output_input_ratio=ratio),
                config.max_sample_matrix_size,
            )
            if adjusted != ns:
                ns = adjusted
                hist1 = build_equidepth_histogram(sample1, ns, len(keys1))
                hist2 = build_equidepth_histogram(sample2, ns, len(keys2))

    sample_matrix = build_sample_matrix(hist1, hist2, output_sample, condition)
    stage_seconds["sampling"] = perf_counter() - start

    # ------------------------------------------------------------------
    # Stage 2: coarsening.
    # ------------------------------------------------------------------
    start = perf_counter()
    nc = coarsened_size(
        num_machines, sample_matrix.grid.num_rows, config.max_coarsened_size
    )
    coarsening = coarsen(
        sample_matrix.grid, nc, nc, weight_fn,
        max_iterations=config.coarsening_iterations,
    )
    stage_seconds["coarsening"] = perf_counter() - start

    # ------------------------------------------------------------------
    # Stage 3: regionalization.
    # ------------------------------------------------------------------
    start = perf_counter()
    regionalization = regionalize(
        coarsening.grid, num_machines, weight_fn,
        algorithm=config.tiling_algorithm,
    )
    stage_seconds["regionalization"] = perf_counter() - start

    # ------------------------------------------------------------------
    # Map grid regions back to join-key space.
    # ------------------------------------------------------------------
    mc_row_boundaries = _extend_boundaries(
        sample_matrix.row_boundaries[coarsening.row_groups]
    )
    mc_col_boundaries = _extend_boundaries(
        sample_matrix.col_boundaries[coarsening.col_groups]
    )
    key_regions = [
        KeyRegion(
            r1_lo=float(mc_row_boundaries[region.row_lo]),
            r1_hi=float(mc_row_boundaries[region.row_hi + 1]),
            r2_lo=float(mc_col_boundaries[region.col_lo]),
            r2_hi=float(mc_col_boundaries[region.col_hi + 1]),
            region_id=index,
        )
        for index, region in enumerate(regionalization.regions)
    ]

    return EquiWeightHistogram(
        key_regions=key_regions,
        grid_regions=regionalization.regions,
        mc_row_boundaries=mc_row_boundaries,
        mc_col_boundaries=mc_col_boundaries,
        sample_matrix=sample_matrix,
        coarsening=coarsening,
        regionalization=regionalization,
        estimated_max_weight=regionalization.max_region_weight,
        total_output=output_sample.total_output,
        weight_fn=weight_fn,
        sampling_stats=sampling_stats,
        stage_seconds=stage_seconds,
    )
