"""Grid-routed partitionings: regions defined over a key-boundary grid.

Both content-sensitive schemes (M-Bucket and EWH) express their regions as
rectangles over a grid whose rows/columns are key ranges.  Routing a tuple is
then: find the grid row (column) containing its join key, and ship it to
every region whose row (column) range covers that index.  Keys outside the
sampled key range clamp into the outermost rows/columns, whose key ranges the
builders extend to +-infinity.
"""

from __future__ import annotations

import numpy as np

from repro.core.region import GridRegion, KeyRegion
from repro.partitioning.base import Partitioning

__all__ = ["GridRoutedPartitioning"]


class GridRoutedPartitioning(Partitioning):
    """A partitioning whose regions are rectangles over a key grid.

    Parameters
    ----------
    row_boundaries, col_boundaries:
        Ascending key boundaries of the grid rows (R1 side) and columns
        (R2 side); arrays of length ``rows + 1`` / ``cols + 1``.
    regions:
        Rectangles in grid-index coordinates.
    scheme_name:
        Reporting name (``CSI`` or ``CSIO``).
    """

    def __init__(
        self,
        row_boundaries: np.ndarray,
        col_boundaries: np.ndarray,
        regions: list[GridRegion],
        scheme_name: str = "grid",
    ) -> None:
        self.row_boundaries = np.asarray(row_boundaries, dtype=np.float64)
        self.col_boundaries = np.asarray(col_boundaries, dtype=np.float64)
        if len(self.row_boundaries) < 2 or len(self.col_boundaries) < 2:
            raise ValueError("boundary arrays must have at least two entries")
        self.regions = list(regions)
        self.scheme_name = scheme_name
        num_rows = len(self.row_boundaries) - 1
        num_cols = len(self.col_boundaries) - 1
        for region in self.regions:
            if region.row_hi >= num_rows or region.col_hi >= num_cols:
                raise ValueError(f"region {region} exceeds the grid {num_rows}x{num_cols}")

    # ------------------------------------------------------------------
    # Partitioning API
    # ------------------------------------------------------------------
    @property
    def num_regions(self) -> int:
        return len(self.regions)

    def _row_index(self, keys: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self.row_boundaries, np.asarray(keys, dtype=np.float64),
                              side="right") - 1
        return np.clip(idx, 0, len(self.row_boundaries) - 2)

    def _col_index(self, keys: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self.col_boundaries, np.asarray(keys, dtype=np.float64),
                              side="right") - 1
        return np.clip(idx, 0, len(self.col_boundaries) - 2)

    def assign_r1(self, keys: np.ndarray, rng: np.random.Generator) -> list[np.ndarray]:
        rows = self._row_index(keys)
        return [
            np.flatnonzero((rows >= region.row_lo) & (rows <= region.row_hi))
            for region in self.regions
        ]

    def assign_r2(self, keys: np.ndarray, rng: np.random.Generator) -> list[np.ndarray]:
        cols = self._col_index(keys)
        return [
            np.flatnonzero((cols >= region.col_lo) & (cols <= region.col_hi))
            for region in self.regions
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def key_regions(self) -> list[KeyRegion]:
        """The regions expressed as rectangles in join-key space."""
        return [
            KeyRegion(
                r1_lo=float(self.row_boundaries[region.row_lo]),
                r1_hi=float(self.row_boundaries[region.row_hi + 1]),
                r2_lo=float(self.col_boundaries[region.col_lo]),
                r2_hi=float(self.col_boundaries[region.col_hi + 1]),
                region_id=index,
            )
            for index, region in enumerate(self.regions)
        ]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"{self.__class__.__name__}(scheme={self.scheme_name!r}, "
            f"regions={self.num_regions}, "
            f"grid={len(self.row_boundaries) - 1}x{len(self.col_boundaries) - 1})"
        )
