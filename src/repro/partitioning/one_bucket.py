"""1-Bucket (CI): the content-insensitive partitioning scheme.

1-Bucket (Okcan & Riedewald) tiles the *entire* join matrix with a
``rows x cols`` grid of regions, one per machine, regardless of the join
condition.  An incoming R1 tuple picks a random region-grid row and is
shipped to every region in that row (``cols`` copies); an R2 tuple picks a
random column and is shipped to every region in it (``rows`` copies).  Every
output pair is therefore produced by exactly one region -- the intersection
of the chosen row and column -- and, because the choices are random, regions
receive near-identical input and output *in expectation*.

The scheme needs no statistics at all (zero stats time), is immune to any
skew, and is output-optimal; its weakness is the heavy input replication,
which the near-square factorisation of J below minimises but cannot avoid.
"""

from __future__ import annotations

import math

import numpy as np

from repro.partitioning.base import Partitioning

__all__ = [
    "machine_grid_shape",
    "OneBucketPartitioning",
    "build_one_bucket_partitioning",
]


def machine_grid_shape(num_machines: int) -> tuple[int, int]:
    """Factor ``J`` into the region-grid shape ``rows x cols`` minimising replication.

    Replication is ``cols`` copies per R1 tuple plus ``rows`` copies per R2
    tuple, so (for comparable relation sizes) the best factorisation
    minimises ``rows + cols`` -- the factor pair closest to ``sqrt(J)``.
    For J = 32 this gives the paper's 4 x 8 grid.
    """
    if num_machines <= 0:
        raise ValueError("num_machines must be positive")
    best_rows = 1
    for rows in range(1, int(math.isqrt(num_machines)) + 1):
        if num_machines % rows == 0:
            best_rows = rows
    return best_rows, num_machines // best_rows


class OneBucketPartitioning(Partitioning):
    """The randomised 1-Bucket partitioning over a ``rows x cols`` region grid."""

    scheme_name = "CI"

    def __init__(self, grid_rows: int, grid_cols: int) -> None:
        if grid_rows <= 0 or grid_cols <= 0:
            raise ValueError("grid dimensions must be positive")
        self.grid_rows = grid_rows
        self.grid_cols = grid_cols

    @property
    def num_regions(self) -> int:
        return self.grid_rows * self.grid_cols

    @property
    def replication_r1(self) -> int:
        """Copies made of every R1 tuple (one per region-grid column)."""
        return self.grid_cols

    @property
    def replication_r2(self) -> int:
        """Copies made of every R2 tuple (one per region-grid row)."""
        return self.grid_rows

    def _region_id(self, row: int, col: int) -> int:
        return row * self.grid_cols + col

    def assign_r1(self, keys: np.ndarray, rng: np.random.Generator) -> list[np.ndarray]:
        keys = np.asarray(keys)
        chosen_rows = rng.integers(0, self.grid_rows, size=len(keys))
        assignments: list[np.ndarray] = []
        for region in range(self.num_regions):
            region_row = region // self.grid_cols
            assignments.append(np.flatnonzero(chosen_rows == region_row))
        return assignments

    def assign_r2(self, keys: np.ndarray, rng: np.random.Generator) -> list[np.ndarray]:
        keys = np.asarray(keys)
        chosen_cols = rng.integers(0, self.grid_cols, size=len(keys))
        assignments: list[np.ndarray] = []
        for region in range(self.num_regions):
            region_col = region % self.grid_cols
            assignments.append(np.flatnonzero(chosen_cols == region_col))
        return assignments

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"OneBucketPartitioning(grid={self.grid_rows}x{self.grid_cols})"


def build_one_bucket_partitioning(num_machines: int) -> OneBucketPartitioning:
    """Build the 1-Bucket partitioning for ``num_machines`` machines."""
    rows, cols = machine_grid_shape(num_machines)
    return OneBucketPartitioning(grid_rows=rows, grid_cols=cols)
