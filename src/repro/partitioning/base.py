"""The common interface of all partitioning schemes.

A :class:`Partitioning` routes tuples to regions.  The engine asks it to
assign the R1 and R2 key arrays and receives, for every region, the indexes
of the tuples that must be shipped to the machine owning that region.  A
tuple may be assigned to several regions (replication) or to none (its row or
column intersects no region because it cannot produce output).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = ["Partitioning", "RegionStatistics"]


@dataclass(frozen=True)
class RegionStatistics:
    """Per-region input/output statistics measured after an execution.

    Attributes
    ----------
    input_tuples:
        Tuples received by the region's machine (R1 + R2, after replication).
    output_tuples:
        Output tuples the machine produced.
    """

    input_tuples: int
    output_tuples: int


class Partitioning(abc.ABC):
    """Abstract base class of a partitioning scheme's result."""

    #: Short scheme name used in reports (``CI``, ``CSI``, ``CSIO``).
    scheme_name: str = "scheme"

    @property
    @abc.abstractmethod
    def num_regions(self) -> int:
        """Number of regions (machines that can receive work)."""

    @abc.abstractmethod
    def assign_r1(
        self, keys: np.ndarray, rng: np.random.Generator
    ) -> list[np.ndarray]:
        """Return, per region, the indexes of R1 tuples routed to it.

        ``rng`` is only used by randomised schemes (1-Bucket); deterministic
        schemes ignore it.
        """

    @abc.abstractmethod
    def assign_r2(
        self, keys: np.ndarray, rng: np.random.Generator
    ) -> list[np.ndarray]:
        """Return, per region, the indexes of R2 tuples routed to it."""

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def replication_factor(
        self, keys1: np.ndarray, keys2: np.ndarray, rng: np.random.Generator
    ) -> float:
        """Average number of regions each input tuple is shipped to."""
        total = len(keys1) + len(keys2)
        if total == 0:
            return 0.0
        assigned = sum(len(idx) for idx in self.assign_r1(keys1, rng))
        assigned += sum(len(idx) for idx in self.assign_r2(keys2, rng))
        return assigned / total
