"""Partitioning schemes: 1-Bucket (CI), M-Bucket (CSI) and EWH (CSIO).

Every scheme produces a :class:`~repro.partitioning.base.Partitioning`,
which answers one question for the execution engine: *given the tuples of R1
and R2, which region(s) does each tuple go to?*  The schemes differ in what
they know and therefore how well the resulting regions balance work:

* :mod:`repro.partitioning.one_bucket` -- content-insensitive (CI); regions
  tile the whole join matrix, tuples pick a random row/column.  Output is
  balanced by construction but every tuple is replicated to a full row or
  column of the region grid.
* :mod:`repro.partitioning.m_bucket` -- content-sensitive on input only
  (CSI); an equi-depth grid identifies candidate cells and regions balance
  the *input*, ignoring how much output each candidate cell produces.
* :mod:`repro.partitioning.ewh` -- content-sensitive on input and output
  (CSIO, the paper's contribution); regions come from the equi-weight
  histogram and balance the total work.
"""

from repro.partitioning.base import Partitioning, RegionStatistics
from repro.partitioning.ewh import EWHPartitioning, build_ewh_partitioning
from repro.partitioning.grid_routed import GridRoutedPartitioning
from repro.partitioning.hash_repartition import (
    HashRepartitioning,
    build_hash_repartitioning,
)
from repro.partitioning.m_bucket import (
    MBucketConfig,
    MBucketPartitioning,
    build_m_bucket_partitioning,
)
from repro.partitioning.one_bucket import (
    OneBucketPartitioning,
    build_one_bucket_partitioning,
    machine_grid_shape,
)

__all__ = [
    "Partitioning",
    "RegionStatistics",
    "GridRoutedPartitioning",
    "HashRepartitioning",
    "build_hash_repartitioning",
    "OneBucketPartitioning",
    "build_one_bucket_partitioning",
    "machine_grid_shape",
    "MBucketConfig",
    "MBucketPartitioning",
    "build_m_bucket_partitioning",
    "EWHPartitioning",
    "build_ewh_partitioning",
]
