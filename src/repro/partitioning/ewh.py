"""EWH (CSIO): the equi-weight histogram partitioning scheme.

This is the paper's contribution wrapped as a partitioning: the 3-stage
histogram algorithm (:mod:`repro.core.histogram`) produces at most J
rectangular regions of near-equal *total* weight (input plus output work),
and this module exposes them through the common
:class:`~repro.partitioning.base.Partitioning` routing interface.

Routing is identical to M-Bucket's -- a tuple goes to every region whose
row/column key range contains its join key -- but the regions themselves were
chosen knowing the output distribution, which is what makes the scheme
resilient to join product skew.
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import (
    EWHConfig,
    EquiWeightHistogram,
    build_equi_weight_histogram,
)
from repro.core.weights import WeightFunction
from repro.joins.conditions import JoinCondition
from repro.partitioning.grid_routed import GridRoutedPartitioning

__all__ = ["EWHPartitioning", "build_ewh_partitioning"]


class EWHPartitioning(GridRoutedPartitioning):
    """The CSIO partitioning: regions of the equi-weight histogram.

    Attributes
    ----------
    histogram:
        The full :class:`EquiWeightHistogram` build artefact (sample matrix,
        coarsening, regionalization, estimated maximum region weight, exact
        output size, per-stage wall-clock times).
    """

    scheme_name = "CSIO"

    def __init__(self, histogram: EquiWeightHistogram) -> None:
        super().__init__(
            row_boundaries=histogram.mc_row_boundaries,
            col_boundaries=histogram.mc_col_boundaries,
            regions=histogram.grid_regions,
            scheme_name="CSIO",
        )
        self.histogram = histogram

    @property
    def estimated_max_weight(self) -> float:
        """The scheme's own estimate of the maximum region weight (CSIO-est)."""
        return self.histogram.estimated_max_weight

    @property
    def total_output(self) -> int:
        """Exact join output size ``m`` learned during sampling."""
        return self.histogram.total_output

    @property
    def build_seconds(self) -> float:
        """Wall-clock seconds spent building the histogram."""
        return self.histogram.build_seconds


def build_ewh_partitioning(
    keys1: np.ndarray,
    keys2: np.ndarray,
    condition: JoinCondition,
    num_machines: int,
    weight_fn: WeightFunction | None = None,
    config: EWHConfig | None = None,
    rng: np.random.Generator | None = None,
) -> EWHPartitioning:
    """Build the CSIO partitioning by running the 3-stage histogram algorithm.

    Parameters mirror :func:`repro.core.histogram.build_equi_weight_histogram`.
    """
    weight_fn = weight_fn or WeightFunction()
    histogram = build_equi_weight_histogram(
        keys1=keys1,
        keys2=keys2,
        condition=condition,
        num_machines=num_machines,
        weight_fn=weight_fn,
        config=config,
        rng=rng,
    )
    return EWHPartitioning(histogram)
