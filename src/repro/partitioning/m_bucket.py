"""M-Bucket (CSI): the content-sensitive, input-only partitioning scheme.

M-Bucket (Okcan & Riedewald) builds approximate equi-depth histograms with
``p`` buckets over the join keys of each relation, lays the resulting
``p x p`` grid over the join matrix and marks *candidate* cells -- cells
whose boundary key ranges can satisfy the join condition.  Regions then cover
all candidate cells while balancing the **input** assigned to each machine;
the scheme has no information about how many output tuples a candidate cell
produces, assigning every candidate the same constant, which is exactly why
it is susceptible to join product skew.

Region construction follows the M-Bucket-I heuristic: binary-search the
maximum allowed region weight; for a given threshold, sweep the grid rows top
to bottom, greedily growing a horizontal band of rows and covering the band's
candidate columns with as few side-by-side rectangles under the threshold as
possible, choosing the band height that maximises rows covered per region
spent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.region import GridRegion
from repro.core.sample_matrix import candidate_mask
from repro.core.weights import WeightFunction
from repro.joins.conditions import JoinCondition
from repro.obs.clock import perf_counter
from repro.partitioning.grid_routed import GridRoutedPartitioning
from repro.sampling.equidepth import EquiDepthHistogram, build_equidepth_histogram
from repro.sampling.sizes import input_sample_size

__all__ = ["MBucketConfig", "MBucketPartitioning", "build_m_bucket_partitioning"]


@dataclass(frozen=True)
class MBucketConfig:
    """Configuration of the M-Bucket scheme.

    Parameters
    ----------
    num_buckets:
        ``p``, the number of equi-depth buckets per relation (the paper's
        baseline uses 2000 at cluster scale and sweeps it in Table V).
    max_band_rows:
        Cap on how many grid rows a single horizontal band may span while
        searching for the best band height (bounds the heuristic's cost);
        ``None`` means no cap.
    max_search_steps:
        Iterations of the binary search over the region-weight threshold.
    seed:
        Seed used when the caller does not pass a random generator.
    """

    num_buckets: int = 200
    max_band_rows: int | None = None
    max_search_steps: int = 25
    seed: int = 2016


class MBucketPartitioning(GridRoutedPartitioning):
    """The CSI partitioning: grid-routed regions balanced on input only."""

    scheme_name = "CSI"

    def __init__(
        self,
        row_boundaries: np.ndarray,
        col_boundaries: np.ndarray,
        regions: list[GridRegion],
        num_candidate_cells: int,
        build_seconds: float,
    ) -> None:
        super().__init__(row_boundaries, col_boundaries, regions, scheme_name="CSI")
        self.num_candidate_cells = num_candidate_cells
        self.build_seconds = build_seconds


def _row_candidate_spans(candidate: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-row first/last candidate column (-1 when the row has none)."""
    rows, cols = candidate.shape
    lo = np.full(rows, -1, dtype=np.int64)
    hi = np.full(rows, -1, dtype=np.int64)
    has_any = candidate.any(axis=1)
    if has_any.any():
        lo[has_any] = np.argmax(candidate[has_any], axis=1)
        hi[has_any] = cols - 1 - np.argmax(candidate[has_any, ::-1], axis=1)
    return lo, hi


def _cover_band(
    row_lo: int,
    row_hi: int,
    col_lo: int,
    col_hi: int,
    bucket_size1: float,
    bucket_size2: float,
    weight_fn: WeightFunction,
    threshold: float,
) -> list[GridRegion] | None:
    """Cover columns ``[col_lo..col_hi]`` of a row band with side-by-side regions."""
    rows = row_hi - row_lo + 1
    row_cost = weight_fn.input_cost * rows * bucket_size1
    col_unit = weight_fn.input_cost * bucket_size2
    budget = threshold - row_cost
    if col_unit <= 0:
        return [GridRegion(row_lo, row_hi, col_lo, col_hi)]
    max_width = int(budget // col_unit)
    if max_width < 1:
        return None
    regions = []
    col = col_lo
    while col <= col_hi:
        end = min(col_hi, col + max_width - 1)
        regions.append(GridRegion(row_lo, row_hi, col, end))
        col = end + 1
    return regions


def _cover(
    span_lo: np.ndarray,
    span_hi: np.ndarray,
    bucket_size1: float,
    bucket_size2: float,
    weight_fn: WeightFunction,
    threshold: float,
    max_band_rows: int | None,
) -> list[GridRegion] | None:
    """Cover all candidate cells with regions under ``threshold`` (M-Bucket-I sweep)."""
    num_rows = len(span_lo)
    regions: list[GridRegion] = []
    row = 0
    while row < num_rows:
        if span_lo[row] < 0:
            row += 1
            continue
        best_score = -1.0
        best_end = None
        best_regions: list[GridRegion] | None = None
        band_col_lo = None
        band_col_hi = None
        limit = num_rows if max_band_rows is None else min(num_rows, row + max_band_rows)
        for end in range(row, limit):
            if span_lo[end] >= 0:
                if band_col_lo is None:
                    band_col_lo, band_col_hi = int(span_lo[end]), int(span_hi[end])
                else:
                    band_col_lo = min(band_col_lo, int(span_lo[end]))
                    band_col_hi = max(band_col_hi, int(span_hi[end]))
            if band_col_lo is None:
                continue
            band_regions = _cover_band(
                row, end, band_col_lo, band_col_hi,
                bucket_size1, bucket_size2, weight_fn, threshold,
            )
            if band_regions is None:
                break
            score = (end - row + 1) / max(len(band_regions), 1)
            if score > best_score + 1e-12:
                best_score = score
                best_end = end
                best_regions = band_regions
        if best_regions is None:
            return None
        regions.extend(best_regions)
        row = best_end + 1
    return regions


def build_m_bucket_partitioning(
    keys1: np.ndarray,
    keys2: np.ndarray,
    condition: JoinCondition,
    num_machines: int,
    weight_fn: WeightFunction | None = None,
    config: MBucketConfig | None = None,
    rng: np.random.Generator | None = None,
) -> MBucketPartitioning:
    """Build the M-Bucket (CSI) partitioning.

    Parameters
    ----------
    keys1, keys2:
        Join keys of R1 (rows) and R2 (columns).
    condition:
        The monotonic join condition (used for the candidate-cell check).
    num_machines:
        ``J``, the number of regions allowed.
    weight_fn:
        Cost model; only its input coefficient matters (the scheme ignores
        output by design).
    config:
        Optional :class:`MBucketConfig`.
    rng:
        Optional random generator for the input samples.
    """
    config = config or MBucketConfig()
    weight_fn = weight_fn or WeightFunction()
    rng = rng or np.random.default_rng(config.seed)
    keys1 = np.asarray(keys1, dtype=np.float64)
    keys2 = np.asarray(keys2, dtype=np.float64)
    if len(keys1) == 0 or len(keys2) == 0:
        raise ValueError("both relations must be non-empty")
    if num_machines <= 0:
        raise ValueError("num_machines must be positive")

    start = perf_counter()
    p = max(1, min(config.num_buckets, len(keys1), len(keys2)))
    si = input_sample_size(p, max(len(keys1), len(keys2)))
    sample1 = rng.choice(keys1, size=min(si, len(keys1)), replace=False)
    sample2 = rng.choice(keys2, size=min(si, len(keys2)), replace=False)
    hist1 = build_equidepth_histogram(sample1, p, len(keys1))
    hist2 = build_equidepth_histogram(sample2, p, len(keys2))

    candidate = candidate_mask(hist1.boundaries, hist2.boundaries, condition)
    span_lo, span_hi = _row_candidate_spans(candidate)
    bucket_size1 = hist1.expected_bucket_size
    bucket_size2 = hist2.expected_bucket_size

    # Binary search the smallest input-weight threshold coverable with <= J regions.
    lower = weight_fn.input_cost * (bucket_size1 + bucket_size2)
    upper = weight_fn.input_cost * (
        hist1.num_buckets * bucket_size1 + hist2.num_buckets * bucket_size2
    )
    upper = max(upper, lower)

    def feasible(threshold: float) -> list[GridRegion] | None:
        regions = _cover(
            span_lo, span_hi, bucket_size1, bucket_size2, weight_fn, threshold,
            config.max_band_rows,
        )
        if regions is None or len(regions) > num_machines:
            return None
        return regions

    best = feasible(upper)
    if best is None:
        # Even a single full-matrix region is a valid cover; fall back to it.
        best = [GridRegion(0, hist1.num_buckets - 1, 0, hist2.num_buckets - 1)]
    low_result = feasible(lower)
    if low_result is not None:
        best = low_result
    else:
        for _ in range(config.max_search_steps):
            if upper - lower <= 0.01 * max(upper, 1.0):
                break
            mid = (lower + upper) / 2.0
            result = feasible(mid)
            if result is None:
                lower = mid
            else:
                upper = mid
                best = result

    row_boundaries = hist1.boundaries.copy()
    col_boundaries = hist2.boundaries.copy()
    row_boundaries[0], row_boundaries[-1] = -np.inf, np.inf
    col_boundaries[0], col_boundaries[-1] = -np.inf, np.inf
    build_seconds = perf_counter() - start
    return MBucketPartitioning(
        row_boundaries=row_boundaries,
        col_boundaries=col_boundaries,
        regions=best,
        num_candidate_cells=int(candidate.sum()),
        build_seconds=build_seconds,
    )
