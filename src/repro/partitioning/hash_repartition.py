"""Hash repartitioning: the equi-join baseline and why it fails for band joins.

Related work (paper, section V) explains why hash-based repartition joins --
the state of the art for pure equi-joins -- fall short for monotonic joins:
hashing scatters neighbouring join keys across machines, so for a band join
of width ``beta`` every tuple of the opposite relation must be replicated to
up to ``2*beta + 1`` machines (one per hash bucket its joinable interval
touches).  The replication, and with it the input-related work, network and
memory, grows linearly with the band width, whereas range partitioning keeps
neighbouring keys co-located.

:class:`HashRepartitioning` implements that scheme so the claim can be
measured: for an equi-join it is the classic, perfectly reasonable hash
repartition join; for a band join over integer-like keys it replicates R2
tuples to every machine owning a key within the band.  The benchmark
``benchmarks/test_related_hash_vs_range.py`` plots its replication factor
against CSIO's as ``beta`` grows.
"""

from __future__ import annotations

import numpy as np

from repro.partitioning.base import Partitioning

__all__ = ["HashRepartitioning", "build_hash_repartitioning"]

#: Multiplier of the Knuth-style multiplicative hash used to spread keys.
_HASH_MULTIPLIER = 2654435761


def _hash_buckets(values: np.ndarray, num_machines: int) -> np.ndarray:
    """Hash integer-valued keys into machine buckets."""
    as_int = np.asarray(np.round(values), dtype=np.int64)
    return ((as_int * _HASH_MULTIPLIER) % (2**31)) % num_machines


class HashRepartitioning(Partitioning):
    """Hash-partitioned repartition join with band-width-aware replication.

    Parameters
    ----------
    num_machines:
        ``J``, the number of machines (one region each).
    band_width:
        ``beta`` of the band condition the join will evaluate.  ``0`` gives
        the plain equi-join hash repartitioning.  For wider bands R2 tuples
        are replicated to the machines owning every integer key offset within
        ``[-beta, +beta]`` -- the ``2*beta + 1`` upper bound of section V.
    key_granularity:
        Spacing of the hashed key lattice.  Keys are snapped to multiples of
        this granularity before hashing; it must not exceed the smallest gap
        at which two keys should still be able to meet in the same bucket.
    """

    scheme_name = "HASH"

    def __init__(
        self, num_machines: int, band_width: float = 0.0, key_granularity: float = 1.0
    ) -> None:
        if num_machines <= 0:
            raise ValueError("num_machines must be positive")
        if band_width < 0:
            raise ValueError("band_width must be non-negative")
        if key_granularity <= 0:
            raise ValueError("key_granularity must be positive")
        self.num_machines = num_machines
        self.band_width = band_width
        self.key_granularity = key_granularity

    @property
    def num_regions(self) -> int:
        return self.num_machines

    @property
    def replication_per_r2_tuple(self) -> int:
        """Upper bound on machines each R2 tuple is shipped to (``2*beta + 1``)."""
        offsets = int(np.ceil(self.band_width / self.key_granularity))
        return 2 * offsets + 1

    def _lattice(self, keys: np.ndarray) -> np.ndarray:
        return np.round(np.asarray(keys, dtype=np.float64) / self.key_granularity)

    def assign_r1(self, keys: np.ndarray, rng: np.random.Generator) -> list[np.ndarray]:
        buckets = _hash_buckets(self._lattice(keys), self.num_machines)
        return [np.flatnonzero(buckets == m) for m in range(self.num_machines)]

    def assign_r2(self, keys: np.ndarray, rng: np.random.Generator) -> list[np.ndarray]:
        lattice = self._lattice(keys)
        offsets = int(np.ceil(self.band_width / self.key_granularity))
        assigned: list[set[int]] = [set() for _ in range(self.num_machines)]
        for offset in range(-offsets, offsets + 1):
            buckets = _hash_buckets(lattice + offset, self.num_machines)
            for machine in range(self.num_machines):
                assigned[machine].update(np.flatnonzero(buckets == machine).tolist())
        return [
            np.asarray(sorted(indexes), dtype=np.int64) for indexes in assigned
        ]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"HashRepartitioning(machines={self.num_machines}, "
            f"band_width={self.band_width:g})"
        )


def build_hash_repartitioning(
    num_machines: int, band_width: float = 0.0, key_granularity: float = 1.0
) -> HashRepartitioning:
    """Build a hash repartitioning for ``num_machines`` machines."""
    return HashRepartitioning(
        num_machines=num_machines,
        band_width=band_width,
        key_granularity=key_granularity,
    )
