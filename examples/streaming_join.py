"""Online streaming join with drift-triggered repartitioning and windows.

Feeds a micro-batched stream whose Zipf skew shifts mid-stream (near-uniform
at first, then a hot spot at a fresh location) to three engines:

* CI-static -- 1-Bucket built once: immune to skew, pays replication forever;
* CSIO-static -- the equi-weight histogram built from the stream prefix and
  frozen, the online analogue of trusting a stale batch build;
* CSIO-adaptive -- the same initial build, plus a drift detector that
  rebuilds the histogram from the incrementally maintained sample state and
  pays an explicit state-migration cost for every repartitioning.  Rebuilds
  use partial repartitioning: only the regions whose region-to-machine
  assignment changed migrate state.

The per-region joins of every batch run on a pluggable execution backend;
pass ``--backend multiprocess`` to execute them on a persistent OS-process
worker pool (real per-region wall-clock timings in the ``join s`` column)
instead of the in-process simulator, or ``--backend sticky`` for the
zero-copy variant: each worker process keeps its machines' join state
resident across batches and receives only the per-batch delta over shared
memory, so the ``pickled KB`` column collapses to control-message noise
while ``shm KB`` carries the actual payload.  The cost-model columns are
identical under every backend.

Retained state is bounded by a window policy; pass ``--window batches:6``
(tuples from the last 6 micro-batches stay live), ``--window tuples:5000``
(most recent 5000 arrivals per side) or ``--window decay:0.9`` (exponential
decay) to evict expired state after every batch.  Under any bounded window
the engine also compacts its key histories and index bookkeeping below the
window's trim point, so the run's *total* resident memory is O(window).
The ``peak resident`` and ``peak mem KB`` columns show the memory the
window (and the compaction) bounds, ``evicted`` what the policy dropped;
windowed runs report ``-`` in the ``correct`` column because the
full-history check no longer applies once the engine deliberately forgets
state.

Pass ``--queue N`` to decouple the source from each engine with a real
producer thread feeding a bounded queue of N batches, and ``--backpressure
{block,shed,coalesce}`` to pick what happens when the queue fills: ``block``
stalls the producer (lossless -- the join is bit-identical to the
synchronous run), ``shed`` drops whole batches, ``coalesce`` merges the
queue into one super-batch.  The table then gains ``backpressure``, ``peak
queue``, ``shed`` and ``stall s`` columns.

Pass ``--trace trace.json`` to record the span tree of all three runs --
``run → batch → {route, incremental_count, evict, compact, drift_decide,
migrate}``, plus per-worker child spans under the multiprocess backend --
into one Chrome-trace file (load it at https://ui.perfetto.dev; a ``.jsonl``
suffix writes the span log as JSON lines instead) and print a where-did-
the-time-go summary table.  Pass ``--metrics metrics.json`` to collect each
scheme's run into a :class:`~repro.obs.metrics.MetricsRegistry` and dump
the final counter/gauge/histogram snapshots as JSON.

Run with::

    python examples/streaming_join.py [--backend {simulated,multiprocess,sticky}]
                                      [--window SPEC]
                                      [--queue N]
                                      [--backpressure {block,shed,coalesce}]
                                      [--trace PATH] [--metrics PATH]
"""

from __future__ import annotations

import argparse
import json

from repro.bench.reporting import format_streaming_table, format_trace_summary
from repro.core.weights import BAND_JOIN_WEIGHTS
from repro.joins.conditions import BandJoinCondition
from repro.obs import MetricsRegistry, Tracer
from repro.streaming import (
    BACKPRESSURE_MODES,
    DriftAdaptiveEWHPolicy,
    DriftDetector,
    DriftingZipfSource,
    RateLimitedSource,
    StaticEWHPolicy,
    StaticOneBucketPolicy,
    StreamingJoinEngine,
    StreamingPipeline,
    compare_streaming_schemes,
    make_backend,
    make_window,
)


def main() -> None:
    """Run the three streaming schemes over a drifting stream and report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=["simulated", "multiprocess", "sticky"],
        default="simulated",
        help="execution backend for the per-region joins (default: simulated)",
    )
    parser.add_argument(
        "--window",
        default="unbounded",
        help="window policy bounding the retained state: 'unbounded' "
        "(default), 'batches:<n>', 'tuples:<n>' or 'decay:<p>'",
    )
    parser.add_argument(
        "--queue",
        type=int,
        default=0,
        metavar="N",
        help="run each engine behind a producer thread and a bounded queue "
        "of N batches (0, the default, runs synchronously)",
    )
    parser.add_argument(
        "--backpressure",
        choices=list(BACKPRESSURE_MODES),
        default="block",
        help="what the producer does when the queue is full (with --queue): "
        "'block' stalls (lossless, default), 'shed' drops whole batches, "
        "'coalesce' merges the queue into one super-batch",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record the span tree of all three runs into PATH as "
        "Chrome-trace JSON (open in https://ui.perfetto.dev; a .jsonl "
        "suffix writes a JSON-lines span log instead) and print a trace "
        "summary table",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="collect each scheme's run into a metrics registry and write "
        "the final counter/gauge/histogram snapshots to PATH as JSON",
    )
    args = parser.parse_args()
    window = make_window(args.window)

    # One tracer shared by all three engines -- every run lands in the same
    # timeline under its own scheme-tagged `run` span -- but one registry
    # per scheme: registries are mutable run state and summing the schemes'
    # counters together would be meaningless.
    tracer = Tracer() if args.trace else None
    registries: "dict[str, MetricsRegistry]" = {}

    def metrics_for(name: str) -> "MetricsRegistry | None":
        if args.metrics is None:
            return None
        return registries.setdefault(name, MetricsRegistry())

    num_machines = 16
    source = DriftingZipfSource(
        num_batches=16,
        tuples_per_batch=800,
        num_values=400,
        z_initial=0.1,
        z_final=0.9,
        shift_at_batch=6,
        seed=42,
    )
    policies = {
        "CI-static": lambda: StaticOneBucketPolicy(num_machines),
        "CSIO-static": lambda: StaticEWHPolicy(),
        "CSIO-adaptive": lambda: DriftAdaptiveEWHPolicy(
            DriftDetector(threshold=1.3, warmup_batches=2, cooldown_batches=3)
        ),
    }
    pipelined = args.queue > 0
    print(
        "Streaming a band join over 16 micro-batches; the key skew shifts "
        f"at batch 6 (backend: {args.backend}, window: {window.name}"
        + (
            f", queue: {args.queue} batches, backpressure: {args.backpressure}"
            if pipelined
            else ""
        )
        + ")...\n"
    )
    if pipelined:
        # One real producer thread per engine: each batch is offered every
        # 10ms and the engine consumes from the bounded queue.
        results = {}
        for name, policy_factory in policies.items():
            with make_backend(args.backend) as backend:
                engine = StreamingJoinEngine(
                    num_machines,
                    BandJoinCondition(beta=1.0),
                    BAND_JOIN_WEIGHTS,
                    policy=policy_factory(),
                    backend=backend,
                    window=window,
                    sample_capacity=2048,
                    sample_decay=0.7,
                    seed=3,
                    tracer=tracer,
                    metrics=metrics_for(name),
                )
                results[name] = StreamingPipeline(
                    RateLimitedSource(source, 0.01),
                    engine,
                    queue_batches=args.queue,
                    backpressure=args.backpressure,
                ).run()
    else:
        results = compare_streaming_schemes(
            source,
            num_machines,
            BandJoinCondition(beta=1.0),
            BAND_JOIN_WEIGHTS,
            policies={name: factory() for name, factory in policies.items()},
            backend_factory=lambda: make_backend(args.backend),
            window=window,
            sample_capacity=2048,
            sample_decay=0.7,
            seed=3,
            tracer=tracer,
            metrics_factory=metrics_for,
        )
    print(format_streaming_table(results))

    adaptive = results["CSIO-adaptive"]
    rebuild_batches = [
        batch.batch_index for batch in adaptive.batches if batch.repartitioned
    ]
    print(
        f"\nThe adaptive engine repartitioned at batch(es) {rebuild_batches}, "
        f"moving {adaptive.total_migrated:,} tuples of retained state between "
        "machines (charged into its load above). Partial repartitioning kept "
        "every region whose machine assignment did not change in place."
    )
    if not window.is_unbounded:
        print(
            f"The {window.name} window evicted {adaptive.total_evicted:,} "
            "state entries from the adaptive engine "
            f"({adaptive.total_bytes_freed:,} bytes freed), capping its "
            f"resident state at {adaptive.peak_resident_tuples:,} entries; "
            "migrations shipped live state only. History compaction trimmed "
            f"{adaptive.total_history_trimmed:,} dead history keys, "
            "holding total resident memory at "
            f"{adaptive.peak_resident_bytes / 1024:,.0f} KB."
        )
    if pipelined:
        print(
            f"Backpressure ({args.backpressure}): the adaptive engine's "
            f"producer stalled {adaptive.producer_stall_seconds:.3f}s, shed "
            f"{adaptive.total_tuples_shed:,} tuples and saw the queue peak "
            f"at {adaptive.peak_queue_depth} of {args.queue} batches; the "
            f"consumer sat idle {adaptive.consumer_idle_seconds:.3f}s."
        )
    print(
        "Reading the table: once the hot spot appears, the frozen histogram's "
        "busiest machine absorbs most of the new output while the adaptive "
        "engine restores balance and ends with a lower max-machine load -- "
        "migration cost included."
    )
    if tracer is not None:
        if args.trace.endswith(".jsonl"):
            tracer.write_jsonl(args.trace)
        else:
            tracer.write_chrome_trace(args.trace)
        print(
            f"\nTrace: {len(tracer.spans)} spans -> {args.trace} "
            "(open in https://ui.perfetto.dev). Where the time went:"
        )
        print(format_trace_summary(tracer))
    if args.metrics is not None:
        payload = {
            name: registry.snapshot() for name, registry in registries.items()
        }
        with open(args.metrics, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"\nMetrics: final registry snapshots of {len(registries)} "
            f"schemes -> {args.metrics}"
        )


if __name__ == "__main__":
    main()
