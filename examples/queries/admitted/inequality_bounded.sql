-- Admitted: a bandless inequality is fine when a bounded window caps the
-- joinable history (QRY002's requirement).
SELECT COUNT(*)
FROM bids JOIN asks ON bids.ts <= asks.ts
WINDOW 'batches:4'
POLICY 'coalesce' QUEUE 2
