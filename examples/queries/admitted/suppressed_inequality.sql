-- Admitted via suppression: the decay window below is declared bounded,
-- but this spec documents the inline-waiver workflow on a bandless
-- inequality whose window is spelled unbounded on purpose.
SELECT COUNT(*)
FROM a JOIN b ON a.seq < b.seq -- repro: ignore[QRY002] -- replayed finite archive, state fits one host
WINDOW 'unbounded'
POLICY 'block'
