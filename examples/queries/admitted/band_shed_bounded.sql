-- Admitted: band join with an integral width (stays on the exact int64
-- band path) and a bounded window, so the shed policy's losses are
-- confined to state that would expire anyway.
SELECT COUNT(*)
FROM orders AS o1 JOIN orders2 AS o2
  ON ABS(o1.price - o2.price) <= 10
WINDOW 'tuples:5000'
POLICY 'shed' QUEUE 8
