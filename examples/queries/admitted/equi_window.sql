-- Admitted: equi join over exact int64 keys with a sliding window and
-- lossless backpressure.  The canonical front-door query.
SELECT COUNT(*)
FROM r1 JOIN r2 ON r1.key = r2.key
WINDOW 'batches:8'
POLICY 'block' QUEUE 4
