-- Admitted: the paper's BE_OCD shape -- equality on one attribute AND a
-- band on another, lowered through the lexicographic key encoding (the
-- SCALE clause supplies the multiplier and the band attribute's domain).
SELECT COUNT(*)
FROM o1 JOIN o2
  ON o1.custkey = o2.custkey AND ABS(o1.priority - o2.priority) <= 1
WINDOW 'batches:16'
SCALE 100 DOMAIN 0 TO 10
