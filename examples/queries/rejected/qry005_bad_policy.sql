-- Rejected (QRY005): 'drop' is not a registered backpressure mode.
SELECT COUNT(*)
FROM r1 JOIN r2 ON r1.key = r2.key
WINDOW 'batches:8'
POLICY 'drop'
