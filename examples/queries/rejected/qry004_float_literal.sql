-- Rejected (QRY004): a non-integral band width over KEYS INT forces key
-- arithmetic onto float64, rounding keys above 2**53.
SELECT COUNT(*)
FROM r1 JOIN r2 ON ABS(r1.key - r2.key) <= 2.5
WINDOW 'batches:8'
KEYS INT
