-- Rejected (QRY002): each arrival joins the other side's full history;
-- with no bounded window, resident state grows with the stream.
SELECT COUNT(*) FROM bids JOIN asks ON bids.ts < asks.ts
