-- Rejected (QRY005): 'bogus:3' parses against no registered window form.
SELECT COUNT(*) FROM r1 JOIN r2 ON r1.key = r2.key WINDOW 'bogus:3'
