-- Rejected (QRY001): a trivially-true condition filters nothing.
SELECT COUNT(*) FROM r1 JOIN r2 ON 1 = 1 WINDOW 'batches:8'
