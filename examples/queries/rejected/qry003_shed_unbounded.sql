-- Rejected (QRY003): full-history semantics plus silently dropped
-- batches -- the result is load-dependent and nothing says so.
SELECT COUNT(*)
FROM r1 JOIN r2 ON r1.key = r2.key
WINDOW 'unbounded'
POLICY 'shed' QUEUE 4
