-- Rejected (QRY001): an explicit cross join -- every pair matches.
SELECT COUNT(*) FROM r1 CROSS JOIN r2 WINDOW 'batches:8'
