-- Rejected (QRY001): the comma form with no WHERE is a cross join.
SELECT COUNT(*) FROM r1, r2 WINDOW 'batches:8'
