"""Walk through the three stages of the equi-weight histogram algorithm.

Reproduces Figure 3 of the paper in text form: starting from a skewed band
join, the script shows

1. the sample matrix MS (size n_s = sqrt(2nJ), built from equi-depth
   histograms plus a Stream-Sample output sample),
2. the coarsened matrix MC (size n_c = 2J, minimising the max cell weight),
3. the equi-weight histogram MH (at most J rectangular regions of near-equal
   weight) and the final regions in join-key space.

Run with::

    python examples/histogram_stages.py
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import build_equi_weight_histogram
from repro.workloads.definitions import make_bcb


def main() -> None:
    workload = make_bcb(beta=3, small_segment_size=2_000, seed=11)
    num_machines = 8
    weight_fn = workload.weight_fn

    print(f"Building the equi-weight histogram for {workload.name} with J = {num_machines}\n")
    histogram = build_equi_weight_histogram(
        workload.keys1, workload.keys2, workload.condition, num_machines,
        weight_fn, rng=np.random.default_rng(0),
    )

    ms = histogram.sample_matrix
    print("Stage 1 -- sampling")
    print(f"  sample matrix MS: {ms.grid.num_rows} x {ms.grid.num_cols}")
    print(f"  exact output size m (from Stream-Sample): {histogram.total_output:,}")
    print(f"  output sample size: {ms.output_sample_size:,}")
    print(f"  candidate MS cells: {ms.grid.num_candidate_cells:,}")
    print(
        "  max candidate cell weight sigma: "
        f"{ms.grid.max_cell_weight(weight_fn, candidates_only=True):,.0f}"
    )
    print(f"  seconds: {histogram.stage_seconds['sampling']:.3f}\n")

    mc = histogram.coarsening
    print("Stage 2 -- coarsening")
    print(f"  coarsened matrix MC: {mc.grid.num_rows} x {mc.grid.num_cols} (n_c = 2J)")
    print(f"  max MC cell weight: {mc.max_cell_weight:,.0f}")
    print(f"  refinement iterations: {mc.iterations}")
    print(f"  seconds: {histogram.stage_seconds['coarsening']:.3f}\n")

    print("Stage 3 -- regionalization (MonotonicBSP + binary search)")
    print(f"  regions: {histogram.num_regions} (budget J = {num_machines})")
    print(f"  binary-search steps: {histogram.regionalization.search_steps}")
    print(f"  estimated max region weight: {histogram.estimated_max_weight:,.0f}")
    print(f"  seconds: {histogram.stage_seconds['regionalization']:.3f}\n")

    print("Final regions in join-key space (rows = R1 keys, cols = R2 keys):")
    for region in histogram.key_regions:
        grid_region = histogram.grid_regions[region.region_id]
        weight = histogram.coarsening.grid.region_weight(grid_region, weight_fn)
        print(
            f"  region {region.region_id:2d}: "
            f"R1 in [{region.r1_lo:10.1f}, {region.r1_hi:10.1f})  "
            f"R2 in [{region.r2_lo:10.1f}, {region.r2_hi:10.1f})  "
            f"estimated weight {weight:,.0f}"
        )


if __name__ == "__main__":
    main()
