"""Quickstart: compare CI, CSI and CSIO on one skewed band join.

Generates the paper's synthetic X dataset (two relations whose small hot
segments produce most of the join output -- textbook join product skew),
builds each of the three partitioning schemes for a small cluster, executes
the partitioned join on the simulator and prints the quantities the paper's
evaluation reports: statistics cost, join cost, total cost, memory and the
maximum region weight.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.bench.experiments import compare_operators
from repro.bench.reporting import format_comparison_table, format_table_iv
from repro.workloads.definitions import make_bcb


def main() -> None:
    # A cost-balanced band join |R1.key - R2.key| <= 3 over the X dataset.
    # small_segment_size controls the scale: each relation has 5x that many
    # tuples.
    workload = make_bcb(beta=3, small_segment_size=2_000, seed=11)
    num_machines = 16

    print("Workload characteristics (Table IV style):\n")
    print(format_table_iv([workload]))

    print(f"\nRunning CI, CSI and CSIO with J = {num_machines} machines...\n")
    comparison = compare_operators(workload, num_machines=num_machines, seed=0)
    print(format_comparison_table([comparison]))

    print()
    for baseline in ("CI", "CSI"):
        print(
            f"CSIO total-cost speedup over {baseline}: "
            f"{comparison.speedup(baseline):.2f}x"
        )
    csio = comparison.results["CSIO"]
    print(
        f"CSIO estimated max region weight {csio.estimated_max_weight:,.0f} "
        f"vs measured {csio.max_region_weight:,.0f}"
    )


if __name__ == "__main__":
    main()
