"""Real parallel execution and cost-model calibration.

The benchmark suite measures time through the paper's cost model
``w(r) = w_i * input(r) + w_o * output(r)``.  This example closes the loop on
a real machine:

1. it times single-process joins of growing size and fits ``w_i`` and ``w_o``
   by least squares (the paper's linear-regression calibration);
2. it executes a CSIO-partitioned join with one OS process per region
   (Python's GIL rules out shared-memory threads) and compares the wall-clock
   time of the slowest worker across schemes.

Run with::

    python examples/real_parallel_join.py
"""

from __future__ import annotations

import numpy as np

from repro.engine.calibration import calibrate_cost_weights, collect_calibration_samples
from repro.engine.executor import run_join_multiprocess
from repro.joins.conditions import BandJoinCondition
from repro.partitioning.ewh import build_ewh_partitioning
from repro.partitioning.m_bucket import MBucketConfig, build_m_bucket_partitioning
from repro.partitioning.one_bucket import build_one_bucket_partitioning
from repro.workloads.definitions import make_bcb


def main() -> None:
    workload = make_bcb(beta=2, small_segment_size=2_000, seed=11)
    keys1, keys2 = workload.keys1, workload.keys2
    condition: BandJoinCondition = workload.condition  # type: ignore[assignment]
    num_machines = 8

    # ------------------------------------------------------------------
    # 1. Calibrate the cost model from timed local joins.
    # ------------------------------------------------------------------
    print("Calibrating the cost model from timed local joins...")
    samples = collect_calibration_samples(
        keys1, keys2, condition, fractions=(0.25, 0.5, 0.75, 1.0),
        rng=np.random.default_rng(0),
    )
    for sample in samples:
        print(
            f"  input {sample.input_tuples:7.0f}  output {sample.output_tuples:9.0f}  "
            f"{sample.seconds * 1e3:7.2f} ms"
        )
    weight_fn = calibrate_cost_weights(samples)
    print(
        f"fitted cost model: w_i = {weight_fn.input_cost:.2f}, "
        f"w_o = {weight_fn.output_cost:.3f} "
        "(paper's cluster regression gave w_o = 0.2 for band joins)\n"
    )

    # ------------------------------------------------------------------
    # 2. Execute the partitioned join with one OS process per region.
    # ------------------------------------------------------------------
    schemes = {
        "CI": build_one_bucket_partitioning(num_machines),
        "CSI": build_m_bucket_partitioning(
            keys1, keys2, condition, num_machines,
            weight_fn=weight_fn, config=MBucketConfig(num_buckets=64),
            rng=np.random.default_rng(1),
        ),
        "CSIO": build_ewh_partitioning(
            keys1, keys2, condition, num_machines,
            weight_fn=weight_fn, rng=np.random.default_rng(1),
        ),
    }
    print(f"Executing the join with {num_machines} worker processes per scheme...")
    for name, partitioning in schemes.items():
        result = run_join_multiprocess(
            partitioning, keys1, keys2, condition, max_workers=num_machines,
            rng=np.random.default_rng(2),
        )
        print(
            f"  {name:5s} output {result.total_output:9,}  "
            f"slowest worker {result.max_machine_seconds * 1e3:7.1f} ms  "
            f"end-to-end {result.wall_seconds * 1e3:7.1f} ms"
        )
    print(
        "\nThe slowest-worker times follow the same ordering as the cost-model "
        "weights: the equi-weight histogram keeps the busiest worker's load "
        "(and hence the join latency) the smallest."
    )


if __name__ == "__main__":
    main()
