"""Load balancing on a heterogeneous cluster (paper, Appendix A5).

Machines rarely have identical capacity in practice.  The paper's
generalisation section proposes requesting *more regions than machines* from
the histogram algorithm and assigning regions to machines proportionally to
capacity.  This example runs a skewed band join on a cluster whose machines
have capacities 1x, 1x, 2x and 4x and shows that the per-machine load divided
by capacity ends up nearly flat.

Run with::

    python examples/heterogeneous_cluster.py
"""

from __future__ import annotations

import numpy as np

from repro.engine.heterogeneous import run_heterogeneous_join
from repro.workloads.definitions import make_bcb


def main() -> None:
    workload = make_bcb(beta=3, small_segment_size=2_000, seed=11)
    capacities = [1.0, 1.0, 2.0, 4.0]
    weight_fn = workload.weight_fn

    print(f"Machine capacities: {capacities}")
    result = run_heterogeneous_join(
        workload.keys1, workload.keys2, workload.condition, capacities,
        weight_fn, rng=np.random.default_rng(0),
    )
    print(
        f"The histogram algorithm was asked for {result.num_virtual_regions} regions "
        f"for {len(capacities)} machines.\n"
    )

    weights = result.machine_weights(weight_fn)
    normalised = result.normalised_weights(weight_fn)
    print("machine  capacity  input tuples  output tuples  weight      weight/capacity")
    for machine, capacity in enumerate(capacities):
        print(
            f"{machine:7d}  {capacity:8.1f}  {result.per_machine_input[machine]:12,}  "
            f"{result.per_machine_output[machine]:13,}  {weights[machine]:10,.0f}  "
            f"{normalised[machine]:15,.0f}"
        )
    print(
        f"\nload imbalance (max / mean of weight-per-capacity): "
        f"{normalised.max() / normalised.mean():.3f} (1.0 is perfect)"
    )
    print(f"total output tuples: {result.total_output:,}")


if __name__ == "__main__":
    main()
