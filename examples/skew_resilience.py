"""Skew resilience across the output/input spectrum (the Figure 4b story).

Sweeps the band width of the B_CB join -- which sweeps the output/input
ratio rho_oi -- and shows how the three operators respond:

* CI (1-Bucket) ignores content, so its replication overhead hurts most when
  input costs dominate (small rho_oi) and fades as output grows;
* CSI (M-Bucket) balances input only, so join product skew hurts it more and
  more as rho_oi grows;
* CSIO (the equi-weight histogram) tracks the total work and stays at the
  lower envelope across the whole spectrum.

Run with::

    python examples/skew_resilience.py
"""

from __future__ import annotations

from repro.bench.experiments import compare_operators
from repro.bench.reporting import format_rows
from repro.workloads.definitions import make_bcb


def main() -> None:
    num_machines = 16
    rows = []
    print("Sweeping the B_CB band width (this sweeps rho_oi)...\n")
    for beta in (1, 2, 3, 4, 8, 16):
        workload = make_bcb(beta=beta, small_segment_size=1_500, seed=11 + beta)
        comparison = compare_operators(workload, num_machines=num_machines, seed=0)
        csio = comparison.results["CSIO"].total_cost
        rows.append(
            [
                workload.name,
                f"{comparison.output_input_ratio:.2f}",
                f"{comparison.results['CI'].total_cost / csio:.2f}x",
                f"{comparison.results['CSI'].total_cost / csio:.2f}x",
                "1.00x",
                f"{comparison.results['CI'].memory_tuples:,}",
                f"{comparison.results['CSIO'].memory_tuples:,}",
            ]
        )

    print(
        format_rows(
            [
                "join",
                "rho_oi",
                "CI / CSIO",
                "CSI / CSIO",
                "CSIO",
                "CI memory",
                "CSIO memory",
            ],
            rows,
        )
    )
    print(
        "\nReading the table: CI's normalised cost falls as rho_oi grows "
        "(replication stops mattering), CSI's rises (join product skew bites), "
        "and CSIO defines the baseline at every point."
    )


if __name__ == "__main__":
    main()
