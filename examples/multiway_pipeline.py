"""A multi-way join executed as a sequence of load-balanced 2-way joins.

The paper's operator targets 2-way joins and argues (section IV-B) that a
multi-way join runs efficiently as a sequence of them precisely because the
equi-weight histogram keeps the expensive part -- shipping the growing
intermediate results between operators -- balanced.  This example joins three
relations with band conditions, once with CSIO and once with the baselines,
and compares the accumulated per-step maximum machine weight.

Run with::

    python examples/multiway_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.core.weights import BAND_JOIN_WEIGHTS
from repro.joins.conditions import BandJoinCondition
from repro.joins.multiway import MultiwayJoinStep, run_multiway_join


def main() -> None:
    rng = np.random.default_rng(3)
    # Three relations; the hot low-key range is shared, so intermediates grow.
    def relation(size: int) -> np.ndarray:
        hot = rng.integers(0, 60, size // 4)
        cold = rng.integers(1_000, 20_000, size - size // 4)
        return np.concatenate([hot, cold]).astype(float)

    keys_a = relation(1_200)
    keys_b = relation(1_200)
    keys_c = relation(800)
    steps = [
        MultiwayJoinStep(keys=keys_b, condition=BandJoinCondition(beta=2.0), name="A  join B"),
        MultiwayJoinStep(keys=keys_c, condition=BandJoinCondition(beta=1.0), name="AB join C"),
    ]
    num_machines = 8

    print(f"Left-deep plan over 3 relations, J = {num_machines} per step\n")
    for scheme in ("CSIO", "CSI", "CI"):
        result = run_multiway_join(
            keys_a, steps, num_machines, BAND_JOIN_WEIGHTS,
            scheme=scheme, rng=np.random.default_rng(0),
        )
        print(f"scheme {scheme}:")
        for step in result.steps:
            print(
                f"  {step.name}: {step.left_size:,} x {step.right_size:,} tuples "
                f"-> {step.output_size:,} out, max machine weight {step.max_weight:,.0f}"
            )
        print(f"  pipeline cost (sum of per-step maxima): {result.total_cost:,.0f}\n")

    print(
        "The intermediate result of the first step is the input of the second, "
        "so balancing its production (the output-related work) is what keeps "
        "the whole pipeline fast -- the CSIO pipeline cost is the smallest."
    )


if __name__ == "__main__":
    main()
