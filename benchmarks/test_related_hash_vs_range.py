"""Section V (related work): why hash repartitioning fails for band joins.

The paper argues that hash-based equi-join schemes replicate each tuple of
the opposite relation to up to ``2*beta + 1`` machines when forced to handle
a band join of width beta, so their input-related work grows linearly with
the band width, whereas range-partitioned schemes (M-Bucket, EWH) keep
neighbouring keys together.  This benchmark measures the replication factor
and the resulting maximum machine weight of hash repartitioning against CSIO
across band widths.
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import format_rows
from repro.core.weights import BAND_JOIN_WEIGHTS
from repro.engine.cluster import run_partitioned_join
from repro.joins.conditions import BandJoinCondition
from repro.partitioning.ewh import build_ewh_partitioning
from repro.partitioning.hash_repartition import HashRepartitioning

from bench_utils import bench_machines, scaled
import pytest

#: Heavy paper-figure regeneration (seconds to minutes): deselect with
#: ``-m "not slow"`` for a fast signal; CI runs a fast job and a full job.
pytestmark = pytest.mark.slow


BETAS = (0, 1, 2, 4, 8)


def run_sweep():
    machines = bench_machines()
    rng = np.random.default_rng(21)
    size = scaled(8_000)
    keys1 = rng.integers(0, 4 * size, size).astype(float)
    keys2 = rng.integers(0, 4 * size, size).astype(float)

    rows = []
    for beta in BETAS:
        condition = BandJoinCondition(beta=float(beta))
        hash_part = HashRepartitioning(machines, band_width=float(beta))
        hash_exec = run_partitioned_join(
            hash_part, keys1, keys2, condition, rng=np.random.default_rng(0)
        )
        csio_part = build_ewh_partitioning(
            keys1, keys2, condition, machines,
            weight_fn=BAND_JOIN_WEIGHTS, rng=np.random.default_rng(0),
        )
        csio_exec = run_partitioned_join(
            csio_part, keys1, keys2, condition, rng=np.random.default_rng(0)
        )
        rows.append((beta, hash_exec, csio_exec))
    return rows


def test_hash_replication_grows_with_band_width(benchmark, report):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for beta, hash_exec, csio_exec in sweep:
        rows.append(
            [
                str(beta),
                f"{hash_exec.replication_factor:.2f}",
                f"{csio_exec.replication_factor:.2f}",
                f"{hash_exec.max_weight(BAND_JOIN_WEIGHTS):,.0f}",
                f"{csio_exec.max_weight(BAND_JOIN_WEIGHTS):,.0f}",
            ]
        )
    table = format_rows(
        ["beta", "hash repl.", "CSIO repl.", "hash max weight", "CSIO max weight"],
        rows,
    )
    report(
        "related_hash_vs_range",
        f"Section V: hash repartitioning vs CSIO as the band widens (J = {bench_machines()})",
        table,
    )

    # Both produce the same (correct) output.
    for _, hash_exec, csio_exec in sweep:
        assert hash_exec.total_output == csio_exec.total_output

    # Hash replication grows with beta; CSIO's stays essentially flat.
    hash_repl = [h.replication_factor for _, h, _ in sweep]
    csio_repl = [c.replication_factor for _, _, c in sweep]
    assert hash_repl[-1] > hash_repl[0] * 2
    assert max(csio_repl) <= 2.0

    # For wide bands the hash scheme's maximum machine weight is clearly worse.
    _, hash_wide, csio_wide = sweep[-1]
    assert hash_wide.max_weight(BAND_JOIN_WEIGHTS) > csio_wide.max_weight(
        BAND_JOIN_WEIGHTS
    )
