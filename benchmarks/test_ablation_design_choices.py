"""Ablations of the histogram algorithm's design choices (DESIGN.md).

Not a figure of the paper, but the paper's design discussion (sections III-A
to III-D, Appendix A5) motivates three sizing decisions that this benchmark
quantifies on one cost-balanced workload:

* coarsened matrix size ``n_c = 2J`` versus ``J`` and ``3J``;
* sample matrix size ``n_s`` from Lemma 3.1 versus much smaller grids;
* output sample size as a multiple of the candidate MS cells.
"""

from __future__ import annotations

from repro.bench.ablation import (
    coarsened_size_ablation,
    output_sample_ablation,
    sample_matrix_size_ablation,
)
from repro.bench.reporting import format_rows
from repro.sampling.sizes import sample_matrix_size
from repro.workloads.definitions import make_bcb

from bench_utils import bench_machines, scaled
import pytest

#: Heavy paper-figure regeneration (seconds to minutes): deselect with
#: ``-m "not slow"`` for a fast signal; CI runs a fast job and a full job.
pytestmark = pytest.mark.slow



def run_all():
    machines = bench_machines()
    workload = make_bcb(beta=3, small_segment_size=scaled(2_000), seed=14)
    n = max(len(workload.keys1), len(workload.keys2))
    lemma_ns = sample_matrix_size(n, machines)
    return {
        "workload": workload,
        "machines": machines,
        "nc": coarsened_size_ablation(workload, machines, multipliers=(1.0, 2.0, 3.0)),
        "ns": sample_matrix_size_ablation(
            workload, machines, sizes=(max(8, lemma_ns // 8), lemma_ns // 2, lemma_ns)
        ),
        "so": output_sample_ablation(workload, machines, multiples=(0.25, 1.0, 2.0, 4.0)),
    }


def test_ablation_design_choices(benchmark, report):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for group in ("nc", "ns", "so"):
        for row in results[group]:
            rows.append(
                [
                    row.knob,
                    f"{row.value:g}",
                    f"{row.join_cost:,.0f}",
                    f"{row.total_cost:,.0f}",
                    f"{row.build_seconds:.3f}",
                ]
            )
    table = format_rows(
        ["knob", "value", "join cost", "total cost", "build (s)"], rows
    )
    report(
        "ablation_design_choices",
        f"Ablations of the histogram algorithm's sizing choices "
        f"({results['workload'].name}, J = {results['machines']})",
        table,
    )

    # Every configuration still produces correct output -- the knobs trade
    # efficiency against balance, never correctness.
    for group in ("nc", "ns", "so"):
        for row in results[group]:
            assert row.result.output_correct

    # n_c = 2J balances at least as well as n_c = J (the paper's argument for
    # lessening the grid-partitioning accuracy loss).
    nc_rows = {row.value: row for row in results["nc"]}
    assert nc_rows[2.0].join_cost <= 1.05 * nc_rows[1.0].join_cost

    # The Lemma 3.1 sample matrix stays competitive with much coarser grids;
    # at laptop scale sampling noise can favour either side by a little, so
    # the check is a sanity band rather than a strict ordering.
    ns_rows = results["ns"]
    assert ns_rows[-1].join_cost <= 1.25 * ns_rows[0].join_cost
