"""Streaming extension: crash recovery and mid-stream elasticity.

A long-running streaming join cannot assume its fleet survives the stream.
This benchmark drives the same fixed-seed drifting stream through three
lifecycles and pins that elasticity is *free of behavioural cost*:

* **uninterrupted** -- the plain engine run, the reference;
* **crash + restore** -- a :class:`~repro.streaming.testing.CrashingBackend`
  kills the fleet mid-stream (work call 19, around batch 18);
  :func:`~repro.streaming.checkpoint.run_resilient` restores the run from
  its last periodic checkpoint (every 6 batches) onto a fresh backend and
  replays the source.  The recovered run must be **bit-identical** to the
  uninterrupted one -- same per-batch output deltas, loads, migration
  plans -- with exactly one restore on the books;
* **resize mid-stream** -- the stepwise engine grows its fleet 8 -> 12 at
  the halfway batch through the same partial-migration machinery a drift
  rebuild uses, and still counts every output pair exactly once.

The golden commits the summary table verbatim (fixed seeds, simulated
backend, deterministic cost model); the elastic columns (``ckpts``,
``restores``, ``resizes``) appear precisely because these runs checkpoint,
restore and resize -- plain benchmarks keep the historical column set.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_streaming_table
from repro.core.weights import BAND_JOIN_WEIGHTS
from repro.joins.conditions import BandJoinCondition
from repro.streaming import (
    DriftAdaptiveEWHPolicy,
    DriftDetector,
    DriftingZipfSource,
    SimulatedBackend,
    StreamingJoinEngine,
    run_resilient,
)
from repro.streaming.testing import CrashingBackend, assert_equivalent_runs

from bench_utils import scaled

BAND = BandJoinCondition(beta=1.0)
MACHINES = 8
NUM_BATCHES = 24
CRASH_AT_CALL = 19  # ~1 work call per batch: the fleet dies around batch 18
CHECKPOINT_EVERY = 6
RESIZE_AT_BATCH = NUM_BATCHES // 2
RESIZE_TO = 12


def drift_source():
    """The fixed-seed drifting stream every lifecycle replays."""
    return DriftingZipfSource(
        num_batches=NUM_BATCHES,
        tuples_per_batch=scaled(400),
        num_values=scaled(200),
        z_initial=0.1,
        z_final=1.1,
        shift_at_batch=8,
        seed=21,
    )


def adaptive_engine(backend=None):
    """A drift-adaptive engine (fixed seeds) over the given backend."""
    policy = DriftAdaptiveEWHPolicy(
        DriftDetector(threshold=1.3, warmup_batches=2, cooldown_batches=3)
    )
    return StreamingJoinEngine(
        MACHINES,
        BAND,
        BAND_JOIN_WEIGHTS,
        policy=policy,
        backend=backend,
        sample_capacity=1024,
        sample_decay=0.7,
        seed=5,
    )


def test_crash_recovery_and_resize_cost_nothing(benchmark, report):
    def run_all():
        results = {"uninterrupted": adaptive_engine().run(drift_source())}

        crashing = CrashingBackend(
            SimulatedBackend(), crash_at_call=CRASH_AT_CALL
        )
        results["crash+restore"] = run_resilient(
            lambda: adaptive_engine(backend=crashing),
            drift_source(),
            checkpoint_every=CHECKPOINT_EVERY,
        )
        crashing.close()

        grown = adaptive_engine()
        grown.start()
        for batch in drift_source().batches():
            if batch.index == RESIZE_AT_BATCH:
                grown.resize(RESIZE_TO)
            grown.process_batch(batch)
        results["resize 8->12"] = grown.finish()
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    uninterrupted = results["uninterrupted"]
    recovered = results["crash+restore"]
    resized = results["resize 8->12"]

    # Headline: kill-and-restore is bit-identical to never having crashed.
    assert_equivalent_runs(recovered, uninterrupted)
    assert recovered.restores == 1
    assert recovered.checkpoints_taken >= 1
    assert uninterrupted.restores == 0

    # The resized run still counts every output pair exactly once, on the
    # grown fleet, through exactly one mid-stream migration.
    assert resized.output_correct and uninterrupted.output_correct
    assert resized.total_output == uninterrupted.total_output
    assert resized.num_machines == RESIZE_TO
    assert resized.num_resizes == 1
    resize_batches = [
        b.batch_index for b in resized.batches if b.resized_from is not None
    ]
    assert resize_batches == [RESIZE_AT_BATCH]

    restored_at = CHECKPOINT_EVERY * (
        (CRASH_AT_CALL - 1) // CHECKPOINT_EVERY
    )
    report(
        "streaming_recovery",
        "Crash recovery and mid-stream elasticity "
        f"(J = {MACHINES}, {NUM_BATCHES} batches)",
        format_streaming_table(results, golden=True)
        + "\n\nThe crashed fleet died at work call "
        f"{CRASH_AT_CALL} (batch {CRASH_AT_CALL - 1}); run_resilient "
        f"restored from the checkpoint at batch {restored_at - 1} and "
        "replayed the source -- bit-identical to the uninterrupted run "
        "(outputs, loads, migration plans, batch by batch).  The resize "
        f"run grew {MACHINES} -> {RESIZE_TO} machines at batch "
        f"{RESIZE_AT_BATCH} and kept the exact output count.",
    )


if __name__ == "__main__":  # pragma: no cover - manual profiling entry
    pytest.main([__file__, "-v"])
