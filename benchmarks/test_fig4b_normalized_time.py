"""Figure 4b: normalized total time as a function of the output/input ratio.

Sweeps the B_CB band width (which sweeps rho_oi) and reports every operator's
total cost normalised by CSIO's.  The paper's series shows CI starting high
(input costs dominate at small rho_oi) and converging towards CSIO as rho_oi
grows, while CSI starts close to CSIO and degrades; CSIO stays at 1.0 by
construction and is never above either baseline.
"""

from __future__ import annotations

from repro.bench.experiments import compare_operators
from repro.bench.reporting import format_rows
from repro.workloads.definitions import make_bcb

from bench_utils import bench_machines, scaled
import pytest

#: Heavy paper-figure regeneration (seconds to minutes): deselect with
#: ``-m "not slow"`` for a fast signal; CI runs a fast job and a full job.
pytestmark = pytest.mark.slow


BETAS = (1, 2, 3, 4, 8, 16)


def run_sweep():
    machines = bench_machines()
    comparisons = []
    for beta in BETAS:
        workload = make_bcb(beta=beta, small_segment_size=scaled(2_000), seed=11 + beta)
        comparisons.append(compare_operators(workload, num_machines=machines, seed=0))
    return comparisons


def test_figure4b_normalized_total_time(benchmark, report):
    comparisons = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for comparison in comparisons:
        csio = comparison.results["CSIO"].total_cost
        rows.append(
            [
                comparison.workload_name,
                f"{comparison.output_input_ratio:.2f}",
                f"{comparison.results['CI'].total_cost / csio:.2f}",
                f"{comparison.results['CSI'].total_cost / csio:.2f}",
                "1.00",
            ]
        )
    table = format_rows(
        ["join", "rho_oi", "CI / CSIO", "CSI / CSIO", "CSIO"], rows
    )
    report(
        "fig4b_normalized_time",
        f"Figure 4b: normalized total cost vs rho_oi (B_CB sweep, J = {bench_machines()})",
        table,
    )

    # rho_oi grows with the band width.
    ratios = [c.output_input_ratio for c in comparisons]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))

    # CSI never beats CSIO anywhere on the B_CB family; CI never beats it by
    # more than a few percent even at the widest band, where the two schemes
    # converge (the paper's own worst-case tolerance is 1.04x).
    for comparison in comparisons:
        csio = comparison.results["CSIO"].total_cost
        assert comparison.results["CSI"].total_cost >= csio
        assert comparison.results["CI"].total_cost >= 0.9 * csio

    # CI's normalised cost improves (or at least does not degrade) as the
    # output share grows, because its replication overhead loses relevance.
    ci_norm = [
        c.results["CI"].total_cost / c.results["CSIO"].total_cost for c in comparisons
    ]
    assert ci_norm[-1] <= ci_norm[0]
