"""Figure 1: the three schemes on a toy band join.

Regenerates the per-region input/output breakdown of CI (1-Bucket), CSI
(M-Bucket) and CSIO (EWH) for a small band join with join product skew, and
checks the figure's message: CSIO has the smallest maximum region weight.
"""

from __future__ import annotations

from repro.bench.figure1 import run_figure1
from repro.bench.reporting import format_rows


def test_figure1_toy_schemes(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_figure1(num_machines=3, beta=1.0, num_keys=16, seed=1),
        rounds=1, iterations=1,
    )

    rows = []
    for row in result.rows:
        rows.append(
            [
                row.scheme,
                " ".join(str(v) for v in row.per_region_input),
                " ".join(str(v) for v in row.per_region_output),
                f"{row.max_weight:.0f}",
                f"{row.replication_factor:.2f}",
            ]
        )
    table = format_rows(
        ["scheme", "input per region", "output per region", "max w(r)", "repl."],
        rows,
    )
    report(
        "fig1_toy_schemes",
        "Figure 1: CI vs CSI vs CSIO on a toy band join "
        f"(|R1.A - R2.A| <= 1, {len(result.keys1)}x{len(result.keys2)} keys, "
        f"output {result.total_output})",
        table,
    )

    # Every scheme produces the complete output.
    for row in result.rows:
        assert sum(row.per_region_output) == result.total_output
    # The figure's message: the equi-weight histogram minimises the maximum
    # region weight.
    csio = result.row("CSIO").max_weight
    assert csio <= result.row("CI").max_weight
    assert csio <= result.row("CSI").max_weight
    # And CI replicates the most.
    assert result.row("CI").replication_factor >= result.row("CSIO").replication_factor
