"""Streaming extension: backpressure when arrivals outpace the join.

The synchronous engine pulls batches one at a time, so a slow batch stalls
the producer and the system never has to decide what to do with a backlog.
This benchmark runs the drifting-Zipf stream through the backpressured
pipeline against a consumer that is **4x too slow** (one batch arrives per
simulated second, each consumed batch takes four) and compares the four
ways of absorbing the gap, all on the simulated clock so every number is
deterministic:

* **sync** -- the synchronous engine: the baseline every lossless run must
  match bit-for-bit.
* **buffer** (unbounded queue) -- lossless, but the queue grows linearly
  with the consumer's lag: the memory-leak shape of "just buffer it".
* **block@4** (bounded queue of 4, lossless) -- queue memory is flat, but
  the producer pays: its stall time grows linearly with the stream.
* **shed@4** -- queue memory flat *and* no producer stall; the price is
  dropped batches, so output shrinks (and can only shrink).
* **coalesce@4** -- queued batches merge into super-batches: queue memory
  flat, no stall, no loss; the engine catches up in fewer, larger steps,
  paying per-batch overheads once per super-batch.

The ``block@4`` run additionally records the full span tree with a
deterministic :class:`~repro.obs.trace.TickClock` tracer: the
bit-identity assertion against the synchronous run then doubles as proof
that tracing is behaviourally invisible, the exported Chrome trace is
validated in-test and written to
``benchmarks/results/streaming_backpressure_trace.json`` (CI uploads it
as an artifact; open it in https://ui.perfetto.dev), and its
tick-deterministic summary is appended to the report golden.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.reporting import (
    format_streaming_batches,
    format_streaming_table,
    format_trace_summary,
)
from repro.core.weights import BAND_JOIN_WEIGHTS
from repro.joins.conditions import BandJoinCondition
from repro.obs import TickClock, Tracer
from repro.streaming import (
    DriftAdaptiveEWHPolicy,
    DriftDetector,
    DriftingZipfSource,
    RateLimitedSource,
    StreamingJoinEngine,
    StreamingPipeline,
)
from repro.streaming.testing import assert_equivalent_runs

from bench_utils import scaled

TRACE_PATH = Path(__file__).parent / "results" / "streaming_backpressure_trace.json"

BAND = BandJoinCondition(beta=1.0)
NUM_BATCHES = 24
QUEUE = 4
ARRIVAL_SECONDS = 1.0
SERVICE_SECONDS = 4.0  # the consumer is 4x too slow


def drift_source():
    """The drifting-Zipf stream shared by every run."""
    return DriftingZipfSource(
        num_batches=NUM_BATCHES,
        tuples_per_batch=scaled(400),
        num_values=scaled(200),
        z_initial=0.2,
        z_final=1.0,
        shift_at_batch=9,
        seed=42,
    )


def adaptive_engine(tracer=None):
    """A fresh drift-adaptive engine over 8 machines."""
    policy = DriftAdaptiveEWHPolicy(
        DriftDetector(threshold=1.3, warmup_batches=2, cooldown_batches=4)
    )
    return StreamingJoinEngine(
        8,
        BAND,
        BAND_JOIN_WEIGHTS,
        policy=policy,
        sample_capacity=2048,
        sample_decay=0.7,
        seed=3,
        tracer=tracer,
    )


def piped(backpressure, queue, tracer=None):
    """One pipelined run of the stream on the simulated clock."""
    return StreamingPipeline(
        RateLimitedSource(drift_source(), ARRIVAL_SECONDS),
        adaptive_engine(tracer),
        queue_batches=queue,
        backpressure=backpressure,
        mode="simulated",
        service_model=SERVICE_SECONDS,
    ).run()


def test_backpressure_policies_under_a_slow_consumer(benchmark, report):
    tracers = []

    def run_all():
        # The block@4 run is traced with a deterministic tick clock: the
        # bit-identity check against the untraced sync run below is then
        # also the proof that tracing is behaviourally invisible.
        tracer = Tracer(clock=TickClock())
        tracers.append(tracer)
        return {
            "sync": adaptive_engine().run(drift_source()),
            "buffer": piped("block", None),
            "block@4": piped("block", QUEUE, tracer=tracer),
            "shed@4": piped("shed", QUEUE),
            "coalesce@4": piped("coalesce", QUEUE),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    tracer = tracers[-1]
    report(
        "streaming_backpressure",
        "Backpressured pipeline vs a 4x-slow consumer (J = 8, "
        f"queue = {QUEUE} batches, simulated clock)",
        format_streaming_table(results, golden=True)
        + "\n\nPer-batch max-machine load, resident state and queue depth\n\n"
        + format_streaming_batches(results)
        + "\n\nblock@4 trace summary (deterministic tick clock; "
        "seconds are ticks)\n\n"
        + format_trace_summary(tracer),
    )

    sync = results["sync"]
    buffered = results["buffer"]
    block = results["block@4"]
    shed = results["shed@4"]
    coalesce = results["coalesce@4"]

    # Lossless backpressure is invisible to the join: the block run is
    # behaviourally bit-identical to the synchronous engine -- outputs,
    # loads, evictions, migration plans -- whatever the queue did.
    assert_equivalent_runs(block, sync)

    # Every run's engine verified the exact join of the batches it
    # received (shed included: its history is smaller, not wrong).
    assert all(r.output_correct for r in results.values())

    # The unbounded buffer "solves" backpressure by leaking: its queue
    # grows linearly with the consumer's lag (the producer finishes at
    # t=24 while the consumer is ~6 batches in), far past any bound.
    assert buffered.producer_stall_seconds == 0.0
    assert buffered.peak_queue_depth >= (3 * NUM_BATCHES) // 4 - 2
    assert buffered.peak_queue_depth > 3 * QUEUE

    # The bounded lossless queue keeps memory flat and pays with stall:
    # the producer loses about (SERVICE - ARRIVAL) seconds per batch, a
    # stall that grows linearly with the stream.
    assert block.peak_queue_depth <= QUEUE
    steady = (SERVICE_SECONDS - ARRIVAL_SECONDS) * (NUM_BATCHES - 2 * QUEUE)
    assert block.producer_stall_seconds >= steady
    # ... and the stall accrues throughout: the second half of the
    # consumed stream still stalls the producer (it is not a start-up
    # transient).
    second_half = block.batches[NUM_BATCHES // 2 :]
    assert sum(b.producer_stall_seconds for b in second_half) >= steady / 3

    # Shedding keeps both flat -- no queue growth, no stall -- and drops
    # roughly 3 of every 4 batches; output can only shrink.
    assert shed.peak_queue_depth <= QUEUE
    assert shed.producer_stall_seconds == 0.0
    assert shed.total_batches_shed >= NUM_BATCHES // 2
    assert shed.num_batches + shed.total_batches_shed == NUM_BATCHES
    assert shed.total_output < sync.total_output

    # Coalescing keeps both flat *without* losing anything: every tuple is
    # consumed, in fewer, larger steps, and over the unbounded window the
    # total output is exactly the synchronous engine's.
    assert coalesce.peak_queue_depth <= QUEUE
    assert coalesce.producer_stall_seconds == 0.0
    assert coalesce.total_tuples_shed == 0
    assert coalesce.total_tuples == sync.total_tuples
    assert coalesce.num_batches < NUM_BATCHES
    assert coalesce.total_output == sync.total_output

    # Every simulated queue quantity is tagged with its clock domain, and
    # the sync run (no queue at all) stays fully real-clock.
    assert all(
        r.clock_domains == "queue:sim"
        for name, r in results.items()
        if name != "sync"
    )
    assert sync.clock_domains == "real"

    # Export the block@4 span tree as a Chrome trace, prove it is
    # well-formed trace-event JSON, and leave it in benchmarks/results/
    # for CI to upload (and humans to open in https://ui.perfetto.dev).
    TRACE_PATH.parent.mkdir(exist_ok=True)
    tracer.write_chrome_trace(str(TRACE_PATH))
    payload = json.loads(TRACE_PATH.read_text(encoding="utf-8"))
    events = payload["traceEvents"]
    assert isinstance(events, list) and events
    for event in events:
        assert {"name", "ph", "pid", "tid"} <= set(event)
        assert event["ph"] in ("X", "M")
        if event["ph"] == "X":
            assert "cat" in event
            assert event["ts"] >= 0
            assert event["dur"] >= 0
    names = {event["name"] for event in events}
    assert {"run", "batch", "route", "incremental_count", "drift_decide"} <= names
    # One complete event per recorded span, plus track-name metadata.
    assert sum(1 for e in events if e["ph"] == "X") == len(tracer.spans)
