"""Section VI-E: worst-case scenarios and the high-selectivity fallback.

Two claims are benchmarked:

* **Input-dominated / no-skew corner.**  For B_ICD the join product skew is
  negligible, so CSIO's advantage over CSI shrinks to almost nothing -- the
  paper reports a worst case of CSIO being 1.04x *slower* in total time.  The
  benchmark verifies CSIO stays within a few percent of CSI there.
* **High-selectivity fallback.**  The adaptive operator always starts by
  building the CSIO scheme and falls back to CI when the build exceeds a
  time-per-input threshold.  The benchmark runs it with a generous and with a
  tiny threshold and verifies both paths produce correct output, and that the
  wasted statistics work charged by the fallback path is a small fraction of
  CI's total cost.
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import format_rows
from repro.engine.adaptive import AdaptiveOperator
from repro.engine.operators import CIOperator, CSIOOperator, CSIOperator
from repro.workloads.definitions import make_beocd, make_bicd

from bench_utils import bench_machines, scaled
import pytest

#: Heavy paper-figure regeneration (seconds to minutes): deselect with
#: ``-m "not slow"`` for a fast signal; CI runs a fast job and a full job.
pytestmark = pytest.mark.slow



def run_all():
    machines = bench_machines()
    bicd = make_bicd(num_orders=scaled(10_000), seed=7)
    beocd = make_beocd(num_orders=scaled(20_000), seed=7)

    results = {}
    results["bicd_csi"] = CSIOperator(machines).run(
        bicd.keys1, bicd.keys2, bicd.condition, bicd.weight_fn,
        rng=np.random.default_rng(0),
    )
    results["bicd_csio"] = CSIOOperator(machines).run(
        bicd.keys1, bicd.keys2, bicd.condition, bicd.weight_fn,
        rng=np.random.default_rng(0),
    )
    results["beocd_ci"] = CIOperator(machines).run(
        beocd.keys1, beocd.keys2, beocd.condition, beocd.weight_fn,
        rng=np.random.default_rng(0),
    )

    keep = AdaptiveOperator(machines, fallback_seconds_per_million=10_000.0)
    results["adaptive_keep"] = keep.run(
        beocd.keys1, beocd.keys2, beocd.condition, beocd.weight_fn,
        rng=np.random.default_rng(0),
    )
    results["adaptive_keep_fell_back"] = keep.fell_back

    fall = AdaptiveOperator(machines, fallback_seconds_per_million=1e-9)
    results["adaptive_fall"] = fall.run(
        beocd.keys1, beocd.keys2, beocd.condition, beocd.weight_fn,
        rng=np.random.default_rng(0),
    )
    results["adaptive_fall_fell_back"] = fall.fell_back
    return results


def test_worst_case_and_fallback(benchmark, report):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        ["B_ICD", "CSI", f"{results['bicd_csi'].total_cost:,.0f}", "-"],
        ["B_ICD", "CSIO", f"{results['bicd_csio'].total_cost:,.0f}", "-"],
        ["BE_OCD", "CI", f"{results['beocd_ci'].total_cost:,.0f}", "-"],
        [
            "BE_OCD", "adaptive (kept CSIO)",
            f"{results['adaptive_keep'].total_cost:,.0f}",
            str(results["adaptive_keep_fell_back"]),
        ],
        [
            "BE_OCD", "adaptive (forced fallback)",
            f"{results['adaptive_fall'].total_cost:,.0f}",
            str(results["adaptive_fall_fell_back"]),
        ],
    ]
    report(
        "worst_case_fallback",
        f"Section VI-E: worst cases and the high-selectivity fallback (J = {bench_machines()})",
        format_rows(["join", "operator", "total cost", "fell back"], rows),
    )

    # Worst case: CSIO within a few percent of CSI on the no-JPS corner
    # (the paper's bound is 1.04x; allow a little more at laptop scale).
    assert results["bicd_csio"].total_cost <= 1.10 * results["bicd_csi"].total_cost

    # The fallback decision fires only under the tiny threshold.
    assert not results["adaptive_keep_fell_back"]
    assert results["adaptive_fall_fell_back"]
    assert results["adaptive_keep"].output_correct
    assert results["adaptive_fall"].output_correct

    # The wasted CSIO statistics charged by the fallback path are a small
    # fraction of CI's total cost (the paper reports about 4%).
    wasted = results["adaptive_fall"].total_cost - results["beocd_ci"].total_cost
    assert wasted >= 0
    assert wasted <= 0.25 * results["beocd_ci"].total_cost
