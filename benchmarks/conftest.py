"""Shared fixtures of the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation
section (section VI).  The regenerated rows/series are printed and also
written to ``benchmarks/results/<name>.txt`` so they survive pytest's output
capturing; EXPERIMENTS.md records the paper-vs-measured comparison based on
those files.

Scale knobs (environment variables):

``REPRO_BENCH_SCALE``
    Multiplier on the default laptop-scale workload sizes (default ``1.0``).
``REPRO_BENCH_MACHINES``
    The number of machines ``J`` used by the single-J experiments
    (default ``16``; the paper uses 32 on a physical cluster).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from bench_utils import bench_machines

# Fault-injection factory fixtures, shared with the unit-test suite: the
# recovery benchmark kills a backend mid-stream through the same wrappers.
from repro.streaming.testing import (  # noqa: F401
    crashing_backend,
    flaky_backend,
)

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def no_leaked_shm_segments():
    """Fail any benchmark that leaves a sticky-backend shm segment behind.

    Mirrors the unit-test suite's fixture: every arena segment is named
    ``rshm-...`` and must be unlinked by ``close()``; a leftover in
    ``/dev/shm`` leaks host memory past the process.
    """
    from repro.streaming.shm import SEGMENT_PREFIX

    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        yield
        return
    before = {path.name for path in shm_dir.glob(f"{SEGMENT_PREFIX}-*")}
    yield
    after = {path.name for path in shm_dir.glob(f"{SEGMENT_PREFIX}-*")}
    leaked = after - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture(scope="session")
def machines() -> int:
    """``J`` for the single-J experiments."""
    return bench_machines()


@pytest.fixture(scope="session")
def report():
    """Persist a regenerated table to ``benchmarks/results`` and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, title: str, body: str) -> None:
        text = f"{title}\n{'=' * len(title)}\n{body}\n"
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        print(f"\n{text}")

    return _write
