"""Shared fixtures of the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation
section (section VI).  The regenerated rows/series are printed and also
written to ``benchmarks/results/<name>.txt`` so they survive pytest's output
capturing; EXPERIMENTS.md records the paper-vs-measured comparison based on
those files.

Scale knobs (environment variables):

``REPRO_BENCH_SCALE``
    Multiplier on the default laptop-scale workload sizes (default ``1.0``).
``REPRO_BENCH_MACHINES``
    The number of machines ``J`` used by the single-J experiments
    (default ``16``; the paper uses 32 on a physical cluster).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from bench_utils import bench_machines

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def machines() -> int:
    """``J`` for the single-J experiments."""
    return bench_machines()


@pytest.fixture(scope="session")
def report():
    """Persist a regenerated table to ``benchmarks/results`` and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, title: str, body: str) -> None:
        text = f"{title}\n{'=' * len(title)}\n{body}\n"
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        print(f"\n{text}")

    return _write
