"""Streaming extension: sliding windows and incremental per-region counting.

The unbounded streaming engine retains the full join history on every
machine and (in its legacy ``counting="recount"`` mode) re-counts each
region's output from scratch every batch, so both memory and per-batch cost
grow with the stream.  This benchmark demonstrates the two claims of the
windowed engine on a long drifting-Zipf run:

* **Bounded memory** -- under a sliding window the peak resident state
  plateaus (flat across the tail of the stream) while the unbounded
  engine's grows linearly, and every eviction is charged into the metrics
  (tuples evicted, bytes freed).
* **Incremental counting** -- maintaining each region's state sorted by
  join key turns the per-batch output delta into ``O(new log state)``
  binary searches.  The per-batch join output is bit-identical to the
  legacy full recount on the same seed, and at long horizons the
  incremental counter's measured per-batch join time is at least twice as
  fast (in practice far more: the recount's work grows with the retained
  state, the incremental counter's only with the batch).
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import (
    format_streaming_batches,
    format_streaming_table,
)
from repro.core.weights import BAND_JOIN_WEIGHTS
from repro.joins.conditions import BandJoinCondition
from repro.streaming import (
    DriftAdaptiveEWHPolicy,
    DriftDetector,
    DriftingZipfSource,
    StaticEWHPolicy,
    StreamingJoinEngine,
)

from bench_utils import scaled

BAND = BandJoinCondition(beta=1.0)
NUM_BATCHES = 36


def long_drift_source():
    """A long drifting-Zipf stream: the horizon where state growth hurts."""
    return DriftingZipfSource(
        num_batches=NUM_BATCHES,
        tuples_per_batch=scaled(500),
        num_values=scaled(300),
        z_initial=0.1,
        z_final=0.9,
        shift_at_batch=12,
        seed=42,
    )


def adaptive_engine(window):
    """A drift-adaptive engine over 8 machines with the given window."""
    policy = DriftAdaptiveEWHPolicy(
        DriftDetector(threshold=1.3, warmup_batches=2, cooldown_batches=4)
    )
    return StreamingJoinEngine(
        8,
        BAND,
        BAND_JOIN_WEIGHTS,
        policy=policy,
        window=window,
        sample_capacity=2048,
        sample_decay=0.7,
        seed=3,
    )


def test_sliding_window_bounds_resident_state(benchmark, report):
    """A sliding window caps resident state; unbounded grows linearly."""

    def run_pair():
        return {
            "CSIO-adaptive/unbounded": adaptive_engine(None).run(
                long_drift_source()
            ),
            "CSIO-adaptive/batches:6": adaptive_engine("batches:6").run(
                long_drift_source()
            ),
        }

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    report(
        "streaming_window_memory",
        "Sliding-window streaming join: resident state under a long drift "
        "(J = 8)",
        format_streaming_table(results)
        + "\n\nPer-batch max-machine load and resident state\n\n"
        + format_streaming_batches(results),
    )

    unbounded = results["CSIO-adaptive/unbounded"]
    windowed = results["CSIO-adaptive/batches:6"]

    # The unbounded run is the exact full-history join; the windowed run
    # forgets pairs whose halves never coexisted, so it produces less.
    assert unbounded.output_correct
    assert 0 < windowed.total_output < unbounded.total_output

    # Every eviction is accounted: entries dropped and bytes freed.
    assert unbounded.total_evicted == 0
    assert windowed.total_evicted > 0
    assert windowed.total_bytes_freed == 16 * windowed.total_evicted

    # Headline claim: the window bounds resident state.  Compare the state
    # held at mid-stream against the end of the stream: the unbounded
    # engine keeps growing (linear in the stream), the windowed engine has
    # plateaued (flat across the tail, modulo replication changes on a
    # repartitioning).
    resident_unbounded = [b.resident_tuples for b in unbounded.batches]
    resident_windowed = [b.resident_tuples for b in windowed.batches]
    mid = NUM_BATCHES // 2
    assert resident_unbounded[-1] >= 1.5 * resident_unbounded[mid]
    assert resident_windowed[-1] <= 1.25 * resident_windowed[mid]
    # The tail itself is flat: no creeping growth across the last third.
    tail = resident_windowed[2 * NUM_BATCHES // 3 :]
    assert max(tail) <= 1.3 * min(tail)
    # And the bound is a real saving against the unbounded engine.
    assert windowed.peak_resident_tuples < 0.6 * unbounded.peak_resident_tuples


def test_incremental_counting_matches_recount_and_is_faster(benchmark, report):
    """Incremental deltas are bit-identical to the recount, and >= 2x faster.

    Same seed, same stationary-skew stream, same static-EWH policy -- the
    only difference is how each batch's output delta is computed: the
    legacy full per-region recount (``O(state log state)`` per batch) versus
    binary-searching just the arrivals against the maintained sorted state
    (``O(new log state)``).  Outputs and loads must match exactly; at the
    long-horizon tail the incremental counter must be at least twice as
    fast per batch.
    """

    def source():
        return DriftingZipfSource(
            num_batches=72,
            tuples_per_batch=scaled(800),
            num_values=scaled(400),
            z_initial=0.6,
            z_final=0.6,
            seed=7,
        )

    def engine(counting):
        return StreamingJoinEngine(
            8,
            BAND,
            BAND_JOIN_WEIGHTS,
            policy=StaticEWHPolicy(),
            counting=counting,
            sample_capacity=2048,
            seed=5,
        )

    def run_both():
        return {
            "CSIO-static/recount": engine("recount").run(source()),
            "CSIO-static/incremental": engine("incremental").run(source()),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    recount = results["CSIO-static/recount"]
    incremental = results["CSIO-static/incremental"]

    # Bit-identical outputs: total, per batch, and per machine.
    assert recount.output_correct and incremental.output_correct
    assert incremental.total_output == recount.total_output
    for inc_batch, rec_batch in zip(incremental.batches, recount.batches):
        assert inc_batch.output_delta == rec_batch.output_delta
        if rec_batch.per_machine_output_delta is None:
            assert inc_batch.per_machine_output_delta is None
        else:
            np.testing.assert_array_equal(
                inc_batch.per_machine_output_delta,
                rec_batch.per_machine_output_delta,
            )
        np.testing.assert_array_equal(
            inc_batch.per_machine_load, rec_batch.per_machine_load
        )

    # The speedup claim, measured on the backend's own join timings over
    # the last third of the stream (where the retained state dwarfs a
    # batch): recount work grows with the state, incremental with the batch.
    tail = len(recount.batches) * 2 // 3
    recount_tail = sum(b.join_seconds for b in recount.batches[tail:])
    incremental_tail = sum(b.join_seconds for b in incremental.batches[tail:])
    speedup = recount_tail / incremental_tail
    report(
        "streaming_window_counting",
        "Incremental per-region counting vs full recount (J = 8)",
        format_streaming_table(results)
        + f"\n\nPer-batch join time over the last third of the stream: "
        f"recount {recount_tail * 1e3:.2f} ms, "
        f"incremental {incremental_tail * 1e3:.2f} ms "
        f"(speedup {speedup:.1f}x)",
    )
    assert speedup >= 2.0
