"""Streaming extension: sliding windows and incremental per-region counting.

The unbounded streaming engine retains the full join history on every
machine and (in its legacy ``counting="recount"`` mode) re-counts each
region's output from scratch every batch, so both memory and per-batch cost
grow with the stream.  This benchmark demonstrates the two claims of the
windowed engine on a long drifting-Zipf run:

* **Bounded memory** -- under a sliding window the peak resident state
  plateaus (flat across the tail of the stream) while the unbounded
  engine's grows linearly, and every eviction is charged into the metrics
  (tuples evicted, bytes freed).
* **Incremental counting** -- maintaining each region's state sorted by
  join key turns the per-batch output delta into ``O(new log state)``
  binary searches.  The per-batch join output is bit-identical to the
  legacy full recount on the same seed, and at long horizons the
  incremental counter's measured per-batch join time is at least twice as
  fast (in practice far more: the recount's work grows with the retained
  state, the incremental counter's only with the batch).
"""

from __future__ import annotations

from repro.bench.reporting import (
    bucket_ratio,
    bucket_seconds,
    format_streaming_batches,
    format_streaming_table,
)
from repro.core.weights import BAND_JOIN_WEIGHTS
from repro.joins.conditions import BandJoinCondition
from repro.streaming import (
    DriftAdaptiveEWHPolicy,
    DriftDetector,
    DriftingZipfSource,
    StaticEWHPolicy,
    StreamingJoinEngine,
)
from repro.streaming.testing import assert_equivalent_runs

from bench_utils import scaled

BAND = BandJoinCondition(beta=1.0)
NUM_BATCHES = 36


def long_drift_source():
    """A long drifting-Zipf stream: the horizon where state growth hurts."""
    return DriftingZipfSource(
        num_batches=NUM_BATCHES,
        tuples_per_batch=scaled(500),
        num_values=scaled(300),
        z_initial=0.1,
        z_final=0.9,
        shift_at_batch=12,
        seed=42,
    )


def adaptive_engine(window, compact=True):
    """A drift-adaptive engine over 8 machines with the given window."""
    policy = DriftAdaptiveEWHPolicy(
        DriftDetector(threshold=1.3, warmup_batches=2, cooldown_batches=4)
    )
    return StreamingJoinEngine(
        8,
        BAND,
        BAND_JOIN_WEIGHTS,
        policy=policy,
        window=window,
        compact_history=compact,
        sample_capacity=2048,
        sample_decay=0.7,
        seed=3,
    )


def test_sliding_window_bounds_resident_state(benchmark, report):
    """A sliding window caps resident state; unbounded grows linearly."""

    def run_pair():
        return {
            "CSIO-adaptive/unbounded": adaptive_engine(None).run(
                long_drift_source()
            ),
            "CSIO-adaptive/batches:6": adaptive_engine("batches:6").run(
                long_drift_source()
            ),
        }

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    report(
        "streaming_window_memory",
        "Sliding-window streaming join: resident state under a long drift "
        "(J = 8)",
        format_streaming_table(results, golden=True)
        + "\n\nPer-batch max-machine load and resident state\n\n"
        + format_streaming_batches(results),
    )

    unbounded = results["CSIO-adaptive/unbounded"]
    windowed = results["CSIO-adaptive/batches:6"]

    # The unbounded run is the exact full-history join; the windowed run
    # forgets pairs whose halves never coexisted, so it produces less.
    assert unbounded.output_correct
    assert 0 < windowed.total_output < unbounded.total_output

    # Every eviction is accounted: entries dropped and bytes freed.
    assert unbounded.total_evicted == 0
    assert windowed.total_evicted > 0
    assert windowed.total_bytes_freed == 16 * windowed.total_evicted

    # Headline claim: the window bounds resident state.  Compare the state
    # held at mid-stream against the end of the stream: the unbounded
    # engine keeps growing (linear in the stream), the windowed engine has
    # plateaued (flat across the tail, modulo replication changes on a
    # repartitioning).
    resident_unbounded = [b.resident_tuples for b in unbounded.batches]
    resident_windowed = [b.resident_tuples for b in windowed.batches]
    mid = NUM_BATCHES // 2
    assert resident_unbounded[-1] >= 1.5 * resident_unbounded[mid]
    assert resident_windowed[-1] <= 1.25 * resident_windowed[mid]
    # The tail itself is flat: no creeping growth across the last third.
    tail = resident_windowed[2 * NUM_BATCHES // 3 :]
    assert max(tail) <= 1.3 * min(tail)
    # And the bound is a real saving against the unbounded engine.
    assert windowed.peak_resident_tuples < 0.6 * unbounded.peak_resident_tuples


def test_history_compaction_keeps_windowed_memory_flat(benchmark, report):
    """Compacting the history makes a windowed run's *total* memory O(window).

    The sliding window alone bounds the per-machine join state, but the
    pre-compaction engine kept the flat per-side key histories, the live
    index sets and the batch-start lists for the whole run -- an O(stream)
    leak that ``resident_bytes`` now measures.  Three long-horizon runs on
    the same seeded drifting stream:

    * **unbounded** -- no window: everything grows linearly (and must, the
      full history is the verification ground truth);
    * **batches:8 compacted** (the default) -- total resident memory is
      flat across the stream tail;
    * **batches:8 leaky** (``compact_history=False``, the pre-compaction
      engine) -- join state is bounded but total memory still grows
      linearly with the stream.

    Compaction must be pure bookkeeping: the compacted run's outputs,
    loads, evictions and migration plans are bit-identical to the leaky
    reference on the same stream.
    """

    def run_trio():
        return {
            "CSIO-adaptive/unbounded": adaptive_engine(None).run(
                long_drift_source()
            ),
            "CSIO-adaptive/batches:8": adaptive_engine("batches:8").run(
                long_drift_source()
            ),
            "CSIO-adaptive/batches:8/leaky": adaptive_engine(
                "batches:8", compact=False
            ).run(long_drift_source()),
        }

    results = benchmark.pedantic(run_trio, rounds=1, iterations=1)
    report(
        "streaming_window_history",
        "History compaction: total resident memory (state + history + live "
        "sets) under a long drift (J = 8)",
        format_streaming_table(results, golden=True)
        + "\n\nPer-batch max-machine load, resident state and total memory\n\n"
        + format_streaming_batches(results),
    )

    unbounded = results["CSIO-adaptive/unbounded"]
    compacted = results["CSIO-adaptive/batches:8"]
    leaky = results["CSIO-adaptive/batches:8/leaky"]

    # Compaction is invisible to everything but the footprint.
    assert_equivalent_runs(compacted, leaky)

    # The leak, quantified: the leaky engine ends holding the entire
    # stream's keys; the compacted engine holds the window's worth.
    per_side = scaled(500)
    assert leaky.batches[-1].resident_history_tuples == 2 * per_side * NUM_BATCHES
    assert leaky.total_history_trimmed == 0
    assert compacted.batches[-1].resident_history_tuples == 2 * per_side * 8
    assert compacted.total_history_trimmed > 0

    # Headline claim: total resident memory is flat across the compacted
    # run's tail, while both the unbounded and the leaky windowed run grow
    # linearly.
    mem_unbounded = [b.resident_bytes for b in unbounded.batches]
    mem_compacted = [b.resident_bytes for b in compacted.batches]
    mem_leaky = [b.resident_bytes for b in leaky.batches]
    mid = NUM_BATCHES // 2
    assert mem_unbounded[-1] >= 1.5 * mem_unbounded[mid]
    # The leaky run's bounded join state dilutes a ratio test, but its
    # absolute growth across the tail is the history leak itself: 8 bytes
    # per key, two sides, every batch, forever.
    leaked_bytes = 8 * 2 * per_side * (NUM_BATCHES - 1 - mid)
    assert mem_leaky[-1] - mem_leaky[mid] >= 0.8 * leaked_bytes
    assert mem_compacted[-1] <= 1.25 * mem_compacted[mid]
    tail = mem_compacted[2 * NUM_BATCHES // 3 :]
    assert max(tail) <= 1.3 * min(tail)
    # And the saving is real and widening: by end of stream the compacted
    # engine holds well under two thirds of the leaky engine's bytes (both
    # runs' transient peaks coincide at a repartitioning state spike, so
    # the end-of-run gap, not the peak, is the honest comparison).
    assert mem_compacted[-1] < 0.6 * mem_leaky[-1]


def test_incremental_counting_matches_recount_and_is_faster(benchmark, report):
    """Incremental deltas are bit-identical to the recount, and >= 2x faster.

    Same seed, same stationary-skew stream, same static-EWH policy -- the
    only difference is how each batch's output delta is computed: the
    legacy full per-region recount (``O(state log state)`` per batch) versus
    binary-searching just the arrivals against the maintained sorted state
    (``O(new log state)``).  Outputs and loads must match exactly; at the
    long-horizon tail the incremental counter must be at least twice as
    fast per batch.
    """

    def source():
        return DriftingZipfSource(
            num_batches=72,
            tuples_per_batch=scaled(800),
            num_values=scaled(400),
            z_initial=0.6,
            z_final=0.6,
            seed=7,
        )

    def engine(counting):
        return StreamingJoinEngine(
            8,
            BAND,
            BAND_JOIN_WEIGHTS,
            policy=StaticEWHPolicy(),
            counting=counting,
            sample_capacity=2048,
            seed=5,
        )

    def run_both():
        return {
            "CSIO-static/recount": engine("recount").run(source()),
            "CSIO-static/incremental": engine("incremental").run(source()),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    recount = results["CSIO-static/recount"]
    incremental = results["CSIO-static/incremental"]

    # Bit-identical outputs: total, per batch, and per machine.
    assert recount.output_correct and incremental.output_correct
    assert_equivalent_runs(incremental, recount)

    # The speedup claim, measured on the backend's own join timings over
    # the last third of the stream (where the retained state dwarfs a
    # batch): recount work grows with the state, incremental with the batch.
    tail = len(recount.batches) * 2 // 3
    recount_tail = sum(b.join_seconds for b in recount.batches[tail:])
    incremental_tail = sum(b.join_seconds for b in incremental.batches[tail:])
    speedup = recount_tail / incremental_tail
    # Bucketed, not exact: these are measured wall times and the golden
    # file must be byte-stable across regenerations.
    report(
        "streaming_window_counting",
        "Incremental per-region counting vs full recount (J = 8)",
        format_streaming_table(results, golden=True)
        + f"\n\nPer-batch join time over the last third of the stream: "
        f"recount {bucket_seconds(recount_tail)}, "
        f"incremental {bucket_seconds(incremental_tail)} "
        f"(speedup {bucket_ratio(speedup)})",
    )
    assert speedup >= 2.0
