"""Streaming extension: partitioned joins under mid-stream skew drift.

The batch pipeline builds its partitioning once, from a snapshot of the data.
This benchmark runs the online subsystem over a stream whose Zipf skew shifts
mid-stream (near-uniform, then a hot spot at a new location) and compares:

* **CI-static** -- 1-Bucket built once; immune to skew, pays replication.
* **CSIO-static** -- the equi-weight histogram built from the stream prefix
  and frozen: the online analogue of trusting a stale batch build.
* **CSIO-adaptive** -- the same initial build plus drift-triggered rebuilds
  from the incrementally maintained sample state, paying an explicit state
  migration cost for every repartitioning.

The claims verified: the drift-adaptive engine achieves a lower cumulative
max-machine load than the frozen histogram while accounting a nonzero
migration volume; partial repartitioning migrates strictly fewer tuples than
the full positional rebuild on the same skew shift with identical join
output; and every engine still produces the exact join output.
"""

from __future__ import annotations

from repro.bench.reporting import (
    format_streaming_batches,
    format_streaming_table,
)
from repro.core.weights import BAND_JOIN_WEIGHTS
from repro.joins.conditions import BandJoinCondition
from repro.streaming import (
    DriftAdaptiveEWHPolicy,
    DriftDetector,
    DriftingZipfSource,
    StaticEWHPolicy,
    StaticOneBucketPolicy,
    compare_streaming_schemes,
)

from bench_utils import bench_machines, scaled


def drift_source():
    return DriftingZipfSource(
        num_batches=20,
        tuples_per_batch=scaled(1_000),
        num_values=scaled(500),
        z_initial=0.1,
        z_final=0.9,
        shift_at_batch=7,
        seed=42,
    )


def adaptive_policy():
    return DriftAdaptiveEWHPolicy(
        DriftDetector(threshold=1.3, warmup_batches=2, cooldown_batches=3)
    )


def run_sweep(repartition_mode="partial"):
    machines = bench_machines()
    policies = {
        "CI-static": StaticOneBucketPolicy(machines),
        "CSIO-static": StaticEWHPolicy(),
        "CSIO-adaptive": adaptive_policy(),
    }
    return compare_streaming_schemes(
        drift_source(),
        machines,
        BandJoinCondition(beta=1.0),
        BAND_JOIN_WEIGHTS,
        policies=policies,
        repartition_mode=repartition_mode,
        sample_capacity=2048,
        sample_decay=0.7,
        migration_cost_factor=1.0,
        seed=3,
    )


def test_streaming_drift(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    report(
        "streaming_drift",
        f"Streaming joins under mid-stream skew drift (J = {bench_machines()})",
        format_streaming_table(results, golden=True)
        + "\n\nPer-batch max-machine load\n\n"
        + format_streaming_batches(results),
    )

    static = results["CSIO-static"]
    adaptive = results["CSIO-adaptive"]
    one_bucket = results["CI-static"]

    # Every engine produces the exact join output of the full history.
    assert all(r.output_correct for r in results.values())
    outputs = {r.total_output for r in results.values()}
    assert len(outputs) == 1

    # The static schemes never repartition; the adaptive one does, and its
    # migration volume is explicitly nonzero and charged into its load.
    assert static.num_repartitions == 0 and static.total_migrated == 0
    assert one_bucket.num_repartitions == 0 and one_bucket.total_migrated == 0
    assert adaptive.num_repartitions >= 1
    assert adaptive.total_migrated > 0

    # Headline claim: under a mid-stream skew shift, drift-triggered
    # repartitioning beats the frozen histogram on cumulative max-machine
    # load even after paying for the migrated state.
    assert adaptive.max_machine_load < static.max_machine_load

    # 1-Bucket stays balanced under any skew (its load spread is tight)...
    assert one_bucket.load_imbalance < 1.5
    # ...while the frozen histogram's balance has collapsed.
    assert static.load_imbalance > 2.0
    assert adaptive.load_imbalance < static.load_imbalance


def test_partial_vs_full_repartitioning(benchmark, report):
    """Partial repartitioning ships strictly less state for the same joins.

    The same drift-adaptive run under ``repartition_mode="full"`` (positional
    rebuild: new region r lands on machine r) and ``"partial"`` (regions are
    remapped to the machines already holding most of their state): the
    partial plan must migrate strictly fewer tuples on the mid-stream skew
    shift while triggering at the same batches and producing the identical
    exact join output.
    """

    def run_modes():
        results = {}
        for mode in ("full", "partial"):
            engine_results = compare_streaming_schemes(
                drift_source(),
                bench_machines(),
                BandJoinCondition(beta=1.0),
                BAND_JOIN_WEIGHTS,
                policies={f"CSIO-adaptive/{mode}": adaptive_policy()},
                repartition_mode=mode,
                sample_capacity=2048,
                sample_decay=0.7,
                migration_cost_factor=1.0,
                seed=3,
            )
            results.update(engine_results)
        return results

    results = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    report(
        "streaming_partial_repartitioning",
        "Partial vs full repartitioning under mid-stream skew drift "
        f"(J = {bench_machines()})",
        format_streaming_table(results, golden=True),
    )

    full = results["CSIO-adaptive/full"]
    partial = results["CSIO-adaptive/partial"]

    # Identical joins: exact output, same number of batches and rebuilds,
    # triggered at the same stream positions.
    assert full.output_correct and partial.output_correct
    assert partial.total_output == full.total_output
    assert partial.num_repartitions == full.num_repartitions >= 1
    assert [b.batch_index for b in partial.batches if b.repartitioned] == [
        b.batch_index for b in full.batches if b.repartitioned
    ]

    # Headline claim: diffing the region-to-machine mapping migrates
    # strictly less state than the positional full rebuild.
    assert 0 < partial.total_migrated < full.total_migrated
