"""Streaming extension: partitioned joins under mid-stream skew drift.

The batch pipeline builds its partitioning once, from a snapshot of the data.
This benchmark runs the online subsystem over a stream whose Zipf skew shifts
mid-stream (near-uniform, then a hot spot at a new location) and compares:

* **CI-static** -- 1-Bucket built once; immune to skew, pays replication.
* **CSIO-static** -- the equi-weight histogram built from the stream prefix
  and frozen: the online analogue of trusting a stale batch build.
* **CSIO-adaptive** -- the same initial build plus drift-triggered rebuilds
  from the incrementally maintained sample state, paying an explicit state
  migration cost for every repartitioning.

The claims verified: the drift-adaptive engine achieves a lower cumulative
max-machine load than the frozen histogram while accounting a nonzero
migration volume, and every engine still produces the exact join output.
"""

from __future__ import annotations

from repro.bench.reporting import (
    format_streaming_batches,
    format_streaming_table,
)
from repro.core.weights import BAND_JOIN_WEIGHTS
from repro.joins.conditions import BandJoinCondition
from repro.streaming import (
    DriftAdaptiveEWHPolicy,
    DriftDetector,
    DriftingZipfSource,
    StaticEWHPolicy,
    StaticOneBucketPolicy,
    compare_streaming_schemes,
)

from bench_utils import bench_machines, scaled


def run_sweep():
    machines = bench_machines()
    source = DriftingZipfSource(
        num_batches=20,
        tuples_per_batch=scaled(1_000),
        num_values=scaled(500),
        z_initial=0.1,
        z_final=0.9,
        shift_at_batch=7,
        seed=42,
    )
    policies = {
        "CI-static": StaticOneBucketPolicy(machines),
        "CSIO-static": StaticEWHPolicy(),
        "CSIO-adaptive": DriftAdaptiveEWHPolicy(
            DriftDetector(threshold=1.3, warmup_batches=2, cooldown_batches=3)
        ),
    }
    return compare_streaming_schemes(
        source,
        machines,
        BandJoinCondition(beta=1.0),
        BAND_JOIN_WEIGHTS,
        policies=policies,
        sample_capacity=2048,
        sample_decay=0.7,
        migration_cost_factor=1.0,
        seed=3,
    )


def test_streaming_drift(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    report(
        "streaming_drift",
        f"Streaming joins under mid-stream skew drift (J = {bench_machines()})",
        format_streaming_table(results)
        + "\n\nPer-batch max-machine load\n\n"
        + format_streaming_batches(results),
    )

    static = results["CSIO-static"]
    adaptive = results["CSIO-adaptive"]
    one_bucket = results["CI-static"]

    # Every engine produces the exact join output of the full history.
    assert all(r.output_correct for r in results.values())
    outputs = {r.total_output for r in results.values()}
    assert len(outputs) == 1

    # The static schemes never repartition; the adaptive one does, and its
    # migration volume is explicitly nonzero and charged into its load.
    assert static.num_repartitions == 0 and static.total_migrated == 0
    assert one_bucket.num_repartitions == 0 and one_bucket.total_migrated == 0
    assert adaptive.num_repartitions >= 1
    assert adaptive.total_migrated > 0

    # Headline claim: under a mid-stream skew shift, drift-triggered
    # repartitioning beats the frozen histogram on cumulative max-machine
    # load even after paying for the migrated state.
    assert adaptive.max_machine_load < static.max_machine_load

    # 1-Bucket stays balanced under any skew (its load spread is tight)...
    assert one_bucket.load_imbalance < 1.5
    # ...while the frozen histogram's balance has collapsed.
    assert static.load_imbalance > 2.0
    assert adaptive.load_imbalance < static.load_imbalance
