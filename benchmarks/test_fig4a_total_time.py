"""Figure 4a: total execution time (stats + join) per join and operator.

Runs every Table IV workload under CI, CSI and CSIO on the simulated cluster
and reports the modelled stats cost, join cost and total cost -- the bar
chart of Figure 4a in table form.  The expected shape:

* B_ICD (small rho_oi): CI is the worst, CSI and CSIO are close;
* B_CB-beta: CSIO is the best, with CI improving and CSI degrading as the
  band width (and hence rho_oi) grows;
* BE_OCD (large rho_oi): CSI is by far the worst, CI and CSIO are close,
  CSIO in front.
"""

from __future__ import annotations

from repro.bench.experiments import compare_operators
from repro.bench.reporting import format_comparison_table
from repro.workloads.definitions import make_bcb, make_beocd, make_bicd

from bench_utils import bench_machines, scaled
import pytest

#: Heavy paper-figure regeneration (seconds to minutes): deselect with
#: ``-m "not slow"`` for a fast signal; CI runs a fast job and a full job.
pytestmark = pytest.mark.slow



def run_all():
    machines = bench_machines()
    workloads = [make_bicd(num_orders=scaled(10_000), seed=7)]
    for beta in (1, 2, 3, 4, 8, 16):
        workloads.append(
            make_bcb(beta=beta, small_segment_size=scaled(2_000), seed=11 + beta)
        )
    workloads.append(make_beocd(num_orders=scaled(20_000), seed=7))
    return [
        compare_operators(workload, num_machines=machines, seed=0)
        for workload in workloads
    ]


def test_figure4a_total_time(benchmark, report):
    comparisons = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "fig4a_total_time",
        f"Figure 4a: total execution cost per join (J = {bench_machines()})",
        format_comparison_table(comparisons),
    )

    by_name = {c.workload_name: c for c in comparisons}

    # Everything is correct everywhere.
    for comparison in comparisons:
        for scheme, result in comparison.results.items():
            assert result.output_correct, (comparison.workload_name, scheme)

    # CSIO is on the lower envelope (within a small tolerance) for every join.
    for comparison in comparisons:
        best_other = min(
            comparison.results["CI"].total_cost, comparison.results["CSI"].total_cost
        )
        assert comparison.results["CSIO"].total_cost <= 1.15 * best_other, (
            comparison.workload_name
        )

    # Input-dominated corner: CI suffers from replication.
    assert by_name["B_ICD"].speedup("CI") > 1.3
    # Output-dominated corner: CSI suffers from JPS.
    assert by_name["BE_OCD"].speedup("CSI") > 1.25
    # The B_CB family: CSIO beats CSI everywhere and beats CI except possibly
    # at the widest band, where output costs dwarf input costs and the two
    # schemes converge (the paper's own worst case is CSIO 1.04x slower).
    for beta in (1, 2, 3, 4, 8, 16):
        comparison = by_name[f"B_CB-{beta}"]
        assert comparison.speedup("CSI") >= 1.0
        assert comparison.speedup("CI") >= (1.0 if beta <= 8 else 0.9)
