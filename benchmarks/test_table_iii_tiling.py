"""Table III: the cost of MonotonicBSP versus the baseline BSP.

Table III of the paper summarises the asymptotic gains of the
join-specialised tiling algorithm (O(n_c^3 log n_c) time and O(n_c^2) space
against the baseline's O(n_c^5) and O(n_c^4)).  This benchmark measures the
practical counterpart on monotonic band-join-like grids of growing size: the
number of rectangles each dynamic program evaluates and its wall-clock time,
while verifying that both produce partitionings of identical quality (same
region count -- they solve the same DP).
"""

from __future__ import annotations

from repro.bench.ablation import compare_tiling_algorithms
from repro.bench.reporting import format_rows

GRID_SIZES = (6, 8, 10, 12, 14)


def test_table_iii_monotonic_bsp_vs_bsp(benchmark, report):
    rows_data = benchmark.pedantic(
        lambda: compare_tiling_algorithms(grid_sizes=GRID_SIZES, seed=3),
        rounds=1, iterations=1,
    )

    rows = []
    for row in rows_data:
        rows.append(
            [
                str(row.grid_size),
                str(row.bsp_rectangles),
                str(row.monotonic_rectangles),
                f"{row.rectangle_ratio:.1f}x",
                # Measured wall times churn the committed golden on every
                # regeneration (on a noisy runner even a decade bucket
                # straddles its boundary); the live run prints them exactly.
                "-",
                "-",
                str(row.bsp_regions),
                str(row.monotonic_regions),
            ]
        )
    table = format_rows(
        [
            "grid size",
            "BSP rectangles",
            "MonotonicBSP rectangles",
            "reduction",
            "BSP (s)",
            "MonotonicBSP (s)",
            "BSP regions",
            "MonotonicBSP regions",
        ],
        rows,
    )
    report(
        "table_iii_tiling",
        "Table III (practical counterpart): BSP vs MonotonicBSP",
        table,
    )
    # The exact measured timings stay out of the byte-stable golden but
    # are still visible in the live benchmark output.
    for row in rows_data:
        print(
            f"grid {row.grid_size}: BSP {row.bsp_seconds:.3f}s, "
            f"MonotonicBSP {row.monotonic_seconds:.3f}s"
        )

    for row in rows_data:
        # Identical quality, far fewer rectangles.
        assert row.bsp_regions == row.monotonic_regions
        assert row.monotonic_rectangles < row.bsp_rectangles

    # The reduction factor grows with the grid size (the asymptotic gap).
    ratios = [row.rectangle_ratio for row in rows_data]
    assert ratios[-1] > ratios[0]
