"""Figures 4f and 4g: weak scalability of BE_OCD (execution time and memory).

The paper scales the TPC-H scale factor and J together (80/16 -> 160/32 ->
320/64).  The output grows much faster than the input for this join, so the
expected shape is: CSI scales very poorly (JPS concentrates the growing
output on a few machines), while CI and CSIO both scale well with CSIO in
front; the memory gap between CI and the others is smaller than for the band
joins because the filtered input is small.
"""

from __future__ import annotations

from repro.bench.reporting import format_scalability_table
from repro.bench.scalability import run_weak_scaling
from repro.workloads.definitions import make_beocd

from bench_utils import scaled
import pytest

#: Heavy paper-figure regeneration (seconds to minutes): deselect with
#: ``-m "not slow"`` for a fast signal; CI runs a fast job and a full job.
pytestmark = pytest.mark.slow



def run_sweep():
    points = [(scaled(10_000), 8), (scaled(20_000), 16), (scaled(40_000), 32)]
    return run_weak_scaling(
        workload_factory=lambda size: make_beocd(num_orders=int(size), seed=7),
        points=points,
        schemes=("CI", "CSI", "CSIO"),
        seed=0,
    )


def test_figure4fg_beocd_weak_scaling(benchmark, report):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "fig4fg_beocd_scalability",
        "Figures 4f/4g: BE_OCD weak scaling (scale factor and J doubled together)",
        format_scalability_table(points),
    )

    for point in points:
        for scheme, result in point.comparison.results.items():
            assert result.output_correct, (point.num_machines, scheme)

    # CSI is the worst operator at every point (JPS), and its disadvantage
    # against CSIO persists as the workload scales.
    for point in points:
        results = point.comparison.results
        assert results["CSI"].total_cost > results["CSIO"].total_cost
        assert results["CSI"].join_cost >= results["CI"].join_cost * 0.9

    # CSIO stays close to the best operator everywhere.
    for point in points:
        results = point.comparison.results
        best_other = min(results["CI"].total_cost, results["CSI"].total_cost)
        assert results["CSIO"].total_cost <= 1.2 * best_other
