"""Helpers shared by the benchmark modules (scale knobs and machine counts).

Kept outside ``conftest.py`` so benchmark modules can import them explicitly.
"""

from __future__ import annotations

import os

__all__ = ["bench_scale", "bench_machines", "scaled"]


def bench_scale() -> float:
    """The workload-size multiplier requested via ``REPRO_BENCH_SCALE``."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_machines() -> int:
    """The machine count requested via ``REPRO_BENCH_MACHINES``."""
    return int(os.environ.get("REPRO_BENCH_MACHINES", "16"))


def scaled(value: int, minimum: int = 200) -> int:
    """Scale a default workload size knob by ``REPRO_BENCH_SCALE``."""
    return max(minimum, int(round(value * bench_scale())))
