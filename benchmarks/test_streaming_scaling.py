"""Streaming extension: zero-copy sticky workers vs the pickling pool.

The multiprocess pool backend re-pickles every machine's *full* region key
arrays through its executor channel on every batch, so its serialization
volume grows with the retained state -- for a persistent streaming join the
channel, not the join, becomes the bottleneck.  The sticky-worker backend
keeps each machine's join state resident in its owner process and ships
only the per-batch delta through a shared-memory arena, leaving the pickle
channel to fixed-size control messages.

Claims verified on one fixed-seed drifting stream, per batch and end to
end:

* **bit identity** -- the simulated, multiprocess and sticky runs agree on
  every per-machine output delta, cost-model load and migration plan; the
  backend only changes *where* the counting runs, never what is counted;
* **steady-state serialization collapse** -- over the second half of the
  stream (state large, deltas constant) the multiprocess backend pushes at
  least 10x more bytes through pickle than the sticky backend, whose array
  payload travels as shared memory (``shm KB``) instead.

Byte totals are exact and deterministic (fixed seeds, fixed-width segment
names), so the golden commits them verbatim; only wall-clock durations are
bucketed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import format_streaming_table
from repro.core.weights import BAND_JOIN_WEIGHTS
from repro.joins.conditions import BandJoinCondition
from repro.streaming import (
    DriftAdaptiveEWHPolicy,
    DriftDetector,
    DriftingZipfSource,
    MultiprocessBackend,
    SimulatedBackend,
    StickyWorkerBackend,
    StreamingJoinEngine,
)

from bench_utils import scaled

BAND = BandJoinCondition(beta=1.0)
MACHINES = 8
NUM_BATCHES = 16
WORKERS = 2


def drift_source():
    """A drifting-Zipf stream long enough to reach a steady-state tail."""
    return DriftingZipfSource(
        num_batches=NUM_BATCHES,
        tuples_per_batch=scaled(400),
        num_values=scaled(200),
        z_initial=0.1,
        z_final=1.1,
        shift_at_batch=6,
        seed=21,
    )


def adaptive_engine(backend):
    """A drift-adaptive engine over the given backend (fixed seeds)."""
    policy = DriftAdaptiveEWHPolicy(
        DriftDetector(threshold=1.3, warmup_batches=2, cooldown_batches=3)
    )
    return StreamingJoinEngine(
        MACHINES,
        BAND,
        BAND_JOIN_WEIGHTS,
        policy=policy,
        backend=backend,
        sample_capacity=1024,
        sample_decay=0.7,
        seed=5,
    )


@pytest.mark.multiprocess
def test_sticky_workers_collapse_steady_state_serialization(benchmark, report):
    def run_all():
        results = {
            "simulated": adaptive_engine(SimulatedBackend()).run(drift_source())
        }
        with MultiprocessBackend(max_workers=WORKERS) as pool:
            results["multiprocess"] = adaptive_engine(pool).run(drift_source())
        with StickyWorkerBackend(max_workers=WORKERS) as sticky:
            results["sticky"] = adaptive_engine(sticky).run(drift_source())
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    simulated = results["simulated"]
    multiprocess = results["multiprocess"]
    sticky = results["sticky"]

    # Bit identity across all three backends: outputs, loads and plans.
    for other in (multiprocess, sticky):
        assert other.output_correct and simulated.output_correct
        assert other.total_output == simulated.total_output
        np.testing.assert_allclose(
            other.cumulative_load, simulated.cumulative_load
        )
        assert [b.batch_index for b in other.batches if b.repartitioned] == [
            b.batch_index for b in simulated.batches if b.repartitioned
        ]
        for sim_batch, other_batch in zip(simulated.batches, other.batches):
            np.testing.assert_array_equal(
                sim_batch.per_machine_output_delta,
                other_batch.per_machine_output_delta,
            )
            np.testing.assert_allclose(
                sim_batch.per_machine_load, other_batch.per_machine_load
            )
    assert simulated.num_repartitions >= 1  # the drift is actually exercised

    # Steady state: the second half of the stream, where the pool's pickled
    # volume is dominated by the retained state and the sticky backend's by
    # fixed-size control messages.
    steady = NUM_BATCHES // 2
    pool_pickled = sum(
        b.bytes_pickled for b in multiprocess.batches[steady:]
    )
    sticky_pickled = sum(b.bytes_pickled for b in sticky.batches[steady:])
    sticky_shm = sum(b.bytes_shm for b in sticky.batches[steady:])
    ratio = pool_pickled / sticky_pickled

    report(
        "streaming_scaling",
        "Zero-copy sticky workers vs the pickling pool "
        f"(J = {MACHINES}, {WORKERS} workers)",
        format_streaming_table(results, golden=True)
        + "\n\nSteady-state serialization, batches "
        f"{steady}-{NUM_BATCHES - 1} (exact, deterministic):\n"
        f"multiprocess pickled {pool_pickled / 1024:,.1f} KB vs sticky "
        f"pickled {sticky_pickled / 1024:,.1f} KB -- {ratio:.1f}x less "
        "through the pickle channel; the sticky delta payload rode shared "
        f"memory instead ({sticky_shm / 1024:,.1f} KB).",
    )

    # Headline claim: >= 10x less pickle traffic at steady state, with the
    # array payload accounted as shared memory.
    assert ratio >= 10.0
    assert sticky_shm > 0
    assert sticky.total_bytes_shm is not None and sticky.total_bytes_shm > 0
    assert multiprocess.total_bytes_shm is None
