"""Table IV: characteristics of the evaluation joins.

Regenerates the input size, output size and output/input ratio of every
Table IV join at the reproduction's laptop scale.  The paper's absolute sizes
(480M tuples and beyond) are out of reach for a pure-Python single machine;
what must hold is the *classification*: B_ICD is input-cost dominated
(rho_oi < 1), the B_CB family is cost-balanced with rho_oi growing with the
band width, and BE_OCD is output-cost dominated.
"""

from __future__ import annotations

from repro.bench.reporting import format_table_iv
from repro.workloads.definitions import make_bcb, make_beocd, make_bicd

from bench_utils import scaled


def build_workloads():
    workloads = [make_bicd(num_orders=scaled(10_000), seed=7)]
    for beta in (1, 2, 3, 4, 8, 16):
        workloads.append(
            make_bcb(beta=beta, small_segment_size=scaled(2_000), seed=11 + beta)
        )
    workloads.append(make_beocd(num_orders=scaled(20_000), seed=7))
    # Force the exact output sizes to be computed inside the benchmark.
    for workload in workloads:
        workload.exact_output_size()
    return workloads


def test_table_iv_characteristics(benchmark, report):
    workloads = benchmark.pedantic(build_workloads, rounds=1, iterations=1)
    report("table_iv", "Table IV: join characteristics", format_table_iv(workloads))

    by_name = {w.name: w for w in workloads}
    # B_ICD is input-cost dominated.
    assert by_name["B_ICD"].output_input_ratio() < 1.5
    # BE_OCD is output-cost dominated.
    assert by_name["BE_OCD"].output_input_ratio() > 5.0
    # rho_oi grows monotonically with the band width of B_CB.
    ratios = [by_name[f"B_CB-{beta}"].output_input_ratio() for beta in (1, 2, 3, 4, 8, 16)]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))
