"""Figure 4c: cluster memory (and network) consumption per operator.

For the three representative joins (B_ICD, B_CB-3, BE_OCD) the benchmark
reports each operator's cluster-wide memory consumption -- the number of
tuples resident across all machines after routing, which is also the network
traffic of the repartition join.  The paper's shape: CI consumes several
times more than CSI/CSIO on the band joins because of its input replication
(around 4x at J = 32), while CSIO sits slightly above CSI because balancing
total work sometimes assigns more input to regions with little output.
"""

from __future__ import annotations

from repro.bench.experiments import compare_operators
from repro.bench.reporting import format_rows
from repro.workloads.definitions import make_bcb, make_beocd, make_bicd

from bench_utils import bench_machines, scaled
import pytest

#: Heavy paper-figure regeneration (seconds to minutes): deselect with
#: ``-m "not slow"`` for a fast signal; CI runs a fast job and a full job.
pytestmark = pytest.mark.slow



def run_all():
    machines = bench_machines()
    workloads = [
        make_bicd(num_orders=scaled(10_000), seed=7),
        make_bcb(beta=3, small_segment_size=scaled(2_000), seed=14),
        make_beocd(num_orders=scaled(20_000), seed=7),
    ]
    return [
        compare_operators(workload, num_machines=machines, seed=0)
        for workload in workloads
    ]


def test_figure4c_memory_consumption(benchmark, report):
    comparisons = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for comparison in comparisons:
        for scheme in ("CI", "CSI", "CSIO"):
            result = comparison.results[scheme]
            rows.append(
                [
                    comparison.workload_name,
                    scheme,
                    f"{result.memory_tuples:,}",
                    f"{result.network_tuples:,}",
                    f"{result.replication_factor:.2f}",
                ]
            )
    table = format_rows(
        ["join", "scheme", "memory (tuples)", "network (tuples)", "repl. factor"], rows
    )
    report(
        "fig4c_memory",
        f"Figure 4c: cluster memory consumption (J = {bench_machines()})",
        table,
    )

    for comparison in comparisons:
        ci = comparison.results["CI"]
        csi = comparison.results["CSI"]
        csio = comparison.results["CSIO"]
        if comparison.workload_name != "BE_OCD":
            # On the band joins CI needs several times more memory.
            assert ci.memory_tuples > 2.0 * csio.memory_tuples
        # CI is never more memory-efficient than the content-sensitive schemes.
        assert ci.memory_tuples >= csio.memory_tuples
        assert ci.memory_tuples >= csi.memory_tuples
        # CSIO pays at most a modest premium over CSI for balancing total work.
        assert csio.memory_tuples <= 2.5 * csi.memory_tuples
