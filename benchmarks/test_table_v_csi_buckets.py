"""Table V: sweeping M-Bucket's bucket count cannot cure join product skew.

For BE_OCD and B_CB-3 the benchmark sweeps the number of equi-depth buckets
``p`` given to CSI and reports the histogram-algorithm time, join cost and
total cost of each setting next to a single CSIO reference.  The paper's
message: more input statistics increase the scheme-building time and help the
join a little, but even the best CSI configuration remains far more expensive
than CSIO because it still knows nothing about the output distribution.
"""

from __future__ import annotations

from repro.bench.reporting import format_rows
from repro.bench.table5 import run_table_v
from repro.workloads.definitions import make_bcb, make_beocd

from bench_utils import bench_machines, scaled
import pytest

#: Heavy paper-figure regeneration (seconds to minutes): deselect with
#: ``-m "not slow"`` for a fast signal; CI runs a fast job and a full job.
pytestmark = pytest.mark.slow


BUCKET_COUNTS = (50, 100, 200, 400, 800)


def run_all():
    machines = bench_machines()
    results = []
    for workload in (
        make_beocd(num_orders=scaled(20_000), seed=7),
        make_bcb(beta=3, small_segment_size=scaled(2_000), seed=14),
    ):
        results.append(run_table_v(workload, machines, bucket_counts=BUCKET_COUNTS))
    return results


def test_table_v_bucket_sweep(benchmark, report):
    sweeps = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for sweep in sweeps:
        for row in sweep.csi_rows:
            rows.append(
                [
                    sweep.workload_name,
                    "CSI",
                    str(row.num_buckets),
                    f"{row.histogram_seconds:.3f}",
                    f"{row.join_cost:,.0f}",
                    f"{row.total_cost:,.0f}",
                ]
            )
        reference = sweep.csio_reference
        rows.append(
            [
                sweep.workload_name,
                "CSIO (ref)",
                "-",
                f"{reference.build_seconds:.3f}",
                f"{reference.join_cost:,.0f}",
                f"{reference.total_cost:,.0f}",
            ]
        )
    table = format_rows(
        ["join", "scheme", "buckets p", "histogram alg (s)", "join cost", "total cost"],
        rows,
    )
    report(
        "table_v_csi_buckets",
        f"Table V: CSI bucket-count sweep vs CSIO (J = {bench_machines()})",
        table,
    )

    for sweep in sweeps:
        # All runs correct.
        assert all(row.result.output_correct for row in sweep.csi_rows)
        assert sweep.csio_reference.output_correct
        # Even the best CSI total cost stays above CSIO's.
        assert sweep.best_csi_total_cost() > sweep.csio_reference.total_cost
        # The histogram-algorithm time grows with the bucket count (comparing
        # the ends of the sweep absorbs wall-clock noise in the middle).
        assert (
            sweep.csi_rows[-1].histogram_seconds
            >= 0.5 * sweep.csi_rows[0].histogram_seconds
        )
