"""Figures 4d and 4e: weak scalability of B_CB-3 (execution time and memory).

The paper scales the X dataset and the machine count together
(96M/16 -> 192M/32 -> 384M/64) and shows that CI scales worst -- its
replication factor grows with J, doubling the per-machine input costs -- while
CSIO keeps both total time and memory under control.  The reproduction scales
the small-segment size and J by the same factors.
"""

from __future__ import annotations

from repro.bench.reporting import format_scalability_table
from repro.bench.scalability import run_weak_scaling
from repro.workloads.definitions import make_bcb

from bench_utils import scaled
import pytest

#: Heavy paper-figure regeneration (seconds to minutes): deselect with
#: ``-m "not slow"`` for a fast signal; CI runs a fast job and a full job.
pytestmark = pytest.mark.slow



def run_sweep():
    points = [(scaled(1_000), 8), (scaled(2_000), 16), (scaled(4_000), 32)]
    return run_weak_scaling(
        workload_factory=lambda size: make_bcb(
            beta=3, small_segment_size=int(size), seed=14
        ),
        points=points,
        schemes=("CI", "CSI", "CSIO"),
        seed=0,
    )


def test_figure4de_bcb3_weak_scaling(benchmark, report):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "fig4de_bcb_scalability",
        "Figures 4d/4e: B_CB-3 weak scaling (size and J doubled together)",
        format_scalability_table(points),
    )

    for point in points:
        for scheme, result in point.comparison.results.items():
            assert result.output_correct, (point.num_machines, scheme)

    # CSIO stays on the lower envelope at every point.
    for point in points:
        results = point.comparison.results
        best_other = min(results["CI"].total_cost, results["CSI"].total_cost)
        assert results["CSIO"].total_cost <= 1.15 * best_other

    # CI's relative memory consumption grows with J (its replication factor
    # grows as the machine grid widens), so the memory gap to CSIO widens.
    first, last = points[0], points[-1]
    gap_first = (
        first.comparison.results["CI"].memory_tuples
        / first.comparison.results["CSIO"].memory_tuples
    )
    gap_last = (
        last.comparison.results["CI"].memory_tuples
        / last.comparison.results["CSIO"].memory_tuples
    )
    assert gap_last > gap_first

    # CI's total cost degrades relative to CSIO as the cluster grows.
    rel_first = (
        first.comparison.results["CI"].total_cost
        / first.comparison.results["CSIO"].total_cost
    )
    rel_last = (
        last.comparison.results["CI"].total_cost
        / last.comparison.results["CSIO"].total_cost
    )
    assert rel_last >= rel_first
