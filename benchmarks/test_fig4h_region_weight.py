"""Figure 4h: maximum region weight per scheme, and CSIO's own estimate.

For B_ICD, B_CB-3 and BE_OCD this regenerates the maximum region weight
(computed after execution from the per-machine input/output counts) of every
scheme, plus CSIO's *estimated* maximum region weight (CSIO-est) produced by
the histogram algorithm before any tuple is routed.  Two claims are checked:

* within one join, the ordering of the maximum region weights matches the
  ordering of the join costs (the cost model is faithful);
* CSIO-est is close to the weight measured after execution (the paper
  reports at most 6% deviation at cluster scale; sampling noise is larger at
  laptop scale, so the tolerance here is looser).
"""

from __future__ import annotations

from repro.bench.experiments import compare_operators
from repro.bench.reporting import format_rows
from repro.workloads.definitions import make_bcb, make_beocd, make_bicd

from bench_utils import bench_machines, scaled
import pytest

#: Heavy paper-figure regeneration (seconds to minutes): deselect with
#: ``-m "not slow"`` for a fast signal; CI runs a fast job and a full job.
pytestmark = pytest.mark.slow



def run_all():
    machines = bench_machines()
    workloads = [
        make_bicd(num_orders=scaled(10_000), seed=7),
        make_bcb(beta=3, small_segment_size=scaled(2_000), seed=14),
        make_beocd(num_orders=scaled(20_000), seed=7),
    ]
    return [
        compare_operators(workload, num_machines=machines, seed=0)
        for workload in workloads
    ]


def test_figure4h_max_region_weight(benchmark, report):
    comparisons = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for comparison in comparisons:
        for scheme in ("CI", "CSI", "CSIO"):
            result = comparison.results[scheme]
            estimate = (
                f"{result.estimated_max_weight:,.0f}"
                if result.estimated_max_weight is not None
                else "-"
            )
            rows.append(
                [
                    comparison.workload_name,
                    scheme,
                    f"{result.max_region_weight:,.0f}",
                    estimate,
                    f"{result.join_cost:,.0f}",
                ]
            )
    table = format_rows(
        ["join", "scheme", "max region weight", "CSIO-est", "join cost"], rows
    )
    report(
        "fig4h_region_weight",
        f"Figure 4h: maximum region weight (J = {bench_machines()})",
        table,
    )

    for comparison in comparisons:
        results = comparison.results
        # The cost model: within one join, region-weight ordering equals
        # join-cost ordering (they are the same quantity in the simulator, so
        # this is a consistency check on the accounting).
        by_weight = sorted(results, key=lambda s: results[s].max_region_weight)
        by_cost = sorted(results, key=lambda s: results[s].join_cost)
        assert by_weight == by_cost

        # CSIO achieves the smallest maximum region weight, up to a few
        # percent in the no-JPS corner (B_ICD) where CSI is essentially
        # optimal already (the paper's worst case there is 1.04x).
        csio = results["CSIO"].max_region_weight
        assert csio <= results["CI"].max_region_weight
        assert csio <= 1.05 * results["CSI"].max_region_weight

        # CSIO-est is close to the measured weight.
        estimate = results["CSIO"].estimated_max_weight
        assert estimate is not None
        assert abs(estimate - csio) / csio < 0.40
