"""Figure 3: the three stages of the histogram algorithm.

Regenerates, for one JPS-heavy workload, the chain sampling -> coarsening ->
regionalization: the sizes of the sample matrix MS and the coarsened matrix
MC, the maximum cell weight after each stage, the number and weights of the
final regions, and the wall-clock seconds spent per stage.
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import format_rows
from repro.core.histogram import build_equi_weight_histogram
from repro.workloads.definitions import make_bcb

from bench_utils import bench_machines, scaled
import pytest

#: Heavy paper-figure regeneration (seconds to minutes): deselect with
#: ``-m "not slow"`` for a fast signal; CI runs a fast job and a full job.
pytestmark = pytest.mark.slow



def build():
    workload = make_bcb(beta=3, small_segment_size=scaled(2_000), seed=11)
    machines = bench_machines()
    histogram = build_equi_weight_histogram(
        workload.keys1, workload.keys2, workload.condition, machines,
        workload.weight_fn, rng=np.random.default_rng(0),
    )
    return workload, machines, histogram


def test_figure3_histogram_stages(benchmark, report):
    workload, machines, histogram = benchmark.pedantic(build, rounds=1, iterations=1)
    weight_fn = workload.weight_fn

    ms = histogram.sample_matrix.grid
    mc = histogram.coarsening.grid
    rows = [
        [
            "sampling (MS)",
            f"{ms.num_rows} x {ms.num_cols}",
            f"{ms.max_cell_weight(weight_fn, candidates_only=True):,.0f}",
            f"{histogram.stage_seconds['sampling']:.3f}",
        ],
        [
            "coarsening (MC)",
            f"{mc.num_rows} x {mc.num_cols}",
            f"{histogram.coarsening.max_cell_weight:,.0f}",
            f"{histogram.stage_seconds['coarsening']:.3f}",
        ],
        [
            "regionalization (MH)",
            f"{histogram.num_regions} regions",
            f"{histogram.estimated_max_weight:,.0f}",
            f"{histogram.stage_seconds['regionalization']:.3f}",
        ],
    ]
    table = format_rows(["stage", "size", "max cell/region weight", "seconds"], rows)
    report(
        "fig3_histogram_stages",
        f"Figure 3: histogram algorithm stages on {workload.name} (J = {machines})",
        table,
    )

    # The chain shrinks the matrix at every stage.
    assert mc.num_rows <= ms.num_rows
    assert mc.num_cols <= ms.num_cols
    assert histogram.num_regions <= machines
    # n_c = 2J as in the paper (clamped by the sample matrix size).
    assert mc.num_rows <= 2 * machines
    # The maximum cell weight grows as the matrix coarsens, while the final
    # regions bound it from above (regions may merge several cells).
    ms_sigma = ms.max_cell_weight(weight_fn, candidates_only=True)
    assert histogram.coarsening.max_cell_weight >= ms_sigma - 1e-9
    assert histogram.estimated_max_weight >= histogram.coarsening.max_cell_weight - 1e-9
    # Lemma 3.1: the MS cell weight stays at most half the optimum region
    # weight (approximated here by the achieved estimate).
    assert ms_sigma <= 0.75 * histogram.estimated_max_weight
