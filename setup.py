"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in editable mode on environments whose setuptools
lacks PEP 660 support (no ``wheel`` package available), via
``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
