"""Tests for the multiprocessing executor and the cost-model calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.weights import WeightFunction
from repro.engine.calibration import (
    CalibrationSample,
    calibrate_cost_weights,
    collect_calibration_samples,
)
from repro.engine.executor import run_join_multiprocess
from repro.joins.conditions import BandJoinCondition
from repro.joins.local import count_join_output
from repro.partitioning.one_bucket import build_one_bucket_partitioning
from repro.partitioning.m_bucket import MBucketConfig, build_m_bucket_partitioning


class TestMultiprocessExecutor:
    def test_output_matches_exact_join(self):
        rng = np.random.default_rng(2)
        keys1 = rng.integers(0, 300, 600).astype(float)
        keys2 = rng.integers(0, 300, 600).astype(float)
        condition = BandJoinCondition(beta=1.0)
        exact = count_join_output(keys1, keys2, condition)
        partitioning = build_m_bucket_partitioning(
            keys1, keys2, condition, 4, config=MBucketConfig(num_buckets=20),
            rng=np.random.default_rng(0),
        )
        result = run_join_multiprocess(
            partitioning, keys1, keys2, condition, max_workers=2
        )
        assert result.total_output == exact
        assert len(result.per_machine_output) == partitioning.num_regions
        assert result.wall_seconds > 0
        assert result.max_machine_seconds <= result.wall_seconds

    def test_one_bucket_partitioning_supported(self):
        rng = np.random.default_rng(3)
        keys1 = rng.integers(0, 100, 200).astype(float)
        keys2 = rng.integers(0, 100, 200).astype(float)
        condition = BandJoinCondition(beta=1.0)
        partitioning = build_one_bucket_partitioning(4)
        result = run_join_multiprocess(
            partitioning, keys1, keys2, condition, max_workers=2,
            rng=np.random.default_rng(1),
        )
        assert result.total_output == count_join_output(keys1, keys2, condition)


class TestCalibration:
    def test_recovers_synthetic_coefficients(self):
        true = WeightFunction(input_cost=1.0, output_cost=0.25)
        rng = np.random.default_rng(0)
        samples = []
        for _ in range(12):
            inputs = float(rng.integers(100, 10_000))
            outputs = float(rng.integers(100, 10_000))
            seconds = 1e-6 * true.weight(inputs, outputs)
            samples.append(CalibrationSample(inputs, outputs, seconds))
        fitted = calibrate_cost_weights(samples)
        assert fitted.input_cost == pytest.approx(1.0)
        assert fitted.output_cost == pytest.approx(0.25, rel=0.05)

    def test_unnormalised_keeps_absolute_scale(self):
        samples = [
            CalibrationSample(100, 0, 2.0),
            CalibrationSample(0, 100, 1.0),
            CalibrationSample(100, 100, 3.0),
        ]
        fitted = calibrate_cost_weights(samples, normalise=False)
        assert fitted.input_cost == pytest.approx(0.02, rel=0.05)
        assert fitted.output_cost == pytest.approx(0.01, rel=0.05)

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            calibrate_cost_weights([CalibrationSample(1, 1, 1.0)])

    def test_degenerate_regression_rejected(self):
        samples = [
            CalibrationSample(100, 100, 0.0),
            CalibrationSample(200, 200, 0.0),
        ]
        with pytest.raises(ValueError):
            calibrate_cost_weights(samples)

    def test_collect_calibration_samples(self):
        rng = np.random.default_rng(5)
        keys1 = rng.integers(0, 500, 2000).astype(float)
        keys2 = rng.integers(0, 500, 2000).astype(float)
        condition = BandJoinCondition(beta=2.0)
        samples = collect_calibration_samples(
            keys1, keys2, condition, fractions=(0.5, 1.0), rng=np.random.default_rng(1)
        )
        assert len(samples) == 2
        assert samples[0].input_tuples < samples[1].input_tuples
        for sample in samples:
            assert sample.seconds >= 0
            assert sample.output_tuples > 0

    def test_collect_rejects_bad_fraction(self):
        keys = np.arange(10, dtype=float)
        with pytest.raises(ValueError):
            collect_calibration_samples(
                keys, keys, BandJoinCondition(beta=1.0), fractions=(0.0,)
            )
