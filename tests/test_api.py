"""Tests of the public API surface: exports resolve and the quickstart runs."""

from __future__ import annotations

import importlib

import numpy as np
import pytest

import repro


PACKAGES = [
    "repro",
    "repro.core",
    "repro.joins",
    "repro.sampling",
    "repro.data",
    "repro.partitioning",
    "repro.engine",
    "repro.workloads",
    "repro.bench",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__")
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_no_duplicate_exports():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        exports = list(package.__all__)
        assert len(exports) == len(set(exports)), f"duplicates in {package_name}.__all__"


def test_version_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") >= 1


def test_readme_quickstart_flow():
    """The README quickstart (scaled down) runs end to end."""
    workload = repro.make_bcb(beta=3, small_segment_size=600, seed=11)
    totals = {}
    for operator_cls in (repro.CIOperator, repro.CSIOperator, repro.CSIOOperator):
        result = operator_cls(num_machines=4).run(
            workload.keys1, workload.keys2, workload.condition, workload.weight_fn,
            rng=np.random.default_rng(0),
        )
        assert result.output_correct
        totals[result.scheme] = result.total_cost
    assert set(totals) == {"CI", "CSI", "CSIO"}
    assert totals["CSIO"] <= 1.2 * min(totals.values())


def test_top_level_convenience_reexports():
    assert repro.BandJoinCondition(beta=1.0).matches(1.0, 2.0)
    assert repro.WeightFunction(1.0, 0.2).weight(10, 10) == pytest.approx(12.0)
    assert repro.BAND_JOIN_WEIGHTS.output_cost == pytest.approx(0.2)
