"""Tests for the partitioning schemes (CI, CSI, CSIO, grid routing, hashing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.histogram import EWHConfig
from repro.core.region import GridRegion
from repro.core.validation import validate_partitioning
from repro.core.weights import WeightFunction
from repro.joins.conditions import BandJoinCondition, EquiJoinCondition
from repro.partitioning.ewh import build_ewh_partitioning
from repro.partitioning.grid_routed import GridRoutedPartitioning
from repro.partitioning.hash_repartition import HashRepartitioning
from repro.partitioning.m_bucket import MBucketConfig, build_m_bucket_partitioning
from repro.partitioning.one_bucket import (
    OneBucketPartitioning,
    build_one_bucket_partitioning,
    machine_grid_shape,
)


@pytest.fixture(scope="module")
def small_join():
    rng = np.random.default_rng(17)
    keys1 = np.concatenate(
        [rng.integers(0, 30, 250), rng.integers(500, 5000, 750)]
    ).astype(float)
    keys2 = np.concatenate(
        [rng.integers(0, 30, 250), rng.integers(500, 5000, 750)]
    ).astype(float)
    return keys1, keys2, BandJoinCondition(beta=2.0)


class TestMachineGridShape:
    @pytest.mark.parametrize(
        "machines,expected",
        [(1, (1, 1)), (4, (2, 2)), (6, (2, 3)), (32, (4, 8)), (64, (8, 8)), (7, (1, 7))],
    )
    def test_factorisation(self, machines, expected):
        assert machine_grid_shape(machines) == expected

    def test_product_equals_machines(self):
        for machines in range(1, 65):
            rows, cols = machine_grid_shape(machines)
            assert rows * cols == machines
            assert rows <= cols

    def test_invalid(self):
        with pytest.raises(ValueError):
            machine_grid_shape(0)


class TestOneBucket:
    def test_paper_example_32_machines(self):
        partitioning = build_one_bucket_partitioning(32)
        assert partitioning.grid_rows == 4
        assert partitioning.grid_cols == 8
        assert partitioning.num_regions == 32
        assert partitioning.replication_r1 == 8
        assert partitioning.replication_r2 == 4

    def test_every_r1_tuple_replicated_to_one_grid_row(self):
        partitioning = OneBucketPartitioning(grid_rows=3, grid_cols=4)
        keys = np.arange(100, dtype=float)
        rng = np.random.default_rng(0)
        assignments = partitioning.assign_r1(keys, rng)
        counts = np.zeros(len(keys), dtype=int)
        for idx in assignments:
            counts[idx] += 1
        # Each tuple lands in exactly grid_cols regions (one full grid row).
        assert np.all(counts == 4)

    def test_every_r2_tuple_replicated_to_one_grid_column(self):
        partitioning = OneBucketPartitioning(grid_rows=3, grid_cols=4)
        keys = np.arange(100, dtype=float)
        assignments = partitioning.assign_r2(keys, np.random.default_rng(0))
        counts = np.zeros(len(keys), dtype=int)
        for idx in assignments:
            counts[idx] += 1
        assert np.all(counts == 3)

    def test_replication_factor(self, small_join):
        keys1, keys2, _ = small_join
        partitioning = build_one_bucket_partitioning(12)
        rows, cols = machine_grid_shape(12)
        factor = partitioning.replication_factor(
            keys1, keys2, np.random.default_rng(0)
        )
        expected = (cols * len(keys1) + rows * len(keys2)) / (len(keys1) + len(keys2))
        assert factor == pytest.approx(expected)

    def test_produces_complete_duplicate_free_output(self, small_join):
        keys1, keys2, condition = small_join
        partitioning = build_one_bucket_partitioning(6)
        validation = validate_partitioning(partitioning, keys1, keys2, condition)
        assert validation.is_correct

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            OneBucketPartitioning(grid_rows=0, grid_cols=3)


class TestGridRoutedPartitioning:
    def test_routing_follows_key_boundaries(self):
        row_boundaries = np.array([-np.inf, 10.0, 20.0, np.inf])
        col_boundaries = np.array([-np.inf, 15.0, np.inf])
        regions = [GridRegion(0, 0, 0, 1), GridRegion(1, 2, 0, 0), GridRegion(1, 2, 1, 1)]
        partitioning = GridRoutedPartitioning(
            row_boundaries, col_boundaries, regions, scheme_name="test"
        )
        rng = np.random.default_rng(0)
        r1 = partitioning.assign_r1(np.array([5.0, 12.0, 100.0]), rng)
        # Key 5 -> grid row 0 -> only region 0; keys 12 and 100 -> rows 1, 2 ->
        # regions 1 and 2.
        np.testing.assert_array_equal(r1[0], [0])
        np.testing.assert_array_equal(r1[1], [1, 2])
        np.testing.assert_array_equal(r1[2], [1, 2])
        r2 = partitioning.assign_r2(np.array([14.0, 16.0]), rng)
        np.testing.assert_array_equal(r2[0], [0, 1])
        np.testing.assert_array_equal(r2[1], [0])
        np.testing.assert_array_equal(r2[2], [1])

    def test_key_regions_roundtrip(self):
        row_boundaries = np.array([0.0, 10.0, 20.0])
        col_boundaries = np.array([0.0, 5.0, 50.0])
        regions = [GridRegion(0, 1, 0, 0), GridRegion(0, 1, 1, 1)]
        partitioning = GridRoutedPartitioning(row_boundaries, col_boundaries, regions)
        key_regions = partitioning.key_regions()
        assert key_regions[0].r1_lo == 0.0 and key_regions[0].r1_hi == 20.0
        assert key_regions[0].r2_lo == 0.0 and key_regions[0].r2_hi == 5.0
        assert key_regions[1].r2_lo == 5.0 and key_regions[1].r2_hi == 50.0
        assert [r.region_id for r in key_regions] == [0, 1]

    def test_region_outside_grid_rejected(self):
        with pytest.raises(ValueError):
            GridRoutedPartitioning(
                np.array([0.0, 1.0]), np.array([0.0, 1.0]),
                [GridRegion(0, 1, 0, 0)],
            )

    def test_too_short_boundaries_rejected(self):
        with pytest.raises(ValueError):
            GridRoutedPartitioning(np.array([0.0]), np.array([0.0, 1.0]), [])


class TestMBucket:
    def test_region_budget_and_correctness(self, small_join):
        keys1, keys2, condition = small_join
        partitioning = build_m_bucket_partitioning(
            keys1, keys2, condition, num_machines=6,
            config=MBucketConfig(num_buckets=40),
            rng=np.random.default_rng(3),
        )
        assert partitioning.scheme_name == "CSI"
        assert partitioning.num_regions <= 6
        assert partitioning.num_candidate_cells > 0
        assert partitioning.build_seconds >= 0
        validation = validate_partitioning(partitioning, keys1, keys2, condition)
        assert validation.is_correct

    def test_more_buckets_do_not_break_correctness(self, small_join):
        keys1, keys2, condition = small_join
        for buckets in (10, 80):
            partitioning = build_m_bucket_partitioning(
                keys1, keys2, condition, num_machines=5,
                config=MBucketConfig(num_buckets=buckets),
                rng=np.random.default_rng(4),
            )
            validation = validate_partitioning(partitioning, keys1, keys2, condition)
            assert validation.is_correct

    def test_empty_relation_rejected(self):
        with pytest.raises(ValueError):
            build_m_bucket_partitioning(
                np.array([]), np.array([1.0]), BandJoinCondition(beta=1.0), 2
            )

    def test_invalid_machines_rejected(self, small_join):
        keys1, keys2, condition = small_join
        with pytest.raises(ValueError):
            build_m_bucket_partitioning(keys1, keys2, condition, 0)


class TestEWHPartitioning:
    def test_region_budget_and_correctness(self, small_join):
        keys1, keys2, condition = small_join
        partitioning = build_ewh_partitioning(
            keys1, keys2, condition, num_machines=6,
            weight_fn=WeightFunction(1.0, 0.2),
            rng=np.random.default_rng(5),
        )
        assert partitioning.scheme_name == "CSIO"
        assert partitioning.num_regions <= 6
        assert partitioning.estimated_max_weight > 0
        assert partitioning.total_output > 0
        validation = validate_partitioning(partitioning, keys1, keys2, condition)
        assert validation.is_correct

    def test_histogram_artifact_exposed(self, small_join):
        keys1, keys2, condition = small_join
        partitioning = build_ewh_partitioning(
            keys1, keys2, condition, num_machines=4,
            config=EWHConfig(seed=1), rng=np.random.default_rng(1),
        )
        assert partitioning.histogram.num_regions == partitioning.num_regions
        assert partitioning.build_seconds == pytest.approx(
            partitioning.histogram.build_seconds
        )

    def test_balances_better_than_m_bucket_under_jps(self, small_join):
        """On a JPS-heavy workload CSIO's max weight beats CSI's."""
        from repro.engine.cluster import run_partitioned_join

        keys1, keys2, condition = small_join
        weight_fn = WeightFunction(1.0, 1.0)
        csi = build_m_bucket_partitioning(
            keys1, keys2, condition, 6, weight_fn=weight_fn,
            config=MBucketConfig(num_buckets=40), rng=np.random.default_rng(0),
        )
        csio = build_ewh_partitioning(
            keys1, keys2, condition, 6, weight_fn=weight_fn,
            rng=np.random.default_rng(0),
        )
        csi_exec = run_partitioned_join(csi, keys1, keys2, condition)
        csio_exec = run_partitioned_join(csio, keys1, keys2, condition)
        assert csio_exec.max_weight(weight_fn) <= csi_exec.max_weight(weight_fn)


class TestHashRepartitioning:
    def test_equi_join_correct(self):
        rng = np.random.default_rng(9)
        keys1 = rng.integers(0, 200, 400).astype(float)
        keys2 = rng.integers(0, 200, 400).astype(float)
        condition = EquiJoinCondition()
        partitioning = HashRepartitioning(num_machines=8, band_width=0.0)
        validation = validate_partitioning(partitioning, keys1, keys2, condition)
        assert validation.is_correct
        # No replication for equi-joins.
        assert partitioning.replication_per_r2_tuple == 1

    def test_band_join_correct_but_replicated(self):
        rng = np.random.default_rng(10)
        keys1 = rng.integers(0, 300, 300).astype(float)
        keys2 = rng.integers(0, 300, 300).astype(float)
        beta = 3.0
        condition = BandJoinCondition(beta=beta)
        partitioning = HashRepartitioning(num_machines=8, band_width=beta)
        validation = validate_partitioning(partitioning, keys1, keys2, condition)
        assert validation.is_correct
        assert partitioning.replication_per_r2_tuple == 2 * 3 + 1

    def test_replication_grows_with_band_width(self):
        rng = np.random.default_rng(11)
        keys1 = rng.integers(0, 1000, 500).astype(float)
        keys2 = rng.integers(0, 1000, 500).astype(float)
        factors = []
        for beta in (0.0, 2.0, 8.0):
            partitioning = HashRepartitioning(num_machines=8, band_width=beta)
            factors.append(
                partitioning.replication_factor(keys1, keys2, np.random.default_rng(0))
            )
        assert factors[0] < factors[1] < factors[2]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HashRepartitioning(num_machines=0)
        with pytest.raises(ValueError):
            HashRepartitioning(num_machines=2, band_width=-1.0)
        with pytest.raises(ValueError):
            HashRepartitioning(num_machines=2, key_granularity=0.0)
